//! Relay-to-relay transports.
//!
//! Three interchangeable transports carry [`RelayEnvelope`]s between
//! relays: an in-process bus (deterministic, used by tests and benches), a
//! connect-per-request TCP transport using length-prefixed frames, and a
//! pooled TCP transport that keeps long-lived connections per endpoint and
//! multiplexes many in-flight requests over each of them, correlating
//! replies by the envelope's `correlation_id`. Endpoint strings select the
//! target: `inproc:<relay-id>` or `tcp:<host>:<port>`.
//!
//! [`TcpRelayServer`] serves either client style: frames are dispatched
//! onto a bounded pool of dispatcher threads, so several requests from one
//! connection complete concurrently and out of order, with each reply
//! stamped with its request's correlation id. Peers that never set a
//! correlation id (one request per connection in flight) see exactly the
//! old serial behaviour.

use crate::error::RelayError;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tdt_obs::ObsHandle;
use tdt_wire::codec::Message;
use tdt_wire::framing::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use tdt_wire::messages::RelayEnvelope;

/// Something that can answer relay envelopes (a relay service).
pub trait EnvelopeHandler: Send + Sync {
    /// Handles one request envelope, returning the response envelope.
    fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope;
}

/// Request/response transport between relays.
pub trait RelayTransport: Send + Sync {
    /// Sends `envelope` to `endpoint` and waits for the reply.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::TransportFailed`] when the endpoint is
    /// unreachable or the exchange fails, or
    /// [`RelayError::StaleConnection`] when a pooled connection died with
    /// the request in flight (retryable: the next attempt dials fresh).
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError>;
}

/// In-process bus: endpoints are handler registrations in a shared map.
#[derive(Default)]
pub struct InProcessBus {
    handlers: RwLock<HashMap<String, Arc<dyn EnvelopeHandler>>>,
}

impl std::fmt::Debug for InProcessBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcessBus")
            .field("endpoints", &self.handlers.read().len())
            .finish()
    }
}

impl InProcessBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `handler` under `relay_id` (endpoint `inproc:<relay_id>`).
    pub fn register(&self, relay_id: impl Into<String>, handler: Arc<dyn EnvelopeHandler>) {
        self.handlers.write().insert(relay_id.into(), handler);
    }

    /// Removes a registration (simulates a relay going offline).
    pub fn deregister(&self, relay_id: &str) {
        self.handlers.write().remove(relay_id);
    }
}

impl RelayTransport for InProcessBus {
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError> {
        let relay_id = endpoint.strip_prefix("inproc:").ok_or_else(|| {
            RelayError::TransportFailed(format!(
                "in-process bus cannot serve endpoint {endpoint:?}"
            ))
        })?;
        let handler = self.handlers.read().get(relay_id).cloned().ok_or_else(|| {
            RelayError::TransportFailed(format!("no relay registered at {endpoint:?}"))
        })?;
        Ok(handler.handle(envelope.clone()))
    }
}

/// TCP transport: connects per request, frames the envelope, reads the
/// framed reply. Kept as the compatibility baseline; use
/// [`PooledTcpTransport`] for sustained traffic.
#[derive(Debug, Clone)]
pub struct TcpTransport {
    max_frame: usize,
    timeout: Duration,
}

impl Default for TcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl TcpTransport {
    /// Creates a transport with the default frame cap and a 5 s timeout.
    pub fn new() -> Self {
        TcpTransport {
            max_frame: DEFAULT_MAX_FRAME,
            timeout: Duration::from_secs(5),
        }
    }

    /// Overrides the read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }
}

impl RelayTransport for TcpTransport {
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError> {
        let addr = endpoint.strip_prefix("tcp:").ok_or_else(|| {
            RelayError::TransportFailed(format!("tcp transport cannot serve endpoint {endpoint:?}"))
        })?;
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| RelayError::TransportFailed(format!("connect {addr}: {e}")))?;
        stream.set_nodelay(true).ok();
        // A failed timeout set would leave the exchange free to block
        // forever on a dead peer, so it must surface, not be swallowed.
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| RelayError::TransportFailed(format!("set read timeout on {addr}: {e}")))?;
        stream.set_write_timeout(Some(self.timeout)).map_err(|e| {
            RelayError::TransportFailed(format!("set write timeout on {addr}: {e}"))
        })?;
        write_frame(&mut stream, &envelope.encode_to_vec(), self.max_frame)
            .map_err(|e| RelayError::TransportFailed(format!("send to {addr}: {e}")))?;
        stream
            .flush()
            .map_err(|e| RelayError::TransportFailed(format!("flush to {addr}: {e}")))?;
        let reply = read_frame(&mut stream, self.max_frame)
            .map_err(|e| RelayError::TransportFailed(format!("receive from {addr}: {e}")))?;
        Ok(RelayEnvelope::decode_from_slice(&reply)?)
    }
}

// ---------------------------------------------------------------------------
// Pooled, multiplexed TCP transport
// ---------------------------------------------------------------------------

/// Health counters for a [`PooledTcpTransport`], shareable with
/// [`crate::service::RelayStats`] so pool behaviour shows up in relay
/// monitoring.
#[derive(Debug, Default)]
pub struct PoolStats {
    dialed: AtomicU64,
    reused: AtomicU64,
    open: AtomicU64,
    in_flight: AtomicU64,
    orphaned: AtomicU64,
    culled: AtomicU64,
}

impl PoolStats {
    /// Connections dialed over the pool's lifetime.
    pub fn connections_dialed(&self) -> u64 {
        self.dialed.load(Ordering::Relaxed)
    }

    /// Requests served by an already-open connection.
    pub fn connections_reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn connections_open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    /// Requests currently awaiting a reply, across all connections.
    pub fn requests_in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Replies that arrived with an unknown correlation id and were
    /// dropped (fail closed): the waiter timed out first, or the peer is
    /// confused.
    pub fn orphaned_replies(&self) -> u64 {
        self.orphaned.load(Ordering::Relaxed)
    }

    /// Connections pruned as dead at checkout time (their reader thread
    /// had already failed the in-flight waiters over to
    /// [`crate::error::RelayError::StaleConnection`]).
    pub fn connections_culled(&self) -> u64 {
        self.culled.load(Ordering::Relaxed)
    }
}

/// Routes multiplexed reply envelopes to the callers awaiting them, by
/// correlation id.
///
/// The router fails closed: a reply whose correlation id matches no
/// registered waiter is *not* delivered anywhere — [`Self::complete`]
/// errors and the caller drops the frame. Duplicate registrations are
/// refused for the same reason.
#[derive(Default)]
pub struct CorrelationRouter {
    pending: Mutex<HashMap<u64, Sender<RelayEnvelope>>>,
    closed: AtomicBool,
}

impl std::fmt::Debug for CorrelationRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorrelationRouter")
            .field("pending", &self.pending.lock().len())
            .field("closed", &self.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl CorrelationRouter {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a waiter for `correlation_id`; its reply arrives on the
    /// returned receiver.
    ///
    /// # Errors
    ///
    /// * [`RelayError::StaleConnection`] when the router is closed.
    /// * [`RelayError::TransportFailed`] when the id is already in flight.
    pub fn register(&self, correlation_id: u64) -> Result<Receiver<RelayEnvelope>, RelayError> {
        // lint:allow(obs: "correlation bookkeeping; the transport send span records")
        let mut pending = self.pending.lock();
        if self.closed.load(Ordering::Acquire) {
            return Err(RelayError::StaleConnection(
                "connection already closed".into(),
            ));
        }
        if pending.contains_key(&correlation_id) {
            return Err(RelayError::TransportFailed(format!(
                "correlation id {correlation_id} already in flight"
            )));
        }
        let (tx, rx) = bounded(1);
        pending.insert(correlation_id, tx);
        Ok(rx)
    }

    /// Withdraws a waiter (after its reply arrived, or it gave up).
    pub fn deregister(&self, correlation_id: u64) {
        self.pending.lock().remove(&correlation_id);
    }

    /// Routes `reply` to the waiter registered under `correlation_id`.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::TransportFailed`] when no waiter is
    /// registered under that id; the reply is not delivered to anyone.
    pub fn complete(&self, correlation_id: u64, reply: RelayEnvelope) -> Result<(), RelayError> {
        // lint:allow(obs: "correlation bookkeeping; the transport send span records")
        let tx = self.pending.lock().remove(&correlation_id).ok_or_else(|| {
            RelayError::TransportFailed(format!(
                "no request awaiting correlation id {correlation_id}"
            ))
        })?;
        // The waiter may have timed out between lookup and send; fine.
        tx.send(reply).ok();
        Ok(())
    }

    /// Closes the router: every waiter observes a disconnect immediately
    /// and later registrations fail.
    pub fn fail_all(&self) {
        let mut pending = self.pending.lock();
        self.closed.store(true, Ordering::Release);
        // Dropping the senders wakes every waiting receiver.
        pending.clear();
    }

    /// Number of requests currently awaiting replies.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }
}

/// One long-lived connection plus its demultiplexing state.
struct PooledConn {
    /// The original stream, kept to force-close the connection.
    stream: TcpStream,
    /// Write half used by senders (a `try_clone` of `stream`).
    writer: Mutex<TcpStream>,
    router: Arc<CorrelationRouter>,
    dead: Arc<AtomicBool>,
    in_flight: AtomicU64,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for PooledConn {
    fn drop(&mut self) {
        self.stream.shutdown(Shutdown::Both).ok();
        if let Some(handle) = self.reader.lock().take() {
            handle.join().ok();
        }
    }
}

/// TCP transport with persistent connections and frame multiplexing: each
/// endpoint gets a small set of long-lived streams, every outbound frame
/// carries a fresh correlation id, and a per-connection reader thread
/// routes replies to the callers awaiting them — so many requests share
/// one connection in flight instead of paying a TCP handshake each.
///
/// Requires a correlation-aware server ([`TcpRelayServer`]); a peer that
/// does not echo correlation ids will only produce orphaned replies.
/// Dead connections surface as [`RelayError::StaleConnection`] (retryable
/// — see [`crate::retry::RetryPolicy::is_retryable`]) and are replaced by
/// a fresh dial on the next request.
pub struct PooledTcpTransport {
    max_frame: usize,
    timeout: Duration,
    max_conns_per_endpoint: usize,
    next_correlation: AtomicU64,
    endpoints: RwLock<HashMap<String, Vec<Arc<PooledConn>>>>,
    stats: Arc<PoolStats>,
}

impl std::fmt::Debug for PooledTcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledTcpTransport")
            .field("timeout", &self.timeout)
            .field("max_conns_per_endpoint", &self.max_conns_per_endpoint)
            .field("endpoints", &self.endpoints.read().len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for PooledTcpTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl PooledTcpTransport {
    /// Creates a pool with one connection per endpoint, the default frame
    /// cap, and a 5 s reply timeout.
    pub fn new() -> Self {
        PooledTcpTransport {
            max_frame: DEFAULT_MAX_FRAME,
            timeout: Duration::from_secs(5),
            max_conns_per_endpoint: 1,
            next_correlation: AtomicU64::new(1),
            endpoints: RwLock::new(HashMap::new()),
            stats: Arc::new(PoolStats::default()),
        }
    }

    /// Overrides the per-request reply timeout (builder style).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Overrides how many connections the pool keeps per endpoint
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics when `conns` is zero.
    pub fn with_connections_per_endpoint(mut self, conns: usize) -> Self {
        assert!(conns > 0, "pool needs at least one connection per endpoint");
        self.max_conns_per_endpoint = conns;
        self
    }

    /// The pool's health counters, shareable with
    /// [`crate::service::RelayService::with_pool_stats`].
    pub fn stats(&self) -> Arc<PoolStats> {
        Arc::clone(&self.stats)
    }

    /// In-flight request count per live connection to `endpoint`
    /// (`tcp:<addr>` form), for monitoring.
    pub fn in_flight_per_connection(&self, endpoint: &str) -> Vec<u64> {
        let addr = endpoint.strip_prefix("tcp:").unwrap_or(endpoint);
        self.endpoints
            .read()
            .get(addr)
            .map(|conns| {
                conns
                    .iter()
                    .filter(|c| !c.dead.load(Ordering::Acquire))
                    .map(|c| c.in_flight.load(Ordering::Relaxed))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Returns a live connection for `addr`, reusing the least-loaded
    /// open one or dialing when below the per-endpoint cap.
    fn checkout(&self, addr: &str) -> Result<Arc<PooledConn>, RelayError> {
        let least_loaded = |conns: &[Arc<PooledConn>]| {
            conns
                .iter()
                .filter(|c| !c.dead.load(Ordering::Acquire))
                .min_by_key(|c| c.in_flight.load(Ordering::Relaxed))
                .cloned()
        };
        {
            let endpoints = self.endpoints.read();
            if let Some(conns) = endpoints.get(addr) {
                let live = conns
                    .iter()
                    .filter(|c| !c.dead.load(Ordering::Acquire))
                    .count();
                if live >= self.max_conns_per_endpoint {
                    if let Some(conn) = least_loaded(conns) {
                        self.stats.reused.fetch_add(1, Ordering::Relaxed);
                        return Ok(conn);
                    }
                }
            }
        }
        let mut endpoints = self.endpoints.write();
        let conns = endpoints.entry(addr.to_string()).or_default();
        // Prune connections whose reader died; their waiters were already
        // failed over to StaleConnection.
        let before = conns.len();
        conns.retain(|c| !c.dead.load(Ordering::Acquire));
        self.stats
            .culled
            .fetch_add((before - conns.len()) as u64, Ordering::Relaxed);
        if conns.len() >= self.max_conns_per_endpoint {
            if let Some(conn) = least_loaded(conns) {
                self.stats.reused.fetch_add(1, Ordering::Relaxed);
                return Ok(conn);
            }
            // Every surviving connection was marked dead by its reader
            // between the prune above and the load scan: drop them all
            // and fall through to a fresh dial instead of panicking.
            let before = conns.len();
            conns.retain(|c| !c.dead.load(Ordering::Acquire));
            self.stats
                .culled
                .fetch_add((before - conns.len()) as u64, Ordering::Relaxed);
        }
        let conn = self.dial(addr)?;
        conns.push(Arc::clone(&conn));
        Ok(conn)
    }

    /// Dials `addr` and starts the connection's reply-demultiplexing
    /// reader thread.
    fn dial(&self, addr: &str) -> Result<Arc<PooledConn>, RelayError> {
        let fail = |what: &str, e: std::io::Error| {
            RelayError::TransportFailed(format!("{what} {addr}: {e}"))
        };
        let stream = TcpStream::connect(addr).map_err(|e| fail("connect", e))?;
        stream.set_nodelay(true).ok();
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| fail("set write timeout on", e))?;
        let writer = stream.try_clone().map_err(|e| fail("clone stream to", e))?;
        let mut reader_stream = stream.try_clone().map_err(|e| fail("clone stream to", e))?;
        let router = Arc::new(CorrelationRouter::new());
        let dead = Arc::new(AtomicBool::new(false));
        self.stats.dialed.fetch_add(1, Ordering::Relaxed);
        self.stats.open.fetch_add(1, Ordering::Relaxed);
        let spawned = {
            let router = Arc::clone(&router);
            let dead = Arc::clone(&dead);
            let stats = Arc::clone(&self.stats);
            let max_frame = self.max_frame;
            std::thread::Builder::new()
                .name(format!("pooled-tcp-reader-{addr}"))
                .spawn(move || {
                    while let Ok(frame) = read_frame(&mut reader_stream, max_frame) {
                        match RelayEnvelope::decode_from_slice(&frame) {
                            Ok(reply) => {
                                if router.complete(reply.correlation_id, reply).is_err() {
                                    // Unknown correlation id: fail closed.
                                    // Never guess a recipient.
                                    stats.orphaned.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            // Undecodable envelope inside a well-formed
                            // frame: the peer is confused, kill the stream.
                            Err(_) => break,
                        }
                    }
                    dead.store(true, Ordering::Release);
                    stats.open.fetch_sub(1, Ordering::Relaxed);
                    router.fail_all();
                })
        };
        let reader = match spawned {
            Ok(handle) => handle,
            Err(e) => {
                // Roll back the open-connection gauge the reader thread
                // would have decremented on exit.
                self.stats.open.fetch_sub(1, Ordering::Relaxed);
                return Err(fail("spawn reader thread for", e));
            }
        };
        Ok(Arc::new(PooledConn {
            stream,
            writer: Mutex::new(writer),
            router,
            dead,
            in_flight: AtomicU64::new(0),
            reader: Mutex::new(Some(reader)),
        }))
    }

    fn exchange(
        &self,
        conn: &PooledConn,
        addr: &str,
        envelope: &RelayEnvelope,
        correlation_id: u64,
        reply_rx: &Receiver<RelayEnvelope>,
    ) -> Result<RelayEnvelope, RelayError> {
        let tagged = envelope.clone().with_correlation_id(correlation_id);
        {
            let mut writer = conn.writer.lock();
            if let Err(e) = write_frame(&mut *writer, &tagged.encode_to_vec(), self.max_frame) {
                // Close the stream so the reader exits, marks the
                // connection dead, and wakes the other waiters too.
                conn.stream.shutdown(Shutdown::Both).ok();
                return Err(RelayError::StaleConnection(format!("write to {addr}: {e}")));
            }
        }
        match reply_rx.recv_timeout(self.timeout) {
            Ok(reply) => Ok(reply),
            Err(RecvTimeoutError::Timeout) => Err(RelayError::TransportFailed(format!(
                "no reply from {addr} within {:?}",
                self.timeout
            ))),
            Err(RecvTimeoutError::Disconnected) => Err(RelayError::StaleConnection(format!(
                "connection to {addr} closed while awaiting reply"
            ))),
        }
    }
}

impl RelayTransport for PooledTcpTransport {
    fn send(&self, endpoint: &str, envelope: &RelayEnvelope) -> Result<RelayEnvelope, RelayError> {
        let addr = endpoint.strip_prefix("tcp:").ok_or_else(|| {
            RelayError::TransportFailed(format!(
                "pooled tcp transport cannot serve endpoint {endpoint:?}"
            ))
        })?;
        let conn = self.checkout(addr)?;
        let correlation_id = self.next_correlation.fetch_add(1, Ordering::Relaxed);
        let reply_rx = conn.router.register(correlation_id)?;
        conn.in_flight.fetch_add(1, Ordering::Relaxed);
        self.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let result = self.exchange(&conn, addr, envelope, correlation_id, &reply_rx);
        conn.router.deregister(correlation_id);
        conn.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        result
    }
}

// ---------------------------------------------------------------------------
// TCP server
// ---------------------------------------------------------------------------

/// Tuning knobs for [`TcpRelayServer`].
#[derive(Debug, Clone)]
pub struct TcpServerConfig {
    /// Maximum simultaneously connected clients; connections beyond this
    /// are accepted and immediately closed (counted as refused).
    pub max_connections: usize,
    /// Dispatcher threads feeding decoded frames to the handler, which
    /// bounds how many requests are processed concurrently across all
    /// connections.
    pub dispatchers: usize,
    /// Maximum accepted frame size.
    pub max_frame: usize,
    /// When set, the server also binds a loopback admin listener serving
    /// this handle's unified metrics: Prometheus text at `GET /metrics`,
    /// a JSON snapshot at `GET /metrics.json`, liveness at `GET /healthz`,
    /// readiness at `GET /readyz`, a flight-recorder dump at
    /// `GET /debug/flightrec`, and an on-demand folded-stack profile at
    /// `GET /debug/profile?seconds=N&hz=M`. See
    /// [`TcpRelayServer::admin_endpoint`].
    pub obs: Option<Arc<ObsHandle>>,
    /// Readiness state consulted by `GET /readyz`. When unset the server
    /// reports ready unconditionally (liveness still comes from
    /// `/healthz`).
    pub readiness: Option<Arc<Readiness>>,
}

impl Default for TcpServerConfig {
    fn default() -> Self {
        TcpServerConfig {
            max_connections: 256,
            dispatchers: std::thread::available_parallelism()
                .map_or(4, |n| n.get())
                .max(4),
            max_frame: DEFAULT_MAX_FRAME,
            obs: None,
            readiness: None,
        }
    }
}

/// Readiness state behind the admin endpoint's `GET /readyz`: the relay
/// is ready once ledger recovery has completed and while no circuit is
/// open. Share one instance between the recovery path (which calls
/// [`Readiness::set_recovered`]) and the server config.
#[derive(Debug, Default)]
pub struct Readiness {
    recovered: AtomicBool,
    breaker: Mutex<Option<Arc<crate::breaker::CircuitBreaker>>>,
}

impl Readiness {
    /// A gate that is not yet recovered and watches no breaker.
    pub fn new() -> Readiness {
        Readiness::default()
    }

    /// A gate for a relay with no durable ledger: recovery is vacuously
    /// complete.
    pub fn recovered() -> Readiness {
        let r = Readiness::default();
        r.set_recovered(true);
        r
    }

    /// Marks ledger recovery complete (or, with `false`, in progress).
    pub fn set_recovered(&self, done: bool) {
        self.recovered.store(done, Ordering::Release);
    }

    /// Attaches the circuit breaker whose open circuits gate readiness.
    pub fn watch_breaker(&self, breaker: Arc<crate::breaker::CircuitBreaker>) {
        *self.breaker.lock() = Some(breaker);
    }

    /// `Ok` when ready; `Err` carries the human-readable reason served
    /// with the 503.
    pub fn check(&self) -> Result<(), String> {
        if !self.recovered.load(Ordering::Acquire) {
            return Err("ledger recovery incomplete".into());
        }
        if let Some(breaker) = self.breaker.lock().as_ref() {
            let open = breaker.open_endpoints();
            if open > 0 {
                return Err(format!("{open} circuit(s) open or half-open"));
            }
        }
        Ok(())
    }
}

/// A live server-side connection: the stream (kept to force-close it) and
/// its reader thread.
struct ServerConn {
    stream: TcpStream,
    reader: Option<std::thread::JoinHandle<()>>,
}

/// Bounded registry of live connections, so shutdown can close and join
/// every handler instead of leaking detached threads.
#[derive(Default)]
struct ConnectionRegistry {
    conns: Mutex<HashMap<u64, ServerConn>>,
    next_id: AtomicU64,
    refused: AtomicU64,
}

/// One decoded request frame on its way to the handler.
struct ServerJob {
    envelope: RelayEnvelope,
    correlation_id: u64,
    writer: Arc<Mutex<TcpStream>>,
    max_frame: usize,
}

/// A TCP server front-end for a relay: accepts framed envelopes and feeds
/// them to an [`EnvelopeHandler`] through a bounded dispatcher pool, so
/// requests multiplexed on one connection are answered concurrently and
/// out of order. Live connections are tracked in a bounded registry that
/// [`TcpRelayServer::shutdown`] closes and joins.
pub struct TcpRelayServer {
    local_addr: SocketAddr,
    admin_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    registry: Arc<ConnectionRegistry>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    admin_thread: Option<std::thread::JoinHandle<()>>,
    dispatchers: Vec<std::thread::JoinHandle<()>>,
    job_tx: Option<Sender<ServerJob>>,
}

impl std::fmt::Debug for TcpRelayServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpRelayServer")
            .field("local_addr", &self.local_addr)
            .field("connections", &self.connection_count())
            .field("dispatchers", &self.dispatchers.len())
            .finish()
    }
}

impl TcpRelayServer {
    /// Binds `bind_addr` (use port 0 for an ephemeral port) and starts
    /// serving `handler` with the default [`TcpServerConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::TransportFailed`] when binding fails.
    pub fn spawn(bind_addr: &str, handler: Arc<dyn EnvelopeHandler>) -> Result<Self, RelayError> {
        // lint:allow(obs: "server startup, no request in flight to trace")
        Self::spawn_with(bind_addr, handler, TcpServerConfig::default())
    }

    /// Like [`TcpRelayServer::spawn`] with explicit tuning.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::TransportFailed`] when binding fails.
    pub fn spawn_with(
        bind_addr: &str,
        handler: Arc<dyn EnvelopeHandler>,
        config: TcpServerConfig,
    ) -> Result<Self, RelayError> {
        // lint:allow(obs: "server startup, no request in flight to trace")
        let listener = TcpListener::bind(bind_addr)
            .map_err(|e| RelayError::TransportFailed(format!("bind {bind_addr}: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| RelayError::TransportFailed(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| RelayError::TransportFailed(format!("set nonblocking: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(ConnectionRegistry::default());
        let (job_tx, job_rx) = unbounded::<ServerJob>();
        // A failed spawn aborts the whole server start: dropping `job_tx`
        // disconnects the channel, so dispatchers already running drain
        // and exit instead of leaking.
        let spawn_failed =
            |what: &str, e: std::io::Error| RelayError::TransportFailed(format!("{what}: {e}"));
        let dispatchers = (0..config.dispatchers.max(1))
            .map(|i| {
                let rx = job_rx.clone();
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("tcp-relay-dispatch-{i}"))
                    .spawn(move || dispatcher_loop(&rx, handler.as_ref()))
                    .map_err(|e| spawn_failed("spawn tcp relay dispatcher", e))
            })
            .collect::<Result<Vec<_>, RelayError>>()?;
        let (admin_addr, admin_thread) = match config.obs.clone() {
            Some(obs) => {
                // Loopback only: the admin surface is for local scraping
                // and tests, never for remote peers.
                let admin_listener = TcpListener::bind("127.0.0.1:0")
                    .map_err(|e| RelayError::TransportFailed(format!("bind admin: {e}")))?;
                let admin_addr = admin_listener
                    .local_addr()
                    .map_err(|e| RelayError::TransportFailed(e.to_string()))?;
                admin_listener
                    .set_nonblocking(true)
                    .map_err(|e| RelayError::TransportFailed(format!("set nonblocking: {e}")))?;
                let shutdown = Arc::clone(&shutdown);
                let readiness = config.readiness.clone();
                let thread = std::thread::Builder::new()
                    .name("tcp-relay-admin".into())
                    .spawn(move || admin_loop(&admin_listener, &shutdown, &obs, readiness))
                    .map_err(|e| spawn_failed("spawn tcp relay admin loop", e))?;
                (Some(admin_addr), Some(thread))
            }
            None => (None, None),
        };
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let registry = Arc::clone(&registry);
            let job_tx = job_tx.clone();
            std::thread::Builder::new()
                .name("tcp-relay-accept".into())
                .spawn(move || accept_loop(&listener, &shutdown, &registry, &job_tx, &config))
                .map_err(|e| spawn_failed("spawn tcp relay accept loop", e))?
        };
        Ok(TcpRelayServer {
            local_addr,
            admin_addr,
            shutdown,
            registry,
            accept_thread: Some(accept_thread),
            admin_thread,
            dispatchers,
            job_tx: Some(job_tx),
        })
    }

    /// The bound address, e.g. to build the `tcp:<addr>` endpoint string.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The endpoint string clients should use.
    pub fn endpoint(&self) -> String {
        format!("tcp:{}", self.local_addr)
    }

    /// Base URL of the loopback admin listener (`http://127.0.0.1:<port>`)
    /// when the server was configured with [`TcpServerConfig::obs`]. Scrape
    /// `<base>/metrics` for the Prometheus exposition or
    /// `<base>/metrics.json` for the JSON snapshot.
    pub fn admin_endpoint(&self) -> Option<String> {
        self.admin_addr.map(|addr| format!("http://{addr}"))
    }

    /// Live connections currently registered.
    pub fn connection_count(&self) -> usize {
        self.registry.conns.lock().len()
    }

    /// Connections refused because the registry was full.
    pub fn refused_connections(&self) -> u64 {
        self.registry.refused.load(Ordering::Relaxed)
    }

    /// Stops accepting, closes every live connection, and joins their
    /// reader threads. Dispatcher threads are joined on drop.
    pub fn shutdown(&self) {
        // Release pairs with the Acquire loads in the accept/admin loops:
        // a loop that sees the flag also sees every teardown step that
        // preceded it.
        self.shutdown.store(true, Ordering::Release);
        let drained: Vec<ServerConn> = {
            let mut conns = self.registry.conns.lock();
            conns.drain().map(|(_, conn)| conn).collect()
        };
        for conn in &drained {
            conn.stream.shutdown(Shutdown::Both).ok();
        }
        for mut conn in drained {
            if let Some(handle) = conn.reader.take() {
                handle.join().ok();
            }
        }
    }
}

impl Drop for TcpRelayServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Join the accept loop first so no connection can register after
        // the final drain below.
        if let Some(thread) = self.accept_thread.take() {
            thread.join().ok();
        }
        if let Some(thread) = self.admin_thread.take() {
            thread.join().ok();
        }
        self.shutdown();
        // Closing the job channel stops the dispatchers once the queue
        // drains (writes to closed connections fail fast).
        self.job_tx.take();
        for dispatcher in self.dispatchers.drain(..) {
            dispatcher.join().ok();
        }
    }
}

/// Hard ceiling on an admin request head (slowloris guard: a client
/// that sends more than this without finishing its headers is cut off).
const ADMIN_MAX_HEAD: usize = 8192;

/// Overall deadline for reading an admin request head. This is a
/// *total* budget, not a per-read timeout: a slowloris client dripping
/// one byte every 1.9 s used to hold the old reader forever because
/// each byte reset the 2 s read timeout.
const ADMIN_HEAD_DEADLINE: Duration = Duration::from_secs(2);

/// Concurrent admin requests served; excess get a fast 503 so a scrape
/// storm cannot exhaust threads.
const ADMIN_MAX_CONCURRENT: usize = 8;

/// Longest profile window `GET /debug/profile` will run, bounding both
/// the serving thread's lifetime and shutdown latency.
const ADMIN_MAX_PROFILE_SECONDS: f64 = 10.0;

/// Accept loop of the loopback admin listener. Each exchange is served
/// on its own short-lived thread (bounded by [`ADMIN_MAX_CONCURRENT`])
/// so a multi-second profile capture or a slow client never blocks
/// concurrent metric scrapes.
fn admin_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    obs: &Arc<ObsHandle>,
    readiness: Option<Arc<Readiness>>,
) {
    let active = Arc::new(AtomicU64::new(0));
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                if active.load(Ordering::Relaxed) >= ADMIN_MAX_CONCURRENT as u64 {
                    stream
                        .set_write_timeout(Some(Duration::from_millis(200)))
                        .ok();
                    write_admin_response(
                        &mut stream,
                        "503 Service Unavailable",
                        "text/plain",
                        b"admin endpoint busy\n",
                    )
                    .ok();
                    continue;
                }
                active.fetch_add(1, Ordering::Relaxed);
                let worker_active = Arc::clone(&active);
                let obs = Arc::clone(obs);
                let readiness = readiness.clone();
                let spawned = std::thread::Builder::new()
                    .name("tcp-relay-admin-worker".into())
                    .spawn(move || {
                        serve_admin_request(stream, &obs, readiness.as_deref()).ok();
                        worker_active.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    active.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Reads a request head under both a size cap and a *total* deadline.
/// Returns the head bytes, or `None` when the budget ran out first.
fn read_admin_head(stream: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let deadline = std::time::Instant::now() + ADMIN_HEAD_DEADLINE;
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < ADMIN_MAX_HEAD {
        let now = std::time::Instant::now();
        if now >= deadline {
            return Ok(None);
        }
        stream.set_read_timeout(Some(deadline - now))?;
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(buf.get(..n).unwrap_or_default()),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(head))
}

fn write_admin_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    stream.shutdown(Shutdown::Both).ok();
    Ok(())
}

/// Parses `?seconds=N&hz=M` off a profile request path, with clamped
/// defaults (1 s at the profiler's default rate).
fn parse_profile_query(query: Option<&str>) -> (Duration, u64) {
    let mut seconds = 1.0f64;
    let mut hz = tdt_obs::profile::DEFAULT_HZ;
    for pair in query.unwrap_or("").split('&') {
        match pair.split_once('=') {
            Some(("seconds", v)) => {
                if let Ok(s) = v.parse::<f64>() {
                    seconds = s;
                }
            }
            Some(("hz", v)) => {
                if let Ok(h) = v.parse::<u64>() {
                    hz = h;
                }
            }
            _ => {}
        }
    }
    let seconds = seconds.clamp(0.05, ADMIN_MAX_PROFILE_SECONDS);
    (Duration::from_secs_f64(seconds), hz.clamp(1, 1000))
}

/// Answers one admin HTTP request. Only the request line matters; any
/// headers the client sent are read and discarded.
fn serve_admin_request(
    mut stream: TcpStream,
    obs: &ObsHandle,
    readiness: Option<&Readiness>,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let head = match read_admin_head(&mut stream)? {
        Some(head) => head,
        None => {
            return write_admin_response(
                &mut stream,
                "408 Request Timeout",
                "text/plain",
                b"request head not received in time\n",
            );
        }
    };
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(&[]);
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let (status, content_type, body): (&str, &str, Vec<u8>) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4",
            obs.prometheus_text().into_bytes(),
        ),
        ("GET", "/metrics.json") => ("200 OK", "application/json", obs.json_text().into_bytes()),
        ("GET", "/healthz") => ("200 OK", "text/plain", b"ok\n".to_vec()),
        ("GET", "/readyz") => match readiness.map_or(Ok(()), Readiness::check) {
            Ok(()) => ("200 OK", "text/plain", b"ready\n".to_vec()),
            Err(reason) => (
                "503 Service Unavailable",
                "text/plain",
                format!("not ready: {reason}\n").into_bytes(),
            ),
        },
        ("GET", "/debug/flightrec") => (
            "200 OK",
            "application/octet-stream",
            tdt_obs::flight::dump("admin: GET /debug/flightrec"),
        ),
        ("GET", "/debug/profile") => {
            let (duration, hz) = parse_profile_query(query);
            let report = tdt_obs::profile::sample_for(duration, hz);
            ("200 OK", "text/plain", report.folded_text().into_bytes())
        }
        ("GET", _) => ("404 Not Found", "text/plain", b"not found\n".to_vec()),
        _ => (
            "405 Method Not Allowed",
            "text/plain",
            b"method not allowed\n".to_vec(),
        ),
    };
    write_admin_response(&mut stream, status, content_type, &body)
}

fn accept_loop(
    listener: &TcpListener,
    shutdown: &AtomicBool,
    registry: &Arc<ConnectionRegistry>,
    job_tx: &Sender<ServerJob>,
    config: &TcpServerConfig,
) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                if registry.conns.lock().len() >= config.max_connections {
                    registry.refused.fetch_add(1, Ordering::Relaxed);
                    drop(stream);
                    continue;
                }
                serve_connection(stream, registry, job_tx, config).ok();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Registers `stream` and starts its frame-reader thread.
fn serve_connection(
    stream: TcpStream,
    registry: &Arc<ConnectionRegistry>,
    job_tx: &Sender<ServerJob>,
    config: &TcpServerConfig,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true).ok();
    // Writes to a dead peer must not wedge a dispatcher forever.
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut reader_stream = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let conn_id = registry.next_id.fetch_add(1, Ordering::Relaxed);
    registry.conns.lock().insert(
        conn_id,
        ServerConn {
            stream,
            reader: None,
        },
    );
    let spawned = {
        let registry = Arc::clone(registry);
        let job_tx = job_tx.clone();
        let max_frame = config.max_frame;
        std::thread::Builder::new()
            .name(format!("tcp-relay-conn-{conn_id}"))
            .spawn(move || {
                connection_loop(&mut reader_stream, &writer, &job_tx, max_frame);
                // Deregister unless a shutdown drain already took the
                // entry (in which case shutdown() joins this thread).
                registry.conns.lock().remove(&conn_id);
            })
    };
    let reader = match spawned {
        Ok(handle) => handle,
        Err(e) => {
            // No reader thread means no one will ever serve or deregister
            // this connection: drop it (closing the stream) and refuse.
            registry.conns.lock().remove(&conn_id);
            return Err(e);
        }
    };
    if let Some(entry) = registry.conns.lock().get_mut(&conn_id) {
        entry.reader = Some(reader);
    }
    Ok(())
}

/// Reads frames off one connection and hands them to the dispatcher pool
/// until the peer closes, the stream errors, or the server shuts down.
fn connection_loop(
    stream: &mut TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    job_tx: &Sender<ServerJob>,
    max_frame: usize,
) {
    while let Ok(frame) = read_frame(&mut *stream, max_frame) {
        match RelayEnvelope::decode_from_slice(&frame) {
            Ok(envelope) => {
                let correlation_id = envelope.correlation_id;
                let job = ServerJob {
                    envelope,
                    correlation_id,
                    writer: Arc::clone(writer),
                    max_frame,
                };
                if job_tx.send(job).is_err() {
                    break; // server shutting down
                }
            }
            Err(e) => {
                // Framing is still aligned: answer the bad envelope and
                // keep serving the connection.
                let reply =
                    RelayEnvelope::error("tcp-server", "", format!("malformed envelope: {e}"));
                let mut w = writer.lock();
                if write_frame(&mut *w, &reply.encode_to_vec(), max_frame).is_err() {
                    break;
                }
            }
        }
    }
    stream.shutdown(Shutdown::Both).ok();
}

/// Dispatcher thread body: run the handler and write the reply — stamped
/// with the request's correlation id — back to the originating
/// connection. Replies from slow requests simply land after faster ones.
fn dispatcher_loop(jobs: &Receiver<ServerJob>, handler: &dyn EnvelopeHandler) {
    while let Ok(job) = jobs.recv() {
        let reply = handler
            .handle(job.envelope)
            .with_correlation_id(job.correlation_id);
        let mut writer = job.writer.lock();
        if write_frame(&mut *writer, &reply.encode_to_vec(), job.max_frame).is_err() {
            // Dead peer: close so the connection reader exits and
            // deregisters.
            writer.shutdown(Shutdown::Both).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::RetryPolicy;
    use std::time::Instant;
    use tdt_wire::messages::EnvelopeKind;

    /// Echoes the payload back as a response envelope.
    struct EchoHandler;

    impl EnvelopeHandler for EchoHandler {
        fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope {
            RelayEnvelope {
                kind: EnvelopeKind::QueryResponse,
                source_relay: "echo".into(),
                dest_network: envelope.dest_network,
                payload: envelope.payload,
                correlation_id: 0,
                trace: Default::default(),
                batch: Vec::new(),
            }
        }
    }

    /// Echoes after sleeping for `payload[0]` × 10 ms.
    struct SleepyEchoHandler;

    impl EnvelopeHandler for SleepyEchoHandler {
        fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope {
            let ticks = envelope.payload.first().copied().unwrap_or(0) as u64;
            std::thread::sleep(Duration::from_millis(ticks * 10));
            EchoHandler.handle(envelope)
        }
    }

    fn request(payload: &[u8]) -> RelayEnvelope {
        RelayEnvelope {
            kind: EnvelopeKind::QueryRequest,
            source_relay: "test".into(),
            dest_network: "target".into(),
            payload: payload.to_vec(),
            correlation_id: 0,
            trace: Default::default(),
            batch: Vec::new(),
        }
    }

    #[test]
    fn inproc_roundtrip() {
        let bus = InProcessBus::new();
        bus.register("echo-relay", Arc::new(EchoHandler));
        let reply = bus.send("inproc:echo-relay", &request(b"ping")).unwrap();
        assert_eq!(reply.kind, EnvelopeKind::QueryResponse);
        assert_eq!(reply.payload, b"ping");
    }

    #[test]
    fn inproc_unknown_endpoint() {
        let bus = InProcessBus::new();
        assert!(matches!(
            bus.send("inproc:ghost", &request(b"x")),
            Err(RelayError::TransportFailed(_))
        ));
    }

    #[test]
    fn inproc_rejects_foreign_scheme() {
        let bus = InProcessBus::new();
        assert!(bus.send("tcp:1.2.3.4:1", &request(b"x")).is_err());
    }

    #[test]
    fn inproc_deregister() {
        let bus = InProcessBus::new();
        bus.register("r", Arc::new(EchoHandler));
        assert!(bus.send("inproc:r", &request(b"x")).is_ok());
        bus.deregister("r");
        assert!(bus.send("inproc:r", &request(b"x")).is_err());
    }

    #[test]
    fn tcp_roundtrip() {
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let transport = TcpTransport::new();
        let reply = transport
            .send(&server.endpoint(), &request(b"over tcp"))
            .unwrap();
        assert_eq!(reply.payload, b"over tcp");
        assert_eq!(reply.kind, EnvelopeKind::QueryResponse);
    }

    #[test]
    fn tcp_old_style_client_gets_uncorrelated_reply() {
        // A legacy client never sets a correlation id; the new server
        // must echo zero back so old decoders see the pre-field framing.
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let reply = TcpTransport::new()
            .send(&server.endpoint(), &request(b"legacy"))
            .unwrap();
        assert_eq!(reply.correlation_id, 0);
        assert_eq!(reply.payload, b"legacy");
    }

    #[test]
    fn tcp_multiple_sequential_requests() {
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let transport = TcpTransport::new();
        for i in 0..5 {
            let payload = format!("msg-{i}").into_bytes();
            let reply = transport
                .send(&server.endpoint(), &request(&payload))
                .unwrap();
            assert_eq!(reply.payload, payload);
        }
    }

    #[test]
    fn tcp_concurrent_requests() {
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let endpoint = server.endpoint();
        let mut handles = Vec::new();
        for i in 0..4 {
            let endpoint = endpoint.clone();
            handles.push(std::thread::spawn(move || {
                let transport = TcpTransport::new();
                let payload = format!("thread-{i}").into_bytes();
                let reply = transport.send(&endpoint, &request(&payload)).unwrap();
                assert_eq!(reply.payload, payload);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn tcp_unreachable_endpoint() {
        let transport = TcpTransport::new().with_timeout(Duration::from_millis(300));
        // Port 1 is almost certainly closed.
        assert!(matches!(
            transport.send("tcp:127.0.0.1:1", &request(b"x")),
            Err(RelayError::TransportFailed(_))
        ));
    }

    #[test]
    fn tcp_bad_scheme() {
        let transport = TcpTransport::new();
        assert!(transport.send("inproc:x", &request(b"x")).is_err());
    }

    #[test]
    fn tcp_timeout_set_failure_surfaces_as_error() {
        // A zero timeout is rejected by the OS; before the fix the
        // failure was swallowed with `.ok()` and the exchange proceeded
        // with no timeout at all.
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let transport = TcpTransport::new().with_timeout(Duration::ZERO);
        let err = transport
            .send(&server.endpoint(), &request(b"x"))
            .unwrap_err();
        assert!(
            matches!(&err, RelayError::TransportFailed(m) if m.contains("timeout")),
            "expected timeout-set error, got {err:?}"
        );
    }

    #[test]
    fn server_shutdown_closes_connections_and_joins() {
        use std::io::Read;
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let mut client = TcpStream::connect(server.local_addr()).unwrap();
        // Wait for the accept loop to register the connection.
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.connection_count() == 0 {
            assert!(Instant::now() < deadline, "connection never registered");
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
        assert_eq!(server.connection_count(), 0);
        // The handler closed our socket: the read observes EOF promptly
        // instead of hanging on a leaked thread's open stream.
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 16];
        assert!(matches!(client.read(&mut buf), Ok(0) | Err(_)));
    }

    #[test]
    fn server_bounds_connection_registry() {
        use std::io::Read;
        let server = TcpRelayServer::spawn_with(
            "127.0.0.1:0",
            Arc::new(EchoHandler),
            TcpServerConfig {
                max_connections: 2,
                ..TcpServerConfig::default()
            },
        )
        .unwrap();
        let _c1 = TcpStream::connect(server.local_addr()).unwrap();
        let _c2 = TcpStream::connect(server.local_addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.connection_count() < 2 {
            assert!(Instant::now() < deadline, "connections never registered");
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut c3 = TcpStream::connect(server.local_addr()).unwrap();
        while server.refused_connections() == 0 {
            assert!(Instant::now() < deadline, "third connection never refused");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.connection_count(), 2);
        // The refused socket was closed immediately.
        c3.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 16];
        assert!(matches!(c3.read(&mut buf), Ok(0) | Err(_)));
    }

    #[test]
    fn pooled_roundtrip_reuses_connection() {
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let transport = PooledTcpTransport::new();
        for i in 0..6 {
            let payload = format!("pooled-{i}").into_bytes();
            let reply = transport
                .send(&server.endpoint(), &request(&payload))
                .unwrap();
            assert_eq!(reply.payload, payload);
            assert_eq!(reply.kind, EnvelopeKind::QueryResponse);
        }
        let stats = transport.stats();
        assert_eq!(stats.connections_dialed(), 1);
        assert_eq!(stats.connections_reused(), 5);
        assert_eq!(stats.connections_open(), 1);
        assert_eq!(stats.requests_in_flight(), 0);
        assert_eq!(
            transport.in_flight_per_connection(&server.endpoint()),
            vec![0]
        );
    }

    #[test]
    fn pooled_multiplexes_one_connection_across_threads() {
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(SleepyEchoHandler)).unwrap();
        let transport = Arc::new(PooledTcpTransport::new());
        let endpoint = server.endpoint();
        std::thread::scope(|scope| {
            for t in 0u8..8 {
                let transport = Arc::clone(&transport);
                let endpoint = endpoint.clone();
                scope.spawn(move || {
                    for i in 0u8..3 {
                        // First byte doubles as the handler's sleep ticks,
                        // so replies complete out of order.
                        let payload = [t % 3, t, i];
                        let reply = transport.send(&endpoint, &request(&payload)).unwrap();
                        assert_eq!(reply.payload, payload);
                    }
                });
            }
        });
        let stats = transport.stats();
        assert_eq!(
            stats.connections_dialed(),
            1,
            "all threads share one stream"
        );
        assert_eq!(stats.requests_in_flight(), 0);
        assert_eq!(stats.orphaned_replies(), 0);
    }

    #[test]
    fn pooled_replies_complete_out_of_order_on_one_connection() {
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(SleepyEchoHandler)).unwrap();
        let transport = Arc::new(PooledTcpTransport::new());
        let endpoint = server.endpoint();
        let (slow_done_tx, slow_done_rx) = bounded::<Instant>(1);
        std::thread::scope(|scope| {
            {
                let transport = Arc::clone(&transport);
                let endpoint = endpoint.clone();
                scope.spawn(move || {
                    // 20 ticks → 200 ms in the handler.
                    let reply = transport.send(&endpoint, &request(&[20, 1])).unwrap();
                    assert_eq!(reply.payload, [20, 1]);
                    slow_done_tx.send(Instant::now()).unwrap();
                });
            }
            // Give the slow request a head start on the shared stream.
            std::thread::sleep(Duration::from_millis(50));
            let reply = transport.send(&endpoint, &request(&[0, 2])).unwrap();
            assert_eq!(reply.payload, [0, 2]);
            let fast_done = Instant::now();
            let slow_done = slow_done_rx.recv().unwrap();
            assert!(
                fast_done < slow_done,
                "fast reply should overtake the slow one on the shared connection"
            );
        });
        assert_eq!(transport.stats().connections_dialed(), 1);
    }

    #[test]
    fn pooled_dead_connection_is_stale_and_redialed() {
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let endpoint = server.endpoint();
        let transport = PooledTcpTransport::new().with_timeout(Duration::from_millis(500));
        assert!(transport.send(&endpoint, &request(b"warm")).is_ok());
        drop(server); // closes the pooled connection server-side
                      // The next send either notices the dead stream while awaiting the
                      // reply (StaleConnection) or fails to redial the closed port
                      // (TransportFailed) — both classified transient for retry.
        let err = transport.send(&endpoint, &request(b"after")).unwrap_err();
        assert!(
            RetryPolicy::is_retryable(&err),
            "dead pooled connection must be retryable, got {err:?}"
        );
        // Whichever way the death was noticed, the next checkout prunes
        // the dead connection and counts the cull.
        let _ = transport.send(&endpoint, &request(b"again"));
        assert!(
            transport.stats().connections_culled() >= 1,
            "checkout must count pruned dead connections"
        );
        // A fresh endpoint heals the pool: new server, new dial.
        let server2 = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        let reply = transport
            .send(&server2.endpoint(), &request(b"healed"))
            .unwrap();
        assert_eq!(reply.payload, b"healed");
        assert!(transport.stats().connections_dialed() >= 2);
    }

    #[test]
    fn pooled_bad_scheme() {
        let transport = PooledTcpTransport::new();
        assert!(transport.send("inproc:x", &request(b"x")).is_err());
    }

    /// Minimal HTTP/1.1 GET against the admin listener.
    fn http_get(base: &str, path: &str) -> String {
        let addr = base.strip_prefix("http://").unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                    .as_bytes(),
            )
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn admin_endpoint_serves_metrics_expositions() {
        let obs = Arc::new(ObsHandle::new());
        obs.registry()
            .counter("tdt_test_scrapes_total", "test counter")
            .add(3);
        let server = TcpRelayServer::spawn_with(
            "127.0.0.1:0",
            Arc::new(EchoHandler),
            TcpServerConfig {
                obs: Some(Arc::clone(&obs)),
                ..TcpServerConfig::default()
            },
        )
        .unwrap();
        let base = server.admin_endpoint().expect("admin listener configured");
        let text = http_get(&base, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK"), "got: {text}");
        assert!(text.contains("tdt_test_scrapes_total 3"), "got: {text}");
        let json = http_get(&base, "/metrics.json");
        assert!(json.contains("\"tdt_test_scrapes_total\""), "got: {json}");
        let missing = http_get(&base, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "got: {missing}");
    }

    #[test]
    fn admin_endpoint_absent_without_obs_config() {
        let server = TcpRelayServer::spawn("127.0.0.1:0", Arc::new(EchoHandler)).unwrap();
        assert!(server.admin_endpoint().is_none());
    }

    #[test]
    fn router_routes_by_correlation_id() {
        let router = CorrelationRouter::new();
        let rx7 = router.register(7).unwrap();
        let rx9 = router.register(9).unwrap();
        assert_eq!(router.pending_count(), 2);
        router
            .complete(9, request(b"nine").with_correlation_id(9))
            .unwrap();
        router
            .complete(7, request(b"seven").with_correlation_id(7))
            .unwrap();
        assert_eq!(rx7.recv().unwrap().payload, b"seven");
        assert_eq!(rx9.recv().unwrap().payload, b"nine");
        assert_eq!(router.pending_count(), 0);
    }

    #[test]
    fn router_unknown_correlation_id_fails_closed() {
        let router = CorrelationRouter::new();
        let rx = router.register(1).unwrap();
        let err = router.complete(2, request(b"stray")).unwrap_err();
        assert!(matches!(err, RelayError::TransportFailed(_)));
        // The registered waiter is untouched by the stray reply.
        assert_eq!(router.pending_count(), 1);
        router.complete(1, request(b"mine")).unwrap();
        assert_eq!(rx.recv().unwrap().payload, b"mine");
    }

    #[test]
    fn router_duplicate_registration_refused() {
        let router = CorrelationRouter::new();
        let _rx = router.register(5).unwrap();
        assert!(router.register(5).is_err());
        assert_eq!(router.pending_count(), 1);
    }

    #[test]
    fn router_fail_all_wakes_waiters_and_closes() {
        let router = CorrelationRouter::new();
        let rx = router.register(3).unwrap();
        router.fail_all();
        assert!(rx.recv().is_err(), "waiter must observe the disconnect");
        assert!(matches!(
            router.register(4),
            Err(RelayError::StaleConnection(_))
        ));
    }
}
