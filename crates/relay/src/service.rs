//! The relay service itself.
//!
//! One relay is deployed per network. It plays two roles in the paper's
//! message flow (Fig. 2):
//!
//! * **destination side** — [`RelayService::relay_query`] implements Steps
//!   1-3 and 9: take a client query, discover the remote relay, serialize
//!   and forward, return the response to the application.
//! * **source side** — the [`EnvelopeHandler`] impl implements Steps 4-8:
//!   deserialize the incoming request, pick the driver for the addressed
//!   network, orchestrate proof collection, and reply.

use crate::discovery::DiscoveryService;
use crate::driver::NetworkDriver;
use crate::error::RelayError;
use crate::events::{EventSink, EventSource};
use crate::ratelimit::RateLimiter;
use crate::transport::{EnvelopeHandler, RelayTransport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tdt_wire::codec::Message;
use tdt_wire::messages::{
    AuthInfo, EnvelopeKind, EventNotice, EventSubscribeRequest, Query, QueryResponse,
    RelayEnvelope,
};

/// Counters exposed for monitoring and the availability experiments.
#[derive(Debug, Default)]
pub struct RelayStats {
    /// Queries forwarded to remote relays (destination role).
    pub forwarded: AtomicU64,
    /// Queries served for remote relays (source role).
    pub served: AtomicU64,
    /// Requests shed by the rate limiter.
    pub shed: AtomicU64,
}

/// A relay service instance.
pub struct RelayService {
    id: String,
    local_network: String,
    discovery: Arc<dyn DiscoveryService>,
    transport: Arc<dyn RelayTransport>,
    drivers: RwLock<HashMap<String, Arc<dyn NetworkDriver>>>,
    event_sources: RwLock<HashMap<String, Arc<dyn EventSource>>>,
    subscriptions: RwLock<HashMap<String, Sender<EventNotice>>>,
    subscription_counter: AtomicU64,
    rate_limiter: Option<RateLimiter>,
    down: AtomicBool,
    stats: RelayStats,
}

impl std::fmt::Debug for RelayService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelayService")
            .field("id", &self.id)
            .field("local_network", &self.local_network)
            .field("drivers", &self.drivers.read().keys().collect::<Vec<_>>())
            .field("down", &self.down.load(Ordering::Relaxed))
            .finish()
    }
}

impl RelayService {
    /// Creates a relay for `local_network`.
    pub fn new(
        id: impl Into<String>,
        local_network: impl Into<String>,
        discovery: Arc<dyn DiscoveryService>,
        transport: Arc<dyn RelayTransport>,
    ) -> Self {
        RelayService {
            id: id.into(),
            local_network: local_network.into(),
            discovery,
            transport,
            drivers: RwLock::new(HashMap::new()),
            event_sources: RwLock::new(HashMap::new()),
            subscriptions: RwLock::new(HashMap::new()),
            subscription_counter: AtomicU64::new(0),
            rate_limiter: None,
            down: AtomicBool::new(false),
            stats: RelayStats::default(),
        }
    }

    /// Installs a rate limiter (builder style).
    pub fn with_rate_limiter(mut self, limiter: RateLimiter) -> Self {
        self.rate_limiter = Some(limiter);
        self
    }

    /// The relay's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The network this relay serves.
    pub fn local_network(&self) -> &str {
        &self.local_network
    }

    /// Monitoring counters.
    pub fn stats(&self) -> &RelayStats {
        &self.stats
    }

    /// Registers the driver that executes queries against a local network.
    pub fn register_driver(&self, driver: Arc<dyn NetworkDriver>) {
        self.drivers
            .write()
            .insert(driver.network_id().to_string(), driver);
    }

    /// Registers the event feed for a local network.
    pub fn register_event_source(&self, source: Arc<dyn EventSource>) {
        self.event_sources
            .write()
            .insert(source.network_id().to_string(), source);
    }

    /// The endpoint other relays reach this relay at (in-process bus).
    pub fn inproc_endpoint(&self) -> String {
        format!("inproc:{}", self.id)
    }

    /// Destination role: subscribes to a remote network's block events.
    /// Every pushed [`EventNotice`] arrives on the returned receiver.
    ///
    /// # Errors
    ///
    /// * [`RelayError::RelayDown`] when this relay is down.
    /// * [`RelayError::DiscoveryFailed`] for unknown networks.
    /// * [`RelayError::Remote`] when the source refuses the subscription.
    pub fn subscribe_remote_events(
        &self,
        network_id: &str,
        auth: AuthInfo,
    ) -> Result<Receiver<EventNotice>, RelayError> {
        if self.is_down() {
            return Err(RelayError::RelayDown(self.id.clone()));
        }
        let endpoint = self.discovery.lookup(network_id)?;
        let seq = self.subscription_counter.fetch_add(1, Ordering::Relaxed);
        let subscription_id = format!("{}-sub-{seq}", self.id);
        let (tx, rx) = unbounded();
        self.subscriptions
            .write()
            .insert(subscription_id.clone(), tx);
        let request = EventSubscribeRequest {
            subscription_id: subscription_id.clone(),
            network_id: network_id.to_string(),
            reply_endpoint: self.inproc_endpoint(),
            auth,
        };
        let envelope = RelayEnvelope {
            kind: EnvelopeKind::EventSubscribe,
            source_relay: self.id.clone(),
            dest_network: network_id.to_string(),
            payload: request.encode_to_vec(),
        };
        let reply = match self.transport.send(&endpoint, &envelope) {
            Ok(reply) => reply,
            Err(e) => {
                self.subscriptions.write().remove(&subscription_id);
                return Err(e);
            }
        };
        match reply.kind {
            EnvelopeKind::Ack => Ok(rx),
            EnvelopeKind::Error => {
                self.subscriptions.write().remove(&subscription_id);
                Err(RelayError::Remote(
                    String::from_utf8_lossy(&reply.payload).into_owned(),
                ))
            }
            other => {
                self.subscriptions.write().remove(&subscription_id);
                Err(RelayError::Remote(format!(
                    "unexpected subscription reply {other:?}"
                )))
            }
        }
    }

    /// Cancels a local subscription (the source learns on its next push).
    pub fn unsubscribe(&self, subscription_id: &str) {
        self.subscriptions.write().remove(subscription_id);
    }

    /// Number of live local subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.read().len()
    }

    /// Simulates an outage (availability experiments).
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Relaxed);
    }

    /// True when the relay is simulating an outage.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Relaxed)
    }

    /// Destination role: forwards `query` to the source network's relay
    /// and returns its response (Fig. 2, Steps 1-3 and 9).
    ///
    /// # Errors
    ///
    /// * [`RelayError::RelayDown`] when this relay is down.
    /// * [`RelayError::RateLimited`] when the local limiter sheds the call.
    /// * [`RelayError::DiscoveryFailed`] when the remote network is unknown.
    /// * [`RelayError::TransportFailed`] when the remote relay is unreachable.
    /// * [`RelayError::Remote`] when the remote relay reports an error.
    pub fn relay_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        if self.is_down() {
            return Err(RelayError::RelayDown(self.id.clone()));
        }
        if let Some(limiter) = &self.rate_limiter {
            if !limiter.try_acquire() {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                return Err(RelayError::RateLimited);
            }
        }
        let target_network = &query.address.network_id;
        // Step 2: discovery.
        let endpoint = self.discovery.lookup(target_network)?;
        // Step 3: serialize and forward.
        let envelope = RelayEnvelope::query(self.id.clone(), target_network.clone(), query);
        let reply = self.transport.send(&endpoint, &envelope)?;
        self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
        match reply.kind {
            EnvelopeKind::QueryResponse => Ok(QueryResponse::decode_from_slice(&reply.payload)?),
            EnvelopeKind::Error => Err(RelayError::Remote(
                String::from_utf8_lossy(&reply.payload).into_owned(),
            )),
            other => Err(RelayError::Remote(format!(
                "unexpected reply envelope {other:?}"
            ))),
        }
    }

    /// Source role: handles one incoming envelope (Fig. 2, Steps 4-8).
    fn handle_envelope(&self, envelope: RelayEnvelope) -> RelayEnvelope {
        if self.is_down() {
            return RelayEnvelope::error(
                self.id.clone(),
                envelope.dest_network,
                format!("relay {} is down", self.id),
            );
        }
        if let Some(limiter) = &self.rate_limiter {
            if !limiter.try_acquire() {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                return RelayEnvelope::error(
                    self.id.clone(),
                    envelope.dest_network,
                    "rate limited",
                );
            }
        }
        match envelope.kind {
            EnvelopeKind::Ping => RelayEnvelope {
                kind: EnvelopeKind::Pong,
                source_relay: self.id.clone(),
                dest_network: envelope.dest_network,
                payload: Vec::new(),
            },
            EnvelopeKind::QueryRequest => {
                // Step 4: deserialize, determine the target network.
                let query = match Query::decode_from_slice(&envelope.payload) {
                    Ok(q) => q,
                    Err(e) => {
                        return RelayEnvelope::error(
                            self.id.clone(),
                            envelope.dest_network,
                            format!("malformed query: {e}"),
                        )
                    }
                };
                let network = &query.address.network_id;
                let driver = match self.drivers.read().get(network).cloned() {
                    Some(d) => d,
                    None => {
                        return RelayEnvelope::error(
                            self.id.clone(),
                            envelope.dest_network,
                            format!("no driver for network {network:?}"),
                        )
                    }
                };
                // Steps 5-7: the driver orchestrates the query and proof
                // collection against the network's peers.
                self.stats.served.fetch_add(1, Ordering::Relaxed);
                match driver.execute_query(&query) {
                    Ok(response) => RelayEnvelope::response(
                        self.id.clone(),
                        envelope.source_relay,
                        &response,
                    ),
                    Err(e) => RelayEnvelope::error(
                        self.id.clone(),
                        envelope.dest_network,
                        e.to_string(),
                    ),
                }
            }
            // Source side: accept an event subscription and start the feed.
            EnvelopeKind::EventSubscribe => {
                let request = match EventSubscribeRequest::decode_from_slice(&envelope.payload) {
                    Ok(r) => r,
                    Err(e) => {
                        return RelayEnvelope::error(
                            self.id.clone(),
                            envelope.dest_network,
                            format!("malformed subscription: {e}"),
                        )
                    }
                };
                let source = match self.event_sources.read().get(&request.network_id).cloned() {
                    Some(s) => s,
                    None => {
                        return RelayEnvelope::error(
                            self.id.clone(),
                            envelope.dest_network,
                            format!("no event source for network {:?}", request.network_id),
                        )
                    }
                };
                // The sink pushes each notice back over the transport.
                let transport = Arc::clone(&self.transport);
                let reply_endpoint = request.reply_endpoint.clone();
                let relay_id = self.id.clone();
                let subscriber_network = request.auth.network_id.clone();
                let sink: EventSink = Box::new(move |notice| {
                    let push = RelayEnvelope {
                        kind: EnvelopeKind::Event,
                        source_relay: relay_id.clone(),
                        dest_network: subscriber_network.clone(),
                        payload: notice.encode_to_vec(),
                    };
                    match transport.send(&reply_endpoint, &push) {
                        Ok(reply) if reply.kind == EnvelopeKind::Ack => Ok(()),
                        Ok(reply) => Err(RelayError::Remote(format!(
                            "subscriber replied {:?}",
                            reply.kind
                        ))),
                        Err(e) => Err(e),
                    }
                });
                match source.start(&request, sink) {
                    Ok(()) => RelayEnvelope {
                        kind: EnvelopeKind::Ack,
                        source_relay: self.id.clone(),
                        dest_network: envelope.dest_network,
                        payload: Vec::new(),
                    },
                    Err(e) => RelayEnvelope::error(
                        self.id.clone(),
                        envelope.dest_network,
                        e.to_string(),
                    ),
                }
            }
            // Destination side: route a pushed event to its subscriber.
            EnvelopeKind::Event => {
                let notice = match EventNotice::decode_from_slice(&envelope.payload) {
                    Ok(n) => n,
                    Err(e) => {
                        return RelayEnvelope::error(
                            self.id.clone(),
                            envelope.dest_network,
                            format!("malformed event: {e}"),
                        )
                    }
                };
                let subscription_id = notice.subscription_id.clone();
                let delivered = {
                    let subs = self.subscriptions.read();
                    subs.get(&subscription_id)
                        .map(|tx| tx.send(notice).is_ok())
                        .unwrap_or(false)
                };
                if delivered {
                    RelayEnvelope {
                        kind: EnvelopeKind::Ack,
                        source_relay: self.id.clone(),
                        dest_network: envelope.dest_network,
                        payload: Vec::new(),
                    }
                } else {
                    // Subscriber gone: drop it and tell the source to stop.
                    self.subscriptions.write().remove(&subscription_id);
                    RelayEnvelope::error(
                        self.id.clone(),
                        envelope.dest_network,
                        format!("no live subscription {subscription_id:?}"),
                    )
                }
            }
            other => RelayEnvelope::error(
                self.id.clone(),
                envelope.dest_network,
                format!("unsupported envelope kind {other:?}"),
            ),
        }
    }
}

impl EnvelopeHandler for RelayService {
    fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope {
        self.handle_envelope(envelope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::StaticRegistry;
    use crate::driver::EchoDriver;
    use crate::transport::InProcessBus;
    use tdt_wire::messages::NetworkAddress;

    struct Fixture {
        swt_relay: Arc<RelayService>,
        stl_relay: Arc<RelayService>,
        registry: Arc<StaticRegistry>,
        bus: Arc<InProcessBus>,
    }

    fn fixture() -> Fixture {
        fixture_with_limit(None)
    }

    fn fixture_with_limit(limit: Option<RateLimiter>) -> Fixture {
        let registry = Arc::new(StaticRegistry::new());
        let bus = Arc::new(InProcessBus::new());
        registry.register("stl", "inproc:stl-relay");
        registry.register("swt", "inproc:swt-relay");
        let mut stl_relay = RelayService::new(
            "stl-relay",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        );
        if let Some(limit) = limit {
            stl_relay = stl_relay.with_rate_limiter(limit);
        }
        let stl_relay = Arc::new(stl_relay);
        stl_relay.register_driver(Arc::new(EchoDriver::new("stl")));
        let swt_relay = Arc::new(RelayService::new(
            "swt-relay",
            "swt",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        ));
        bus.register("stl-relay", Arc::clone(&stl_relay) as Arc<dyn EnvelopeHandler>);
        bus.register("swt-relay", Arc::clone(&swt_relay) as Arc<dyn EnvelopeHandler>);
        Fixture {
            swt_relay,
            stl_relay,
            registry,
            bus,
        }
    }

    fn bl_query() -> Query {
        Query {
            request_id: "req-1".into(),
            address: NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
                .with_arg(b"PO-1001".to_vec()),
            ..Default::default()
        }
    }

    #[test]
    fn cross_relay_query_roundtrip() {
        let f = fixture();
        let response = f.swt_relay.relay_query(&bl_query()).unwrap();
        assert_eq!(response.result, b"PO-1001");
        assert_eq!(response.request_id, "req-1");
        assert_eq!(f.swt_relay.stats().forwarded.load(Ordering::Relaxed), 1);
        assert_eq!(f.stl_relay.stats().served.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unknown_network_discovery_error() {
        let f = fixture();
        let mut query = bl_query();
        query.address.network_id = "mars".into();
        assert!(matches!(
            f.swt_relay.relay_query(&query),
            Err(RelayError::DiscoveryFailed(_))
        ));
    }

    #[test]
    fn remote_relay_without_driver_reports_error() {
        let f = fixture();
        // Point "stl" at the SWT relay, which has no driver for stl.
        f.registry.register("stl", "inproc:swt-relay");
        assert!(matches!(
            f.swt_relay.relay_query(&bl_query()),
            Err(RelayError::Remote(m)) if m.contains("no driver")
        ));
    }

    #[test]
    fn downed_local_relay_rejects() {
        let f = fixture();
        f.swt_relay.set_down(true);
        assert!(matches!(
            f.swt_relay.relay_query(&bl_query()),
            Err(RelayError::RelayDown(_))
        ));
        f.swt_relay.set_down(false);
        assert!(f.swt_relay.relay_query(&bl_query()).is_ok());
    }

    #[test]
    fn downed_remote_relay_reports_error() {
        let f = fixture();
        f.stl_relay.set_down(true);
        assert!(matches!(
            f.swt_relay.relay_query(&bl_query()),
            Err(RelayError::Remote(m)) if m.contains("down")
        ));
    }

    #[test]
    fn unreachable_remote_relay_transport_error() {
        let f = fixture();
        f.bus.deregister("stl-relay");
        assert!(matches!(
            f.swt_relay.relay_query(&bl_query()),
            Err(RelayError::TransportFailed(_))
        ));
    }

    #[test]
    fn source_rate_limiting_sheds() {
        let f = fixture_with_limit(Some(RateLimiter::new(2, 0.0)));
        assert!(f.swt_relay.relay_query(&bl_query()).is_ok());
        assert!(f.swt_relay.relay_query(&bl_query()).is_ok());
        let err = f.swt_relay.relay_query(&bl_query()).unwrap_err();
        assert!(matches!(err, RelayError::Remote(m) if m.contains("rate limited")));
        assert_eq!(f.stl_relay.stats().shed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ping_pong() {
        let f = fixture();
        let ping = RelayEnvelope {
            kind: EnvelopeKind::Ping,
            source_relay: "tester".into(),
            dest_network: "stl".into(),
            payload: Vec::new(),
        };
        let pong = f.stl_relay.handle(ping);
        assert_eq!(pong.kind, EnvelopeKind::Pong);
        assert_eq!(pong.source_relay, "stl-relay");
    }

    #[test]
    fn malformed_query_payload_reports_error() {
        let f = fixture();
        let bad = RelayEnvelope {
            kind: EnvelopeKind::QueryRequest,
            source_relay: "t".into(),
            dest_network: "stl".into(),
            payload: vec![0xff, 0xff, 0xff],
        };
        let reply = f.stl_relay.handle(bad);
        assert_eq!(reply.kind, EnvelopeKind::Error);
    }

    #[test]
    fn unsupported_envelope_kind() {
        let f = fixture();
        let odd = RelayEnvelope {
            kind: EnvelopeKind::QueryResponse,
            source_relay: "t".into(),
            dest_network: "stl".into(),
            payload: Vec::new(),
        };
        let reply = f.stl_relay.handle(odd);
        assert_eq!(reply.kind, EnvelopeKind::Error);
    }
}
