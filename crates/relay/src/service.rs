//! The relay service itself.
//!
//! One relay is deployed per network. It plays two roles in the paper's
//! message flow (Fig. 2):
//!
//! * **destination side** — [`RelayService::relay_query`] implements Steps
//!   1-3 and 9: take a client query, discover the remote relay, serialize
//!   and forward, return the response to the application.
//! * **source side** — the [`EnvelopeHandler`] impl implements Steps 4-8:
//!   deserialize the incoming request, pick the driver for the addressed
//!   network, orchestrate proof collection, and reply.

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::breaker::CircuitBreaker;
use crate::discovery::DiscoveryService;
use crate::driver::NetworkDriver;
use crate::error::RelayError;
use crate::events::{EventSink, EventSource};
use crate::ratelimit::RateLimiter;
use crate::retry::RetryPolicy;
use crate::transport::{EnvelopeHandler, PoolStats, RelayTransport};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};
use tdt_crypto::certcache::CertChainCache;
use tdt_obs::flight::{self, FlightKind};
use tdt_obs::metrics::Histogram;
use tdt_obs::span::{self as obs_span, RecordErr, Span};
use tdt_obs::Slo;
use tdt_wire::codec::Message;
use tdt_wire::messages::{
    AuthInfo, EnvelopeKind, EventNotice, EventSubscribeRequest, Query, QueryResponse, RelayEnvelope,
};

/// Upper bounds of the envelope-handling latency histogram buckets; the
/// sixth bucket is the unbounded overflow.
pub const LATENCY_BUCKET_BOUNDS: [Duration; 5] = [
    Duration::from_micros(100),
    Duration::from_millis(1),
    Duration::from_millis(10),
    Duration::from_millis(100),
    Duration::from_secs(1),
];

/// How long an envelope may spend queued + processing before the relay
/// answers with a deadline error instead.
pub const DEFAULT_REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// Prefix of the error-envelope payload a relay sends when its admission
/// controller sheds a request. Clients match on it to map the reply to
/// the retryable [`RelayError::Overloaded`] instead of the terminal
/// [`RelayError::Remote`]; the prefix is part of the wire contract, so
/// peers running older code simply see a remote error string.
pub const OVERLOADED_PREFIX: &str = "overloaded: ";

/// Bounded depth of each event-subscription delivery queue. A subscriber
/// that falls further behind than this loses notices (counted in
/// [`RelayStats::events_dropped`]) instead of blocking the source-side
/// push path.
pub const EVENT_QUEUE_CAPACITY: usize = 64;

/// Counters exposed for monitoring and the availability experiments.
#[derive(Debug, Default)]
pub struct RelayStats {
    /// Queries forwarded to remote relays (destination role).
    pub forwarded: AtomicU64,
    /// Queries served for remote relays (source role).
    pub served: AtomicU64,
    /// Requests shed by the rate limiter.
    pub shed: AtomicU64,
    /// Envelopes handed to the worker pool.
    pub enqueued: AtomicU64,
    /// Envelopes answered with a deadline error.
    pub deadline_exceeded: AtomicU64,
    /// Event notices delivered to local subscribers.
    pub events_delivered: AtomicU64,
    /// Event notices dropped because a subscriber's queue was full.
    pub events_dropped: AtomicU64,
    queue_depth: AtomicU64,
    in_flight: AtomicU64,
    latency_buckets: [AtomicU64; 6],
    latency_ns: OnceLock<Histogram>,
    cert_cache: OnceLock<Arc<CertChainCache>>,
    pool_stats: OnceLock<Arc<PoolStats>>,
    breaker: OnceLock<Arc<CircuitBreaker>>,
    admission: OnceLock<Arc<AdmissionController>>,
}

impl RelayStats {
    /// Envelopes currently waiting in the worker-pool queue.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Envelopes currently being processed by workers.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Envelope-handling latency histogram. Bucket `i < 5` counts
    /// envelopes completed within [`LATENCY_BUCKET_BOUNDS`]`[i]`; bucket 5
    /// counts the rest.
    pub fn latency_histogram(&self) -> [u64; 6] {
        let mut out = [0; 6];
        for (slot, bucket) in out.iter_mut().zip(&self.latency_buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// Total envelopes measured by the latency histogram.
    pub fn handled(&self) -> u64 {
        self.latency_histogram().iter().sum()
    }

    fn record_latency(&self, elapsed: Duration) {
        let i = LATENCY_BUCKET_BOUNDS
            .iter()
            .position(|bound| elapsed <= *bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS.len());
        // `i` is at most the overflow-bucket index, but never index: a
        // histogram must not be able to take the relay down.
        if let Some(bucket) = self.latency_buckets.get(i) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        // The exponential histogram keeps sum/count/max, so mean and tail
        // latency stay recoverable where the fixed buckets saturate.
        self.latency_ns()
            .observe(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// The exponential envelope-handling latency histogram (nanoseconds).
    /// Tracks `sum`, `count` and `max` alongside the buckets; adopt it
    /// into a metrics registry to export it.
    pub fn latency_ns(&self) -> &Histogram {
        self.latency_ns.get_or_init(Histogram::latency_nanos)
    }

    /// Largest envelope-handling latency observed, in nanoseconds.
    pub fn latency_max_nanos(&self) -> u64 {
        self.latency_ns().snapshot().max
    }

    /// Sum of all envelope-handling latencies, in nanoseconds.
    pub fn latency_sum_nanos(&self) -> u64 {
        self.latency_ns().snapshot().sum
    }

    /// Takes a point-in-time copy of every counter, suitable for merging
    /// across relays with [`RelayStatsSnapshot::merge`]. Each atomic is
    /// read independently: the snapshot is not a consistent cut, but it
    /// is always safe to take while workers mutate the counters.
    pub fn snapshot(&self) -> RelayStatsSnapshot {
        let latency = self.latency_ns().snapshot();
        RelayStatsSnapshot {
            forwarded: self.forwarded.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            enqueued: self.enqueued.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            events_delivered: self.events_delivered.load(Ordering::Relaxed),
            events_dropped: self.events_dropped.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            latency_buckets: self.latency_histogram(),
            latency_sum_nanos: latency.sum,
            latency_max_nanos: latency.max,
            cache_hits: self.cache_hits(),
            cache_misses: self.cache_misses(),
            pool_connections_open: self.pool_connections_open(),
            pool_connections_dialed: self.pool_connections_dialed(),
            pool_connections_reused: self.pool_connections_reused(),
            pool_requests_in_flight: self.pool_requests_in_flight(),
            pool_orphaned_replies: self.pool_orphaned_replies(),
            pool_connections_culled: self.pool_connections_culled(),
            breaker_trips: self.breaker_trips(),
            breaker_probes: self.breaker_probes(),
            breaker_fast_rejects: self.breaker_fast_rejects(),
            breaker_open_endpoints: self.breaker_open_endpoints(),
            admission_admitted: self.admission_admitted(),
            admission_shed: self.admission_shed(),
        }
    }

    /// Certificate-chain cache hits, when a cache is attached.
    pub fn cache_hits(&self) -> u64 {
        self.cert_cache.get().map_or(0, |c| c.hits())
    }

    /// Certificate-chain cache misses, when a cache is attached.
    pub fn cache_misses(&self) -> u64 {
        self.cert_cache.get().map_or(0, |c| c.misses())
    }

    /// Certificate-chain cache hit rate (0.0 without a cache or lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        self.cert_cache.get().map_or(0.0, |c| c.hit_rate())
    }

    /// Transport-pool connections currently open, when pool stats are
    /// attached.
    pub fn pool_connections_open(&self) -> u64 {
        self.pool_stats.get().map_or(0, |p| p.connections_open())
    }

    /// Transport-pool connections dialed over the pool's lifetime, when
    /// pool stats are attached.
    pub fn pool_connections_dialed(&self) -> u64 {
        self.pool_stats.get().map_or(0, |p| p.connections_dialed())
    }

    /// Requests that reused an already-open pooled connection, when pool
    /// stats are attached.
    pub fn pool_connections_reused(&self) -> u64 {
        self.pool_stats.get().map_or(0, |p| p.connections_reused())
    }

    /// Requests currently in flight on pooled connections, when pool
    /// stats are attached.
    pub fn pool_requests_in_flight(&self) -> u64 {
        self.pool_stats.get().map_or(0, |p| p.requests_in_flight())
    }

    /// Multiplexed replies dropped for lack of a matching waiter, when
    /// pool stats are attached.
    pub fn pool_orphaned_replies(&self) -> u64 {
        self.pool_stats.get().map_or(0, |p| p.orphaned_replies())
    }

    /// Pooled connections pruned as dead at checkout time, when pool
    /// stats are attached.
    pub fn pool_connections_culled(&self) -> u64 {
        self.pool_stats.get().map_or(0, |p| p.connections_culled())
    }

    /// Times the attached circuit breaker tripped open.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker.get().map_or(0, |b| b.trips())
    }

    /// Half-open probe requests admitted by the attached breaker.
    pub fn breaker_probes(&self) -> u64 {
        self.breaker.get().map_or(0, |b| b.probes())
    }

    /// Requests rejected instantly by an open circuit.
    pub fn breaker_fast_rejects(&self) -> u64 {
        self.breaker.get().map_or(0, |b| b.fast_rejects())
    }

    /// Endpoints whose circuit is currently open or half-open.
    pub fn breaker_open_endpoints(&self) -> u64 {
        self.breaker.get().map_or(0, |b| b.open_endpoints())
    }

    /// Requests admitted to the worker-pool queue by the attached
    /// admission controller.
    pub fn admission_admitted(&self) -> u64 {
        self.admission.get().map_or(0, |a| a.admitted())
    }

    /// Requests shed at the admission gate before queuing.
    pub fn admission_shed(&self) -> u64 {
        self.admission.get().map_or(0, |a| a.shed())
    }

    /// The admission controller's smoothed per-job service-time
    /// estimate, in nanoseconds (0 without a controller).
    pub fn admission_service_estimate_ns(&self) -> u64 {
        self.admission.get().map_or(0, |a| {
            a.service_time_estimate().as_nanos().min(u64::MAX as u128) as u64
        })
    }
}

/// A point-in-time copy of [`RelayStats`], mergeable across relays —
/// e.g. to aggregate the members of a [`crate::redundancy::RelayGroup`]
/// into one dashboard row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelayStatsSnapshot {
    /// Queries forwarded to remote relays (destination role).
    pub forwarded: u64,
    /// Queries served for remote relays (source role).
    pub served: u64,
    /// Requests shed by the rate limiter.
    pub shed: u64,
    /// Envelopes handed to the worker pool.
    pub enqueued: u64,
    /// Envelopes answered with a deadline error.
    pub deadline_exceeded: u64,
    /// Event notices delivered to local subscribers.
    pub events_delivered: u64,
    /// Event notices dropped because a subscriber's queue was full.
    pub events_dropped: u64,
    /// Envelopes waiting in the worker-pool queue at snapshot time.
    pub queue_depth: u64,
    /// Envelopes being processed at snapshot time.
    pub in_flight: u64,
    /// Envelope-handling latency histogram (see [`LATENCY_BUCKET_BOUNDS`]).
    pub latency_buckets: [u64; 6],
    /// Sum of all handling latencies in nanoseconds (mean = sum / handled).
    pub latency_sum_nanos: u64,
    /// Largest handling latency observed, in nanoseconds — the fixed
    /// buckets saturate silently at the top bucket; this does not.
    pub latency_max_nanos: u64,
    /// Certificate-chain cache hits.
    pub cache_hits: u64,
    /// Certificate-chain cache misses.
    pub cache_misses: u64,
    /// Transport-pool connections open at snapshot time.
    pub pool_connections_open: u64,
    /// Transport-pool connections dialed over the pool's lifetime.
    pub pool_connections_dialed: u64,
    /// Requests that reused an already-open pooled connection.
    pub pool_connections_reused: u64,
    /// Requests in flight on pooled connections at snapshot time.
    pub pool_requests_in_flight: u64,
    /// Multiplexed replies dropped for lack of a matching waiter.
    pub pool_orphaned_replies: u64,
    /// Pooled connections pruned as dead at checkout time.
    pub pool_connections_culled: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Half-open probe requests admitted by the breaker.
    pub breaker_probes: u64,
    /// Requests rejected instantly by an open circuit.
    pub breaker_fast_rejects: u64,
    /// Endpoints open or half-open at snapshot time.
    pub breaker_open_endpoints: u64,
    /// Requests admitted to the queue by the admission controller.
    pub admission_admitted: u64,
    /// Requests shed at the admission gate before queuing.
    pub admission_shed: u64,
}

impl RelayStatsSnapshot {
    /// Adds `other`'s counters into `self`. Bucket-wise histogram merge
    /// is positional (both histograms share [`LATENCY_BUCKET_BOUNDS`]);
    /// all arithmetic saturates, so merging can never panic — not on
    /// overflow, and not on any histogram the other side hands us.
    pub fn merge(&mut self, other: &RelayStatsSnapshot) {
        self.forwarded = self.forwarded.saturating_add(other.forwarded);
        self.served = self.served.saturating_add(other.served);
        self.shed = self.shed.saturating_add(other.shed);
        self.enqueued = self.enqueued.saturating_add(other.enqueued);
        self.deadline_exceeded = self
            .deadline_exceeded
            .saturating_add(other.deadline_exceeded);
        self.events_delivered = self.events_delivered.saturating_add(other.events_delivered);
        self.events_dropped = self.events_dropped.saturating_add(other.events_dropped);
        self.queue_depth = self.queue_depth.saturating_add(other.queue_depth);
        self.in_flight = self.in_flight.saturating_add(other.in_flight);
        for (mine, theirs) in self.latency_buckets.iter_mut().zip(&other.latency_buckets) {
            *mine = mine.saturating_add(*theirs);
        }
        self.latency_sum_nanos = self
            .latency_sum_nanos
            .saturating_add(other.latency_sum_nanos);
        self.latency_max_nanos = self.latency_max_nanos.max(other.latency_max_nanos);
        self.cache_hits = self.cache_hits.saturating_add(other.cache_hits);
        self.cache_misses = self.cache_misses.saturating_add(other.cache_misses);
        self.pool_connections_open = self
            .pool_connections_open
            .saturating_add(other.pool_connections_open);
        self.pool_connections_dialed = self
            .pool_connections_dialed
            .saturating_add(other.pool_connections_dialed);
        self.pool_connections_reused = self
            .pool_connections_reused
            .saturating_add(other.pool_connections_reused);
        self.pool_requests_in_flight = self
            .pool_requests_in_flight
            .saturating_add(other.pool_requests_in_flight);
        self.pool_orphaned_replies = self
            .pool_orphaned_replies
            .saturating_add(other.pool_orphaned_replies);
        self.pool_connections_culled = self
            .pool_connections_culled
            .saturating_add(other.pool_connections_culled);
        self.breaker_trips = self.breaker_trips.saturating_add(other.breaker_trips);
        self.breaker_probes = self.breaker_probes.saturating_add(other.breaker_probes);
        self.breaker_fast_rejects = self
            .breaker_fast_rejects
            .saturating_add(other.breaker_fast_rejects);
        self.breaker_open_endpoints = self
            .breaker_open_endpoints
            .saturating_add(other.breaker_open_endpoints);
        self.admission_admitted = self
            .admission_admitted
            .saturating_add(other.admission_admitted);
        self.admission_shed = self.admission_shed.saturating_add(other.admission_shed);
    }

    /// Total envelopes measured by the merged latency histogram.
    pub fn handled(&self) -> u64 {
        self.latency_buckets
            .iter()
            .fold(0u64, |acc, b| acc.saturating_add(*b))
    }
}

/// One unit of work for the relay's worker pool.
struct Job {
    envelope: RelayEnvelope,
    deadline: Instant,
    reply: Sender<RelayEnvelope>,
}

struct WorkerPool {
    tx: Sender<Job>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// A relay service instance.
pub struct RelayService {
    id: String,
    local_network: String,
    discovery: Arc<dyn DiscoveryService>,
    transport: Arc<dyn RelayTransport>,
    drivers: RwLock<HashMap<String, Arc<dyn NetworkDriver>>>,
    event_sources: RwLock<HashMap<String, Arc<dyn EventSource>>>,
    subscriptions: RwLock<HashMap<String, Sender<EventNotice>>>,
    subscription_counter: AtomicU64,
    rate_limiter: Option<RateLimiter>,
    request_deadline: Duration,
    pool: RwLock<Option<WorkerPool>>,
    down: AtomicBool,
    breaker: Option<Arc<CircuitBreaker>>,
    admission: Option<Arc<AdmissionController>>,
    slo: Option<Arc<Slo>>,
    stats: RelayStats,
}

impl std::fmt::Debug for RelayService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RelayService")
            .field("id", &self.id)
            .field("local_network", &self.local_network)
            .field("drivers", &self.drivers.read().keys().collect::<Vec<_>>())
            .field("down", &self.down.load(Ordering::Relaxed))
            .finish()
    }
}

impl RelayService {
    /// Creates a relay for `local_network`.
    pub fn new(
        id: impl Into<String>,
        local_network: impl Into<String>,
        discovery: Arc<dyn DiscoveryService>,
        transport: Arc<dyn RelayTransport>,
    ) -> Self {
        RelayService {
            id: id.into(),
            local_network: local_network.into(),
            discovery,
            transport,
            drivers: RwLock::new(HashMap::new()),
            event_sources: RwLock::new(HashMap::new()),
            subscriptions: RwLock::new(HashMap::new()),
            subscription_counter: AtomicU64::new(0),
            rate_limiter: None,
            request_deadline: DEFAULT_REQUEST_DEADLINE,
            pool: RwLock::new(None),
            down: AtomicBool::new(false),
            breaker: None,
            admission: None,
            slo: None,
            stats: RelayStats::default(),
        }
    }

    /// Installs a rate limiter (builder style).
    pub fn with_rate_limiter(mut self, limiter: RateLimiter) -> Self {
        self.rate_limiter = Some(limiter);
        self
    }

    /// Overrides the per-request deadline enforced by the worker pool
    /// (builder style). Inline processing is not subject to deadlines.
    pub fn with_request_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = deadline;
        self
    }

    /// Consults `breaker` before forwarding to a remote relay endpoint
    /// and reports transport outcomes back to it (builder style). While
    /// an endpoint's circuit is open, [`RelayService::relay_query`] fails
    /// fast with [`RelayError::CircuitOpen`]. The breaker's counters are
    /// surfaced through [`RelayService::stats`].
    pub fn with_breaker(mut self, breaker: Arc<CircuitBreaker>) -> Self {
        self.stats.breaker.set(Arc::clone(&breaker)).ok();
        self.breaker = Some(breaker);
        self
    }

    /// Installs deadline-aware admission control in front of the worker
    /// pool (builder style). Requests whose deadline budget cannot
    /// plausibly be met at the current queue depth are shed *before*
    /// queuing, with an error envelope that clients map to the retryable
    /// [`RelayError::Overloaded`]. Sheds and admits are surfaced through
    /// [`RelayService::stats`]. Inline handling (no worker pool) never
    /// queues, so the gate only engages once
    /// [`RelayService::start_workers`] has run.
    pub fn with_admission_control(mut self, config: AdmissionConfig) -> Self {
        let admission = Arc::new(AdmissionController::new(config));
        self.stats.admission.set(Arc::clone(&admission)).ok();
        self.admission = Some(admission);
        self
    }

    /// Attaches a service-level objective that every handled envelope is
    /// scored against (builder style): latency from dispatch to reply,
    /// availability from whether the reply is an error envelope. Breach
    /// detection (multi-window burn rate) runs inside the [`Slo`]; wire
    /// the same handle through [`tdt_obs::slo::register_slo`] to export
    /// its burn gauges.
    pub fn with_slo(mut self, slo: Arc<Slo>) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Attaches the certificate-chain cache shared with the CMDAC so its
    /// hit rate shows up in [`RelayService::stats`] (builder style).
    pub fn with_cert_cache(self, cache: Arc<CertChainCache>) -> Self {
        self.stats.cert_cache.set(cache).ok();
        self
    }

    /// Attaches the health counters of the pooled TCP transport carrying
    /// this relay's outbound traffic, so pool behaviour shows up in
    /// [`RelayService::stats`] (builder style). Obtain them from
    /// [`crate::transport::PooledTcpTransport::stats`].
    pub fn with_pool_stats(self, stats: Arc<PoolStats>) -> Self {
        self.stats.pool_stats.set(stats).ok();
        self
    }

    /// Switches envelope handling from inline (caller's thread) to a pool
    /// of `workers` threads fed through a crossbeam channel. Envelopes
    /// arriving from the in-process bus and from TCP connections then
    /// execute in parallel, each bounded by the request deadline. A pool
    /// of one worker serializes all handling (the bench baseline).
    ///
    /// Calling again replaces the running pool.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    pub fn start_workers(self: &Arc<Self>, workers: usize) {
        assert!(workers > 0, "worker pool needs at least one worker");
        self.stop_workers();
        let (tx, rx) = unbounded::<Job>();
        let handles = (0..workers)
            .map(|i| {
                let service = Arc::downgrade(self);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("{}-worker-{i}", self.id))
                    .spawn(move || worker_loop(&service, &rx))
                    // lint:allow(panic: "local pool sizing at startup, not reachable from network input; a host that cannot spawn threads cannot run a relay")
                    .expect("spawn relay worker")
            })
            .collect();
        *self.pool.write() = Some(WorkerPool {
            tx,
            workers: handles,
        });
        if let Some(admission) = &self.admission {
            admission.set_workers(workers);
        }
    }

    /// Stops the worker pool (reverting to inline handling) and joins the
    /// worker threads. Must not be called from a worker thread.
    pub fn stop_workers(&self) {
        let pool = self.pool.write().take();
        if let Some(pool) = pool {
            drop(pool.tx);
            for handle in pool.workers {
                handle.join().ok();
            }
        }
    }

    /// Number of pool workers (0 when handling inline).
    pub fn worker_count(&self) -> usize {
        self.pool.read().as_ref().map_or(0, |p| p.workers.len())
    }

    /// The relay's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The network this relay serves.
    pub fn local_network(&self) -> &str {
        &self.local_network
    }

    /// Monitoring counters.
    pub fn stats(&self) -> &RelayStats {
        &self.stats
    }

    /// Registers the driver that executes queries against a local network.
    pub fn register_driver(&self, driver: Arc<dyn NetworkDriver>) {
        self.drivers
            .write()
            .insert(driver.network_id().to_string(), driver);
    }

    /// Registers the event feed for a local network.
    pub fn register_event_source(&self, source: Arc<dyn EventSource>) {
        self.event_sources
            .write()
            .insert(source.network_id().to_string(), source);
    }

    /// The endpoint other relays reach this relay at (in-process bus).
    pub fn inproc_endpoint(&self) -> String {
        format!("inproc:{}", self.id)
    }

    /// Destination role: subscribes to a remote network's block events.
    /// Every pushed [`EventNotice`] arrives on the returned receiver.
    ///
    /// # Errors
    ///
    /// * [`RelayError::RelayDown`] when this relay is down.
    /// * [`RelayError::DiscoveryFailed`] for unknown networks.
    /// * [`RelayError::Remote`] when the source refuses the subscription.
    pub fn subscribe_remote_events(
        &self,
        network_id: &str,
        auth: AuthInfo,
    ) -> Result<Receiver<EventNotice>, RelayError> {
        let (mut span, _obs_guard) = obs_span::enter("relay.subscribe");
        self.subscribe_remote_events_inner(network_id, auth)
            .record_err(&mut span)
    }

    fn subscribe_remote_events_inner(
        &self,
        network_id: &str,
        auth: AuthInfo,
    ) -> Result<Receiver<EventNotice>, RelayError> {
        if self.is_down() {
            return Err(RelayError::RelayDown(self.id.clone()));
        }
        let endpoint = self.discovery.lookup(network_id)?;
        let seq = self.subscription_counter.fetch_add(1, Ordering::Relaxed);
        let subscription_id = format!("{}-sub-{seq}", self.id);
        // Bounded: a slow subscriber loses notices (counted) instead of
        // growing an unbounded queue or blocking the pushing source.
        let (tx, rx) = bounded(EVENT_QUEUE_CAPACITY);
        self.subscriptions
            .write()
            .insert(subscription_id.clone(), tx);
        let request = EventSubscribeRequest {
            subscription_id: subscription_id.clone(),
            network_id: network_id.to_string(),
            reply_endpoint: self.inproc_endpoint(),
            auth,
        };
        let envelope = RelayEnvelope {
            kind: EnvelopeKind::EventSubscribe,
            source_relay: self.id.clone(),
            dest_network: network_id.to_string(),
            payload: request.encode_to_vec(),
            correlation_id: 0,
            trace: Default::default(),
            batch: Vec::new(),
        };
        let reply = match self.transport.send(&endpoint, &envelope) {
            Ok(reply) => reply,
            Err(e) => {
                self.subscriptions.write().remove(&subscription_id);
                return Err(e);
            }
        };
        match reply.kind {
            EnvelopeKind::Ack => Ok(rx),
            EnvelopeKind::Error => {
                self.subscriptions.write().remove(&subscription_id);
                Err(RelayError::Remote(
                    String::from_utf8_lossy(&reply.payload).into_owned(),
                ))
            }
            other => {
                self.subscriptions.write().remove(&subscription_id);
                Err(RelayError::Remote(format!(
                    "unexpected subscription reply {other:?}"
                )))
            }
        }
    }

    /// Cancels a local subscription (the source learns on its next push).
    pub fn unsubscribe(&self, subscription_id: &str) {
        self.subscriptions.write().remove(subscription_id);
    }

    /// Number of live local subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.read().len()
    }

    /// Simulates an outage (availability experiments).
    pub fn set_down(&self, down: bool) {
        // Release/Acquire so a requester that observes the flag flip also
        // observes any state the experiment mutated before flipping it.
        self.down.store(down, Ordering::Release);
    }

    /// True when the relay is simulating an outage.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    /// Destination role: forwards `query` to the source network's relay
    /// and returns its response (Fig. 2, Steps 1-3 and 9).
    ///
    /// # Errors
    ///
    /// * [`RelayError::RelayDown`] when this relay is down.
    /// * [`RelayError::RateLimited`] when the local limiter sheds the call.
    /// * [`RelayError::DiscoveryFailed`] when the remote network is unknown.
    /// * [`RelayError::CircuitOpen`] when the endpoint's breaker is open.
    /// * [`RelayError::TransportFailed`] when the remote relay is unreachable.
    /// * [`RelayError::Remote`] when the remote relay reports an error.
    pub fn relay_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        let (mut span, _obs_guard) = obs_span::enter("relay.query");
        self.relay_query_inner(query, &mut span)
            .record_err(&mut span)
    }

    fn relay_query_inner(
        &self,
        query: &Query,
        span: &mut Span,
    ) -> Result<QueryResponse, RelayError> {
        if self.is_down() {
            return Err(RelayError::RelayDown(self.id.clone()));
        }
        if let Some(limiter) = &self.rate_limiter {
            if !limiter.try_acquire() {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                return Err(RelayError::RateLimited);
            }
        }
        let target_network = &query.address.network_id;
        // Step 2: discovery.
        let endpoint = self.discovery.lookup(target_network)?;
        let mut admission = crate::breaker::Admission::default();
        if let Some(breaker) = &self.breaker {
            match breaker.try_acquire(&endpoint) {
                Ok(a) => admission = a,
                Err(e) => {
                    span.event("breaker.fast_reject");
                    return Err(e);
                }
            }
        }
        // Step 3: serialize and forward. The transport hop gets its own
        // span; the envelope carries that span's context so the remote
        // relay parents its work under this hop.
        let envelope = RelayEnvelope::query(self.id.clone(), target_network.clone(), query);
        let reply = {
            let (mut send_span, _send_guard) = obs_span::enter("transport.send");
            let envelope = envelope.with_trace(crate::telemetry::current_trace_header());
            let sent = self.transport.send(&endpoint, &envelope);
            match sent.record_err(&mut send_span) {
                Ok(reply) => {
                    if let Some(breaker) = &self.breaker {
                        breaker.record_outcome(&endpoint, admission, true);
                    }
                    reply
                }
                Err(error) => {
                    if let Some(breaker) = &self.breaker {
                        // Terminal errors and admission sheds mean the
                        // endpoint answered — only transient faults
                        // count against its health.
                        let healthy = !RetryPolicy::counts_against_breaker(&error);
                        breaker.record_outcome(&endpoint, admission, healthy);
                    }
                    return Err(error);
                }
            }
        };
        self.stats.forwarded.fetch_add(1, Ordering::Relaxed);
        match reply.kind {
            EnvelopeKind::QueryResponse => Ok(QueryResponse::decode_from_slice(&reply.payload)?),
            EnvelopeKind::Error => {
                let message = String::from_utf8_lossy(&reply.payload).into_owned();
                // An admission shed is a liveness signal, not a remote
                // fault: map it to the retryable error so callers (and
                // relay groups) fail over instead of giving up.
                match message.strip_prefix(OVERLOADED_PREFIX) {
                    Some(detail) => Err(RelayError::Overloaded(detail.to_string())),
                    None => Err(RelayError::Remote(message)),
                }
            }
            other => Err(RelayError::Remote(format!(
                "unexpected reply envelope {other:?}"
            ))),
        }
    }

    /// Dispatches an incoming envelope: straight to [`Self::process_envelope`]
    /// when no pool is running, otherwise through the worker-pool channel
    /// with the request deadline enforced on the reply.
    fn dispatch(&self, envelope: RelayEnvelope, start: Instant) -> RelayEnvelope {
        let tx = self.pool.read().as_ref().map(|p| p.tx.clone());
        let Some(tx) = tx else {
            return self.process_envelope(envelope);
        };
        let dest_network = envelope.dest_network.clone();
        // Deadline-aware admission: shed *before* the queue when the
        // backlog makes meeting the deadline implausible. A shed costs
        // microseconds and is retryable; queuing it would cost the whole
        // deadline and a worker's time on a request nobody awaits.
        if let Some(admission) = &self.admission {
            let depth = self.stats.queue_depth.load(Ordering::Relaxed);
            let budget = self.request_deadline.saturating_sub(start.elapsed());
            if let Err(estimated) = admission.admit(depth, budget) {
                let remote = crate::telemetry::context_from_envelope(&envelope);
                let (mut span, _obs_guard) = obs_span::enter_remote("relay.admission", &remote);
                span.event("admission.shed");
                flight::record(
                    FlightKind::Admission,
                    1,
                    depth,
                    budget.as_nanos().min(u128::from(u64::MAX)) as u64,
                );
                let message = format!(
                    "{OVERLOADED_PREFIX}queue depth {depth} implies ~{estimated:?} wait \
                     against a {budget:?} deadline budget"
                );
                span.fail(&message);
                return RelayEnvelope::error(self.id.clone(), dest_network, message);
            }
        }
        let (reply_tx, reply_rx) = bounded(1);
        self.stats.enqueued.fetch_add(1, Ordering::Relaxed);
        self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            envelope,
            deadline: start + self.request_deadline,
            reply: reply_tx,
        };
        if tx.send(job).is_err() {
            // Pool shut down concurrently; the job was never queued.
            self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            return RelayEnvelope::error(
                self.id.clone(),
                dest_network,
                "relay worker pool unavailable".to_string(),
            );
        }
        match reply_rx.recv_timeout(self.request_deadline) {
            Ok(reply) => reply,
            Err(RecvTimeoutError::Timeout) => {
                self.stats.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
                flight::record(
                    FlightKind::Admission,
                    2,
                    self.stats.queue_depth.load(Ordering::Relaxed),
                    self.request_deadline.as_nanos().min(u128::from(u64::MAX)) as u64,
                );
                RelayEnvelope::error(
                    self.id.clone(),
                    dest_network,
                    format!("deadline of {:?} exceeded", self.request_deadline),
                )
            }
            Err(RecvTimeoutError::Disconnected) => RelayEnvelope::error(
                self.id.clone(),
                dest_network,
                "relay worker pool shut down mid-request".to_string(),
            ),
        }
    }

    /// Builds an error reply, recording the failure on the active span.
    fn error_reply(&self, span: &mut Span, dest_network: String, message: String) -> RelayEnvelope {
        span.fail(&message);
        RelayEnvelope::error(self.id.clone(), dest_network, message)
    }

    /// Source role: handles one incoming envelope (Fig. 2, Steps 4-8).
    ///
    /// Runs on a worker thread when the pool is active, so the trace
    /// context is re-installed here from the envelope's wire header
    /// rather than inherited from the dispatching thread.
    fn process_envelope(&self, envelope: RelayEnvelope) -> RelayEnvelope {
        tdt_obs::profile_scope!("relay.dispatch");
        let remote = crate::telemetry::context_from_envelope(&envelope);
        let (mut span, _obs_guard) = obs_span::enter_remote("relay.handle", &remote);
        if self.is_down() {
            let message = format!("relay {} is down", self.id);
            return self.error_reply(&mut span, envelope.dest_network, message);
        }
        // Batched frames expand here, before the rate limiter, so each
        // sub-request pays for exactly one token on its own recursive
        // pass instead of the frame being double-charged.
        if envelope.is_batch() {
            span.event("batch.expand");
            return self.process_batch(envelope);
        }
        if let Some(limiter) = &self.rate_limiter {
            if !limiter.try_acquire() {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                return self.error_reply(
                    &mut span,
                    envelope.dest_network,
                    "rate limited".to_string(),
                );
            }
        }
        match envelope.kind {
            EnvelopeKind::Ping => RelayEnvelope {
                kind: EnvelopeKind::Pong,
                source_relay: self.id.clone(),
                dest_network: envelope.dest_network,
                payload: Vec::new(),
                correlation_id: 0,
                trace: Default::default(),
                batch: Vec::new(),
            },
            EnvelopeKind::QueryRequest => {
                // Step 4: deserialize, determine the target network.
                let query = match Query::decode_from_slice(&envelope.payload) {
                    Ok(q) => q,
                    Err(e) => {
                        let message = format!("malformed query: {e}");
                        return self.error_reply(&mut span, envelope.dest_network, message);
                    }
                };
                let network = &query.address.network_id;
                let driver = match self.drivers.read().get(network).cloned() {
                    Some(d) => d,
                    None => {
                        let message = format!("no driver for network {network:?}");
                        return self.error_reply(&mut span, envelope.dest_network, message);
                    }
                };
                // Steps 5-7: the driver orchestrates the query and proof
                // collection against the network's peers.
                self.stats.served.fetch_add(1, Ordering::Relaxed);
                let outcome = {
                    let (mut driver_span, _driver_guard) = obs_span::enter("driver.execute");
                    driver.execute_query(&query).record_err(&mut driver_span)
                };
                match outcome {
                    Ok(response) => {
                        RelayEnvelope::response(self.id.clone(), envelope.source_relay, &response)
                    }
                    Err(e) => self.error_reply(&mut span, envelope.dest_network, e.to_string()),
                }
            }
            // Source side: accept an event subscription and start the feed.
            EnvelopeKind::EventSubscribe => {
                let request = match EventSubscribeRequest::decode_from_slice(&envelope.payload) {
                    Ok(r) => r,
                    Err(e) => {
                        let message = format!("malformed subscription: {e}");
                        return self.error_reply(&mut span, envelope.dest_network, message);
                    }
                };
                let source = match self.event_sources.read().get(&request.network_id).cloned() {
                    Some(s) => s,
                    None => {
                        let message =
                            format!("no event source for network {:?}", request.network_id);
                        return self.error_reply(&mut span, envelope.dest_network, message);
                    }
                };
                // The sink pushes each notice back over the transport.
                let transport = Arc::clone(&self.transport);
                let reply_endpoint = request.reply_endpoint.clone();
                let relay_id = self.id.clone();
                let subscriber_network = request.auth.network_id.clone();
                let sink: EventSink = Box::new(move |notice| {
                    let push = RelayEnvelope {
                        kind: EnvelopeKind::Event,
                        source_relay: relay_id.clone(),
                        dest_network: subscriber_network.clone(),
                        payload: notice.encode_to_vec(),
                        correlation_id: 0,
                        trace: Default::default(),
                        batch: Vec::new(),
                    };
                    match transport.send(&reply_endpoint, &push) {
                        Ok(reply) if reply.kind == EnvelopeKind::Ack => Ok(()),
                        Ok(reply) => Err(RelayError::Remote(format!(
                            "subscriber replied {:?}",
                            reply.kind
                        ))),
                        Err(e) => Err(e),
                    }
                });
                match source.start(&request, sink) {
                    Ok(()) => RelayEnvelope {
                        kind: EnvelopeKind::Ack,
                        source_relay: self.id.clone(),
                        dest_network: envelope.dest_network,
                        payload: Vec::new(),
                        correlation_id: 0,
                        trace: Default::default(),
                        batch: Vec::new(),
                    },
                    Err(e) => self.error_reply(&mut span, envelope.dest_network, e.to_string()),
                }
            }
            // Destination side: route a pushed event to its subscriber.
            EnvelopeKind::Event => {
                let notice = match EventNotice::decode_from_slice(&envelope.payload) {
                    Ok(n) => n,
                    Err(e) => {
                        let message = format!("malformed event: {e}");
                        return self.error_reply(&mut span, envelope.dest_network, message);
                    }
                };
                let subscription_id = notice.subscription_id.clone();
                // Non-blocking delivery: a full queue drops the notice
                // (and counts it) instead of stalling the pushing source.
                enum Delivery {
                    Sent,
                    Full,
                    Gone,
                }
                let delivery = {
                    let subs = self.subscriptions.read();
                    match subs.get(&subscription_id) {
                        Some(tx) => match tx.try_send(notice) {
                            Ok(()) => Delivery::Sent,
                            Err(TrySendError::Full(_)) => Delivery::Full,
                            Err(TrySendError::Disconnected(_)) => Delivery::Gone,
                        },
                        None => Delivery::Gone,
                    }
                };
                match delivery {
                    Delivery::Sent => {
                        self.stats.events_delivered.fetch_add(1, Ordering::Relaxed);
                        RelayEnvelope {
                            kind: EnvelopeKind::Ack,
                            source_relay: self.id.clone(),
                            dest_network: envelope.dest_network,
                            payload: Vec::new(),
                            correlation_id: 0,
                            trace: Default::default(),
                            batch: Vec::new(),
                        }
                    }
                    Delivery::Full => {
                        // Lagging subscriber: the notice is lost, the
                        // subscription stays live, the source keeps going.
                        self.stats.events_dropped.fetch_add(1, Ordering::Relaxed);
                        span.event("event.dropped");
                        RelayEnvelope {
                            kind: EnvelopeKind::Ack,
                            source_relay: self.id.clone(),
                            dest_network: envelope.dest_network,
                            payload: Vec::new(),
                            correlation_id: 0,
                            trace: Default::default(),
                            batch: Vec::new(),
                        }
                    }
                    Delivery::Gone => {
                        // Subscriber gone: drop it and tell the source to stop.
                        self.subscriptions.write().remove(&subscription_id);
                        let message = format!("no live subscription {subscription_id:?}");
                        self.error_reply(&mut span, envelope.dest_network, message)
                    }
                }
            }
            other => {
                let message = format!("unsupported envelope kind {other:?}");
                self.error_reply(&mut span, envelope.dest_network, message)
            }
        }
    }

    /// Expands a batched frame: each item is a complete encoded
    /// [`RelayEnvelope`] handled through the normal single-envelope path,
    /// and each per-item reply envelope (success *or* error — items fail
    /// independently) is re-encoded into the reply batch at the same
    /// position. Correlation inside a batch is positional; the outer
    /// reply's `correlation_id` is stamped by the transport server as
    /// for any other frame.
    fn process_batch(&self, envelope: RelayEnvelope) -> RelayEnvelope {
        let mut replies = Vec::with_capacity(envelope.batch.len());
        for item in &envelope.batch {
            let reply = match RelayEnvelope::decode_from_slice(item) {
                // One level of batching only: a nested batch would let a
                // single frame amplify itself arbitrarily.
                Ok(sub) if sub.is_batch() => RelayEnvelope::error(
                    self.id.clone(),
                    envelope.dest_network.clone(),
                    "nested batch rejected".to_string(),
                ),
                Ok(sub) => self.process_envelope(sub),
                Err(e) => RelayEnvelope::error(
                    self.id.clone(),
                    envelope.dest_network.clone(),
                    format!("malformed batch item: {e}"),
                ),
            };
            replies.push(reply.encode_to_vec());
        }
        RelayEnvelope::response_batch(self.id.clone(), envelope.dest_network, replies)
    }

    /// Number of live subscriptions whose delivery queue is currently
    /// full — i.e. subscribers lagging far enough to be losing notices.
    pub fn lagging_subscriptions(&self) -> u64 {
        self.subscriptions
            .read()
            .values()
            .filter(|tx| tx.is_full())
            .count() as u64
    }
}

impl EnvelopeHandler for RelayService {
    fn handle(&self, envelope: RelayEnvelope) -> RelayEnvelope {
        let start = Instant::now();
        let reply = self.dispatch(envelope, start);
        let latency = start.elapsed();
        self.stats.record_latency(latency);
        if let Some(slo) = &self.slo {
            slo.record(latency, reply.kind != EnvelopeKind::Error);
        }
        reply
    }
}

/// Worker-pool thread body: drain jobs until the pool's sender side is
/// dropped or the relay itself is gone. Jobs whose deadline has already
/// passed while queued are answered with an error without being run.
fn worker_loop(service: &Weak<RelayService>, jobs: &Receiver<Job>) {
    while let Ok(job) = jobs.recv() {
        let Some(service) = service.upgrade() else {
            break;
        };
        service.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        if Instant::now() >= job.deadline {
            // The caller counts the deadline in its own timeout path;
            // here we only avoid wasting work on an abandoned request.
            let reply = RelayEnvelope::error(
                service.id().to_string(),
                job.envelope.dest_network,
                "deadline exceeded while queued".to_string(),
            );
            job.reply.send(reply).ok();
            continue;
        }
        service.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let reply = service.process_envelope(job.envelope);
        if let Some(admission) = &service.admission {
            admission.observe_service_time(started.elapsed());
        }
        service.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        // The caller may have timed out and gone away; that's fine.
        job.reply.send(reply).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::StaticRegistry;
    use crate::driver::EchoDriver;
    use crate::transport::InProcessBus;
    use tdt_wire::messages::NetworkAddress;

    struct Fixture {
        swt_relay: Arc<RelayService>,
        stl_relay: Arc<RelayService>,
        registry: Arc<StaticRegistry>,
        bus: Arc<InProcessBus>,
    }

    fn fixture() -> Fixture {
        fixture_with_limit(None)
    }

    fn fixture_with_limit(limit: Option<RateLimiter>) -> Fixture {
        let registry = Arc::new(StaticRegistry::new());
        let bus = Arc::new(InProcessBus::new());
        registry.register("stl", "inproc:stl-relay");
        registry.register("swt", "inproc:swt-relay");
        let mut stl_relay = RelayService::new(
            "stl-relay",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        );
        if let Some(limit) = limit {
            stl_relay = stl_relay.with_rate_limiter(limit);
        }
        let stl_relay = Arc::new(stl_relay);
        stl_relay.register_driver(Arc::new(EchoDriver::new("stl")));
        let swt_relay = Arc::new(RelayService::new(
            "swt-relay",
            "swt",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        ));
        bus.register(
            "stl-relay",
            Arc::clone(&stl_relay) as Arc<dyn EnvelopeHandler>,
        );
        bus.register(
            "swt-relay",
            Arc::clone(&swt_relay) as Arc<dyn EnvelopeHandler>,
        );
        Fixture {
            swt_relay,
            stl_relay,
            registry,
            bus,
        }
    }

    fn bl_query() -> Query {
        Query {
            request_id: "req-1".into(),
            address: NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
                .with_arg(b"PO-1001".to_vec()),
            ..Default::default()
        }
    }

    #[test]
    fn cross_relay_query_roundtrip() {
        let f = fixture();
        let response = f.swt_relay.relay_query(&bl_query()).unwrap();
        assert_eq!(response.result, b"PO-1001");
        assert_eq!(response.request_id, "req-1");
        assert_eq!(f.swt_relay.stats().forwarded.load(Ordering::Relaxed), 1);
        assert_eq!(f.stl_relay.stats().served.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unknown_network_discovery_error() {
        let f = fixture();
        let mut query = bl_query();
        query.address.network_id = "mars".into();
        assert!(matches!(
            f.swt_relay.relay_query(&query),
            Err(RelayError::DiscoveryFailed(_))
        ));
    }

    #[test]
    fn remote_relay_without_driver_reports_error() {
        let f = fixture();
        // Point "stl" at the SWT relay, which has no driver for stl.
        f.registry.register("stl", "inproc:swt-relay");
        assert!(matches!(
            f.swt_relay.relay_query(&bl_query()),
            Err(RelayError::Remote(m)) if m.contains("no driver")
        ));
    }

    #[test]
    fn downed_local_relay_rejects() {
        let f = fixture();
        f.swt_relay.set_down(true);
        assert!(matches!(
            f.swt_relay.relay_query(&bl_query()),
            Err(RelayError::RelayDown(_))
        ));
        f.swt_relay.set_down(false);
        assert!(f.swt_relay.relay_query(&bl_query()).is_ok());
    }

    #[test]
    fn downed_remote_relay_reports_error() {
        let f = fixture();
        f.stl_relay.set_down(true);
        assert!(matches!(
            f.swt_relay.relay_query(&bl_query()),
            Err(RelayError::Remote(m)) if m.contains("down")
        ));
    }

    #[test]
    fn unreachable_remote_relay_transport_error() {
        let f = fixture();
        f.bus.deregister("stl-relay");
        assert!(matches!(
            f.swt_relay.relay_query(&bl_query()),
            Err(RelayError::TransportFailed(_))
        ));
    }

    #[test]
    fn source_rate_limiting_sheds() {
        let f = fixture_with_limit(Some(RateLimiter::new(2, 0.0)));
        assert!(f.swt_relay.relay_query(&bl_query()).is_ok());
        assert!(f.swt_relay.relay_query(&bl_query()).is_ok());
        let err = f.swt_relay.relay_query(&bl_query()).unwrap_err();
        assert!(matches!(err, RelayError::Remote(m) if m.contains("rate limited")));
        assert_eq!(f.stl_relay.stats().shed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ping_pong() {
        let f = fixture();
        let ping = RelayEnvelope {
            kind: EnvelopeKind::Ping,
            source_relay: "tester".into(),
            dest_network: "stl".into(),
            payload: Vec::new(),
            correlation_id: 0,
            trace: Default::default(),
            batch: Vec::new(),
        };
        let pong = f.stl_relay.handle(ping);
        assert_eq!(pong.kind, EnvelopeKind::Pong);
        assert_eq!(pong.source_relay, "stl-relay");
    }

    #[test]
    fn malformed_query_payload_reports_error() {
        let f = fixture();
        let bad = RelayEnvelope {
            kind: EnvelopeKind::QueryRequest,
            source_relay: "t".into(),
            dest_network: "stl".into(),
            payload: vec![0xff, 0xff, 0xff],
            correlation_id: 0,
            trace: Default::default(),
            batch: Vec::new(),
        };
        let reply = f.stl_relay.handle(bad);
        assert_eq!(reply.kind, EnvelopeKind::Error);
    }

    #[test]
    fn pooled_relay_serves_queries() {
        let f = fixture();
        f.stl_relay.start_workers(4);
        assert_eq!(f.stl_relay.worker_count(), 4);
        for i in 0..8 {
            let mut query = bl_query();
            query.request_id = format!("req-{i}");
            let response = f.swt_relay.relay_query(&query).unwrap();
            assert_eq!(response.request_id, format!("req-{i}"));
        }
        assert_eq!(f.stl_relay.stats().served.load(Ordering::Relaxed), 8);
        assert_eq!(f.stl_relay.stats().enqueued.load(Ordering::Relaxed), 8);
        assert_eq!(f.stl_relay.stats().handled(), 8);
        assert_eq!(f.stl_relay.stats().queue_depth(), 0);
        assert_eq!(f.stl_relay.stats().in_flight(), 0);
        f.stl_relay.stop_workers();
        assert_eq!(f.stl_relay.worker_count(), 0);
        // Back to inline handling.
        assert!(f.swt_relay.relay_query(&bl_query()).is_ok());
    }

    #[test]
    fn pooled_relay_parallel_callers() {
        let f = fixture();
        f.stl_relay.start_workers(4);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let swt_relay = Arc::clone(&f.swt_relay);
                scope.spawn(move || {
                    for i in 0..4 {
                        let mut query = bl_query();
                        query.request_id = format!("req-{t}-{i}");
                        assert!(swt_relay.relay_query(&query).is_ok());
                    }
                });
            }
        });
        assert_eq!(f.stl_relay.stats().served.load(Ordering::Relaxed), 16);
        assert_eq!(f.stl_relay.stats().enqueued.load(Ordering::Relaxed), 16);
        f.stl_relay.stop_workers();
    }

    #[test]
    fn slow_handler_hits_deadline() {
        /// A driver that sleeps longer than the relay's deadline.
        #[derive(Debug)]
        struct SlowDriver;
        impl crate::driver::NetworkDriver for SlowDriver {
            fn network_id(&self) -> &str {
                "stl"
            }
            fn execute_query(
                &self,
                query: &Query,
            ) -> Result<tdt_wire::messages::QueryResponse, RelayError> {
                std::thread::sleep(std::time::Duration::from_millis(100));
                Ok(tdt_wire::messages::QueryResponse {
                    request_id: query.request_id.clone(),
                    ..Default::default()
                })
            }
        }
        let registry = Arc::new(StaticRegistry::new());
        let bus = Arc::new(InProcessBus::new());
        registry.register("stl", "inproc:stl-relay");
        let stl_relay = Arc::new(
            RelayService::new(
                "stl-relay",
                "stl",
                Arc::clone(&registry) as Arc<dyn DiscoveryService>,
                Arc::clone(&bus) as Arc<dyn RelayTransport>,
            )
            .with_request_deadline(std::time::Duration::from_millis(10)),
        );
        stl_relay.register_driver(Arc::new(SlowDriver));
        bus.register(
            "stl-relay",
            Arc::clone(&stl_relay) as Arc<dyn EnvelopeHandler>,
        );
        stl_relay.start_workers(1);
        let swt_relay = Arc::new(RelayService::new(
            "swt-relay",
            "swt",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        ));
        let err = swt_relay.relay_query(&bl_query()).unwrap_err();
        assert!(
            matches!(&err, RelayError::Remote(m) if m.contains("deadline")),
            "expected deadline error, got {err:?}"
        );
        assert_eq!(
            stl_relay.stats().deadline_exceeded.load(Ordering::Relaxed),
            1
        );
        stl_relay.stop_workers();
    }

    #[test]
    fn latency_histogram_counts_inline_handling() {
        let f = fixture();
        assert_eq!(f.stl_relay.stats().handled(), 0);
        f.swt_relay.relay_query(&bl_query()).unwrap();
        assert_eq!(f.stl_relay.stats().handled(), 1);
        assert_eq!(
            f.stl_relay.stats().latency_histogram().iter().sum::<u64>(),
            1
        );
    }

    #[test]
    fn cert_cache_hit_rate_surfaces_in_stats() {
        use tdt_crypto::certcache::CertChainCache;
        let registry = Arc::new(StaticRegistry::new());
        let bus = Arc::new(InProcessBus::new());
        let cache = Arc::new(CertChainCache::new());
        let relay = RelayService::new(
            "r",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        )
        .with_cert_cache(Arc::clone(&cache));
        assert_eq!(relay.stats().cache_hit_rate(), 0.0);
        // Simulate the co-located CMDAC doing cached validations.
        use tdt_crypto::cert::{CertRole, CertificateAuthority};
        use tdt_crypto::group::Group;
        use tdt_crypto::schnorr::SigningKey;
        let mut authority =
            CertificateAuthority::new("stl", "seller-org", Group::test_group(), b"s");
        let key = SigningKey::from_seed(Group::test_group(), b"peer0");
        let cert = authority.issue("peer0", CertRole::Peer, &key.verifying_key(), None);
        let root = authority.root_certificate().clone();
        for _ in 0..4 {
            cache.verify_chain(&cert, &root).unwrap();
        }
        assert_eq!(relay.stats().cache_hits(), 3);
        assert_eq!(relay.stats().cache_misses(), 1);
        assert!((relay.stats().cache_hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn pool_stats_surface_in_relay_stats() {
        use crate::transport::{PooledTcpTransport, TcpRelayServer};
        let registry = Arc::new(StaticRegistry::new());
        let bus = Arc::new(InProcessBus::new());
        let stl_relay = Arc::new(RelayService::new(
            "stl-relay",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        ));
        stl_relay.register_driver(Arc::new(EchoDriver::new("stl")));
        let server = TcpRelayServer::spawn(
            "127.0.0.1:0",
            Arc::clone(&stl_relay) as Arc<dyn EnvelopeHandler>,
        )
        .unwrap();
        registry.register("stl", server.endpoint());
        let transport = Arc::new(PooledTcpTransport::new());
        let relay = RelayService::new(
            "swt-relay",
            "swt",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&transport) as Arc<dyn RelayTransport>,
        )
        .with_pool_stats(transport.stats());
        assert_eq!(relay.stats().pool_connections_open(), 0);
        for _ in 0..3 {
            relay.relay_query(&bl_query()).unwrap();
        }
        assert_eq!(relay.stats().pool_connections_dialed(), 1);
        assert_eq!(relay.stats().pool_connections_reused(), 2);
        assert_eq!(relay.stats().pool_connections_open(), 1);
        assert_eq!(relay.stats().pool_requests_in_flight(), 0);
        assert_eq!(relay.stats().pool_orphaned_replies(), 0);
    }

    #[test]
    fn breaker_trips_on_unreachable_endpoint_and_surfaces_in_stats() {
        use crate::breaker::{BreakerConfig, BreakerState};
        let registry = Arc::new(StaticRegistry::new());
        let bus = Arc::new(InProcessBus::new());
        // "stl" resolves, but nothing is registered on the bus, so every
        // forward dies in the transport.
        registry.register("stl", "inproc:stl-relay");
        let breaker = Arc::new(crate::breaker::CircuitBreaker::new(BreakerConfig {
            consecutive_failures: 3,
            cooldown: Duration::from_secs(60),
            ..BreakerConfig::default()
        }));
        let relay = RelayService::new(
            "swt-relay",
            "swt",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        )
        .with_breaker(Arc::clone(&breaker));
        for _ in 0..3 {
            assert!(matches!(
                relay.relay_query(&bl_query()),
                Err(RelayError::TransportFailed(_))
            ));
        }
        assert_eq!(breaker.state("inproc:stl-relay"), BreakerState::Open);
        // The next query is rejected locally, before the transport.
        assert!(matches!(
            relay.relay_query(&bl_query()),
            Err(RelayError::CircuitOpen(_))
        ));
        assert_eq!(relay.stats().breaker_trips(), 1);
        assert_eq!(relay.stats().breaker_open_endpoints(), 1);
        assert_eq!(relay.stats().breaker_fast_rejects(), 1);
        let snapshot = relay.stats().snapshot();
        assert_eq!(snapshot.breaker_trips, 1);
        assert_eq!(snapshot.breaker_open_endpoints, 1);
        assert_eq!(snapshot.breaker_fast_rejects, 1);
        let mut merged = snapshot.clone();
        merged.merge(&snapshot);
        assert_eq!(merged.breaker_trips, 2);
    }

    #[test]
    fn snapshot_and_merge_aggregate_counters() {
        let f = fixture();
        f.swt_relay.relay_query(&bl_query()).unwrap();
        let source = f.stl_relay.stats().snapshot();
        let dest = f.swt_relay.stats().snapshot();
        assert_eq!(source.served, 1);
        assert_eq!(dest.forwarded, 1);
        let mut group = source.clone();
        group.merge(&dest);
        assert_eq!(group.served, 1);
        assert_eq!(group.forwarded, 1);
        assert_eq!(group.handled(), source.handled() + dest.handled());
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = RelayStatsSnapshot {
            forwarded: u64::MAX - 1,
            latency_buckets: [u64::MAX, 1, 0, 0, 0, 0],
            ..Default::default()
        };
        let b = RelayStatsSnapshot {
            forwarded: 5,
            latency_buckets: [7, u64::MAX, 0, 0, 0, 0],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.forwarded, u64::MAX);
        assert_eq!(a.latency_buckets[0], u64::MAX);
        assert_eq!(a.latency_buckets[1], u64::MAX);
        // `handled` over saturated buckets must not panic either.
        assert_eq!(a.handled(), u64::MAX);
    }

    /// Regression: snapshotting + merging while workers hammer the
    /// latency histogram and queue counters must never panic and must
    /// never observe more handled envelopes than were recorded so far.
    #[test]
    fn snapshot_merge_under_concurrent_mutation() {
        let stats = Arc::new(RelayStats::default());
        let done = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let stats = Arc::clone(&stats);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        // Spread records across every bucket, including
                        // the overflow bucket.
                        let micros = 10u64 << ((n + w) % 10);
                        stats.record_latency(Duration::from_micros(micros));
                        stats.record_latency(Duration::from_secs(2));
                        stats.queue_depth.fetch_add(1, Ordering::Relaxed);
                        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        n += 2;
                    }
                    n
                })
            })
            .collect();
        let mut last_total = 0u64;
        for _ in 0..200 {
            let total = stats.snapshot().handled();
            let mut merged = stats.snapshot();
            merged.merge(&stats.snapshot());
            assert!(
                total >= last_total,
                "histogram total went backwards: {last_total} -> {total}"
            );
            assert!(merged.handled() >= total, "merge lost counts");
            last_total = total;
        }
        done.store(true, Ordering::Relaxed);
        let recorded: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(stats.snapshot().handled(), recorded);
    }

    #[test]
    fn unsupported_envelope_kind() {
        let f = fixture();
        let odd = RelayEnvelope {
            kind: EnvelopeKind::QueryResponse,
            source_relay: "t".into(),
            dest_network: "stl".into(),
            payload: Vec::new(),
            correlation_id: 0,
            trace: Default::default(),
            batch: Vec::new(),
        };
        let reply = f.stl_relay.handle(odd);
        assert_eq!(reply.kind, EnvelopeKind::Error);
    }
}
