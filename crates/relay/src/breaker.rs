//! Per-endpoint three-state circuit breaker.
//!
//! A relay that keeps hammering a black-holed peer pays the peer's
//! timeout on every request — exactly the amplification a DoS'd relay
//! group cannot afford (paper §5). The breaker converts repeated
//! transport failures into a fast local reject:
//!
//! ```text
//!            consecutive failures ≥ N
//!            or failure rate ≥ r over window
//!   CLOSED ──────────────────────────────────▶ OPEN
//!     ▲                                         │
//!     │ probe succeeds                cooldown  │
//!     │ (× required)                  elapsed   │
//!     │                                         ▼
//!     └──────────────────────────────────── HALF-OPEN
//!                     probe fails ▲───────────────┘
//!                     (back to OPEN)
//! ```
//!
//! While OPEN, [`CircuitBreaker::try_acquire`] fails instantly with
//! [`RelayError::CircuitOpen`]; after the cooldown one probe request at a
//! time is let through (HALF-OPEN). Enough probe successes close the
//! circuit; any probe failure re-opens it and restarts the cooldown.

use crate::error::RelayError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use tdt_obs::flight::{self, FlightKind};

/// FNV-1a over the endpoint string, so breaker flight events can name
/// the endpoint in 8 bytes (dump consumers correlate the hash across
/// trip/reject/probe events rather than reversing it).
fn endpoint_hash(endpoint: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in endpoint.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Trip and recovery thresholds for a [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub consecutive_failures: u32,
    /// Failure rate over the rolling window that trips the breaker.
    pub failure_rate: f64,
    /// Rolling outcome-window size for the rate threshold.
    pub window: usize,
    /// Minimum outcomes in the window before the rate threshold applies.
    pub min_samples: usize,
    /// How long the breaker stays open before allowing a probe.
    pub cooldown: Duration,
    /// Probe successes required to close again from half-open.
    pub required_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            consecutive_failures: 3,
            failure_rate: 0.6,
            window: 16,
            min_samples: 8,
            cooldown: Duration::from_millis(500),
            required_probes: 1,
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; failures are being counted.
    Closed,
    /// Requests are rejected instantly until the cooldown elapses.
    Open,
    /// One probe at a time is allowed through to test recovery.
    HalfOpen,
}

/// Token returned by a successful [`CircuitBreaker::try_acquire`],
/// attributing the admitted request.
///
/// While half-open, exactly one admission per endpoint is *the probe*.
/// Handing the token back through [`CircuitBreaker::record_outcome`]
/// lets the breaker credit (or blame) the probe itself, rather than
/// whichever outcome happens to arrive first: a straggler success from
/// a request admitted before the trip must not close the circuit while
/// the real probe is still deciding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[must_use = "pass the admission back via record_outcome so probe outcomes are attributed"]
pub struct Admission {
    probe: bool,
    /// Per-endpoint probe serial at admission time; an outcome from a
    /// probe superseded by a later trip is demoted to ordinary evidence.
    serial: u64,
}

impl Admission {
    /// True when this admission was the half-open probe.
    pub fn is_probe(&self) -> bool {
        self.probe
    }
}

/// Per-endpoint tracking state.
#[derive(Debug)]
struct EndpointState {
    state: BreakerState,
    consecutive_failures: u32,
    /// Rolling window of outcomes, `true` = failure, bounded by
    /// `config.window`.
    window: std::collections::VecDeque<bool>,
    opened_at: Instant,
    probe_in_flight: bool,
    probe_successes: u32,
    /// Incremented each time a probe is admitted; pairs an in-flight
    /// probe with its [`Admission`] token.
    probe_serial: u64,
}

impl EndpointState {
    fn new() -> Self {
        EndpointState {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            window: std::collections::VecDeque::new(),
            opened_at: Instant::now(),
            probe_in_flight: false,
            probe_successes: 0,
            probe_serial: 0,
        }
    }

    /// Marks the next probe admission and returns its token.
    fn admit_probe(&mut self) -> Admission {
        self.probe_in_flight = true;
        self.probe_serial += 1;
        Admission {
            probe: true,
            serial: self.probe_serial,
        }
    }

    fn push_outcome(&mut self, failed: bool, window: usize) {
        self.window.push_back(failed);
        while self.window.len() > window.max(1) {
            self.window.pop_front();
        }
    }

    fn failure_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let failures = self.window.iter().filter(|f| **f).count();
        failures as f64 / self.window.len() as f64
    }
}

/// A per-endpoint circuit breaker shared by transports and relay groups.
///
/// Endpoints are arbitrary strings: transport endpoints (`tcp:…`,
/// `inproc:…`) or relay ids when used by
/// [`crate::redundancy::RelayGroup`]. All methods are thread-safe; the
/// breaker takes one short internal lock and never calls out while
/// holding it.
pub struct CircuitBreaker {
    config: BreakerConfig,
    endpoints: Mutex<HashMap<String, EndpointState>>,
    trips: AtomicU64,
    probes: AtomicU64,
    fast_rejects: AtomicU64,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("config", &self.config)
            .field("endpoints", &self.endpoints.lock().len())
            .field("trips", &self.trips)
            .field("probes", &self.probes)
            .finish()
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new(BreakerConfig::default())
    }
}

impl CircuitBreaker {
    /// Creates a breaker with `config`.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            endpoints: Mutex::new(HashMap::new()),
            trips: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            fast_rejects: AtomicU64::new(0),
        }
    }

    /// The active thresholds.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Asks permission to send to `endpoint`.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::CircuitOpen`] while the endpoint's circuit is
    /// open (or half-open with a probe already in flight). A successful
    /// acquire during half-open marks this call as the probe; the caller
    /// must report the outcome via [`CircuitBreaker::record_outcome`]
    /// with the returned [`Admission`] so probe outcomes are attributed
    /// to the probe (the attribution-free
    /// [`CircuitBreaker::record_success`] / `record_failure` remain for
    /// outcomes that never held an admission).
    pub fn try_acquire(&self, endpoint: &str) -> Result<Admission, RelayError> {
        let mut endpoints = self.endpoints.lock();
        let Some(state) = endpoints.get_mut(endpoint) else {
            return Ok(Admission::default()); // unknown endpoint: closed by definition
        };
        match state.state {
            BreakerState::Closed => Ok(Admission::default()),
            BreakerState::Open => {
                if state.opened_at.elapsed() >= self.config.cooldown {
                    state.state = BreakerState::HalfOpen;
                    state.probe_successes = 0;
                    let admission = state.admit_probe();
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    flight::record(FlightKind::Breaker, 3, endpoint_hash(endpoint), 0);
                    Ok(admission)
                } else {
                    self.fast_rejects.fetch_add(1, Ordering::Relaxed);
                    flight::record(FlightKind::Breaker, 2, endpoint_hash(endpoint), 0);
                    Err(RelayError::CircuitOpen(endpoint.to_string()))
                }
            }
            BreakerState::HalfOpen => {
                if state.probe_in_flight {
                    self.fast_rejects.fetch_add(1, Ordering::Relaxed);
                    flight::record(FlightKind::Breaker, 2, endpoint_hash(endpoint), 1);
                    Err(RelayError::CircuitOpen(endpoint.to_string()))
                } else {
                    let admission = state.admit_probe();
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    flight::record(FlightKind::Breaker, 3, endpoint_hash(endpoint), 1);
                    Ok(admission)
                }
            }
        }
    }

    /// Records the outcome of an exchange admitted by
    /// [`CircuitBreaker::try_acquire`].
    ///
    /// Only the outcome of the *current* probe admission can close the
    /// circuit (or re-open it as a failed probe): a straggler success
    /// from a request admitted while the circuit was still closed says
    /// nothing about recovery, and previously could close the circuit
    /// while the real probe was outstanding — letting a second probe
    /// through and closing on stale evidence.
    pub fn record_outcome(&self, endpoint: &str, admission: Admission, success: bool) {
        let mut endpoints = self.endpoints.lock();
        let state = endpoints
            .entry(endpoint.to_string())
            .or_insert_with(EndpointState::new);
        // The admission is the live probe only if no trip superseded it.
        let is_current_probe = admission.probe
            && state.state == BreakerState::HalfOpen
            && state.probe_in_flight
            && admission.serial == state.probe_serial;
        if success {
            state.consecutive_failures = 0;
            state.push_outcome(false, self.config.window);
            if is_current_probe {
                state.probe_in_flight = false;
                state.probe_successes += 1;
                if state.probe_successes >= self.config.required_probes.max(1) {
                    state.state = BreakerState::Closed;
                    state.window.clear();
                }
            }
        } else {
            state.consecutive_failures = state.consecutive_failures.saturating_add(1);
            state.push_outcome(true, self.config.window);
            let trip = match state.state {
                // Any failure seen while half-open re-opens: a failed
                // probe by attribution, a straggler as conservative
                // evidence that the endpoint is still unhealthy.
                BreakerState::HalfOpen => {
                    if is_current_probe {
                        state.probe_in_flight = false;
                    }
                    true
                }
                BreakerState::Closed => {
                    state.consecutive_failures >= self.config.consecutive_failures.max(1)
                        || (state.window.len() >= self.config.min_samples.max(1)
                            && state.failure_rate() >= self.config.failure_rate)
                }
                BreakerState::Open => false,
            };
            if trip {
                state.state = BreakerState::Open;
                state.opened_at = Instant::now();
                state.probe_in_flight = false;
                state.probe_successes = 0;
                self.trips.fetch_add(1, Ordering::Relaxed);
                flight::record(
                    FlightKind::Breaker,
                    1,
                    endpoint_hash(endpoint),
                    u64::from(state.consecutive_failures),
                );
            }
        }
    }

    /// Records a successful exchange that never held an [`Admission`]
    /// (e.g. health signals from outside the acquire path). Never closes
    /// a half-open circuit.
    pub fn record_success(&self, endpoint: &str) {
        self.record_outcome(endpoint, Admission::default(), true);
    }

    /// Records a failed exchange that never held an [`Admission`],
    /// tripping the breaker when a threshold is crossed.
    pub fn record_failure(&self, endpoint: &str) {
        self.record_outcome(endpoint, Admission::default(), false);
    }

    /// The current state for `endpoint` (closed when never seen).
    pub fn state(&self, endpoint: &str) -> BreakerState {
        self.endpoints
            .lock()
            .get(endpoint)
            .map_or(BreakerState::Closed, |s| s.state)
    }

    /// True when `endpoint` would be fast-rejected right now (open and
    /// still cooling down, or half-open with a probe in flight).
    pub fn is_blocking(&self, endpoint: &str) -> bool {
        self.endpoints
            .lock()
            .get(endpoint)
            .is_some_and(|s| match s.state {
                BreakerState::Closed => false,
                BreakerState::Open => s.opened_at.elapsed() < self.config.cooldown,
                BreakerState::HalfOpen => s.probe_in_flight,
            })
    }

    /// Times the breaker tripped closed → open (or re-opened on a failed
    /// probe).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Probe requests admitted while half-open.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Requests rejected instantly by an open circuit.
    pub fn fast_rejects(&self) -> u64 {
        self.fast_rejects.load(Ordering::Relaxed)
    }

    /// Endpoints whose circuit is currently open or half-open.
    pub fn open_endpoints(&self) -> u64 {
        self.endpoints
            .lock()
            .values()
            .filter(|s| s.state != BreakerState::Closed)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> BreakerConfig {
        BreakerConfig {
            consecutive_failures: 3,
            cooldown: Duration::from_millis(20),
            ..BreakerConfig::default()
        }
    }

    #[test]
    fn closed_until_consecutive_threshold() {
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..2 {
            assert!(b.try_acquire("e").is_ok());
            b.record_failure("e");
        }
        assert_eq!(b.state("e"), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
        b.record_failure("e");
        assert_eq!(b.state("e"), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(matches!(
            b.try_acquire("e"),
            Err(RelayError::CircuitOpen(_))
        ));
        assert_eq!(b.fast_rejects(), 1);
        assert_eq!(b.open_endpoints(), 1);
    }

    #[test]
    fn success_resets_consecutive_count() {
        // Alternating F S never reaches 3 consecutive failures and the
        // window rate stays at 0.5 < 0.6, so the breaker stays closed.
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..10 {
            b.record_failure("e");
            b.record_success("e");
        }
        assert_eq!(b.state("e"), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn failure_rate_trips_without_consecutive_run() {
        let b = CircuitBreaker::new(BreakerConfig {
            consecutive_failures: 100, // out of reach
            failure_rate: 0.5,
            window: 8,
            min_samples: 8,
            ..fast_config()
        });
        // Alternate F S F S … then pile on failures: rate crosses 0.5.
        for _ in 0..4 {
            b.record_failure("e");
            b.record_success("e");
        }
        assert_eq!(b.state("e"), BreakerState::Closed);
        b.record_failure("e");
        // The bounded window is now 4 failures / 8 outcomes ≥ 0.5.
        assert_eq!(b.state("e"), BreakerState::Open);
    }

    #[test]
    fn open_to_half_open_probe_to_closed() {
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..3 {
            b.record_failure("e");
        }
        assert_eq!(b.state("e"), BreakerState::Open);
        assert!(b.try_acquire("e").is_err());
        std::thread::sleep(Duration::from_millis(25));
        // Cooldown elapsed: exactly one probe gets through.
        let probe = b.try_acquire("e").unwrap();
        assert!(probe.is_probe());
        assert_eq!(b.state("e"), BreakerState::HalfOpen);
        assert!(b.try_acquire("e").is_err(), "second probe must wait");
        assert_eq!(b.probes(), 1);
        b.record_outcome("e", probe, true);
        assert_eq!(b.state("e"), BreakerState::Closed);
        assert!(b.try_acquire("e").is_ok());
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..3 {
            b.record_failure("e");
        }
        std::thread::sleep(Duration::from_millis(25));
        let probe = b.try_acquire("e").unwrap();
        assert_eq!(b.state("e"), BreakerState::HalfOpen);
        b.record_outcome("e", probe, false);
        assert_eq!(b.state("e"), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(b.try_acquire("e").is_err(), "cooldown restarted");
    }

    #[test]
    fn multiple_probes_required_when_configured() {
        let b = CircuitBreaker::new(BreakerConfig {
            required_probes: 2,
            ..fast_config()
        });
        for _ in 0..3 {
            b.record_failure("e");
        }
        std::thread::sleep(Duration::from_millis(25));
        let first = b.try_acquire("e").unwrap();
        b.record_outcome("e", first, true);
        assert_eq!(b.state("e"), BreakerState::HalfOpen, "one probe not enough");
        let second = b.try_acquire("e").unwrap();
        b.record_outcome("e", second, true);
        assert_eq!(b.state("e"), BreakerState::Closed);
        assert_eq!(b.probes(), 2);
    }

    #[test]
    fn endpoints_are_independent() {
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..3 {
            b.record_failure("dead");
        }
        assert_eq!(b.state("dead"), BreakerState::Open);
        assert_eq!(b.state("healthy"), BreakerState::Closed);
        assert!(b.try_acquire("healthy").is_ok());
    }

    #[test]
    fn straggler_success_does_not_close_half_open() {
        let b = CircuitBreaker::new(fast_config());
        // A slow request is admitted while the circuit is still closed…
        let straggler = b.try_acquire("e").unwrap();
        assert!(!straggler.is_probe());
        // …then the endpoint degrades and the circuit trips and probes.
        for _ in 0..3 {
            b.record_failure("e");
        }
        std::thread::sleep(Duration::from_millis(25));
        let probe = b.try_acquire("e").unwrap();
        assert_eq!(b.state("e"), BreakerState::HalfOpen);
        // The straggler finally succeeds. Before attribution this closed
        // the circuit on stale evidence and let a second probe through.
        b.record_outcome("e", straggler, true);
        assert_eq!(
            b.state("e"),
            BreakerState::HalfOpen,
            "stale success must not close"
        );
        assert!(b.try_acquire("e").is_err(), "the real probe is still out");
        // Only the probe's own outcome decides.
        b.record_outcome("e", probe, true);
        assert_eq!(b.state("e"), BreakerState::Closed);
    }

    #[test]
    fn superseded_probe_outcome_is_demoted_to_evidence() {
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..3 {
            b.record_failure("e");
        }
        std::thread::sleep(Duration::from_millis(25));
        // First probe goes out, then a straggler failure re-trips the
        // circuit underneath it.
        let stale_probe = b.try_acquire("e").unwrap();
        b.record_failure("e");
        assert_eq!(b.state("e"), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(25));
        // A fresh probe is admitted; the stale probe's late success must
        // not be credited to it.
        let fresh_probe = b.try_acquire("e").unwrap();
        b.record_outcome("e", stale_probe, true);
        assert_eq!(
            b.state("e"),
            BreakerState::HalfOpen,
            "stale probe cannot close"
        );
        b.record_outcome("e", fresh_probe, true);
        assert_eq!(b.state("e"), BreakerState::Closed);
    }
}
