//! Per-endpoint three-state circuit breaker.
//!
//! A relay that keeps hammering a black-holed peer pays the peer's
//! timeout on every request — exactly the amplification a DoS'd relay
//! group cannot afford (paper §5). The breaker converts repeated
//! transport failures into a fast local reject:
//!
//! ```text
//!            consecutive failures ≥ N
//!            or failure rate ≥ r over window
//!   CLOSED ──────────────────────────────────▶ OPEN
//!     ▲                                         │
//!     │ probe succeeds                cooldown  │
//!     │ (× required)                  elapsed   │
//!     │                                         ▼
//!     └──────────────────────────────────── HALF-OPEN
//!                     probe fails ▲───────────────┘
//!                     (back to OPEN)
//! ```
//!
//! While OPEN, [`CircuitBreaker::try_acquire`] fails instantly with
//! [`RelayError::CircuitOpen`]; after the cooldown one probe request at a
//! time is let through (HALF-OPEN). Enough probe successes close the
//! circuit; any probe failure re-opens it and restarts the cooldown.

use crate::error::RelayError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Trip and recovery thresholds for a [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub consecutive_failures: u32,
    /// Failure rate over the rolling window that trips the breaker.
    pub failure_rate: f64,
    /// Rolling outcome-window size for the rate threshold.
    pub window: usize,
    /// Minimum outcomes in the window before the rate threshold applies.
    pub min_samples: usize,
    /// How long the breaker stays open before allowing a probe.
    pub cooldown: Duration,
    /// Probe successes required to close again from half-open.
    pub required_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            consecutive_failures: 3,
            failure_rate: 0.6,
            window: 16,
            min_samples: 8,
            cooldown: Duration::from_millis(500),
            required_probes: 1,
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; failures are being counted.
    Closed,
    /// Requests are rejected instantly until the cooldown elapses.
    Open,
    /// One probe at a time is allowed through to test recovery.
    HalfOpen,
}

/// Per-endpoint tracking state.
#[derive(Debug)]
struct EndpointState {
    state: BreakerState,
    consecutive_failures: u32,
    /// Rolling window of outcomes, `true` = failure, bounded by
    /// `config.window`.
    window: std::collections::VecDeque<bool>,
    opened_at: Instant,
    probe_in_flight: bool,
    probe_successes: u32,
}

impl EndpointState {
    fn new() -> Self {
        EndpointState {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            window: std::collections::VecDeque::new(),
            opened_at: Instant::now(),
            probe_in_flight: false,
            probe_successes: 0,
        }
    }

    fn push_outcome(&mut self, failed: bool, window: usize) {
        self.window.push_back(failed);
        while self.window.len() > window.max(1) {
            self.window.pop_front();
        }
    }

    fn failure_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let failures = self.window.iter().filter(|f| **f).count();
        failures as f64 / self.window.len() as f64
    }
}

/// A per-endpoint circuit breaker shared by transports and relay groups.
///
/// Endpoints are arbitrary strings: transport endpoints (`tcp:…`,
/// `inproc:…`) or relay ids when used by
/// [`crate::redundancy::RelayGroup`]. All methods are thread-safe; the
/// breaker takes one short internal lock and never calls out while
/// holding it.
pub struct CircuitBreaker {
    config: BreakerConfig,
    endpoints: Mutex<HashMap<String, EndpointState>>,
    trips: AtomicU64,
    probes: AtomicU64,
    fast_rejects: AtomicU64,
}

impl std::fmt::Debug for CircuitBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("config", &self.config)
            .field("endpoints", &self.endpoints.lock().len())
            .field("trips", &self.trips)
            .field("probes", &self.probes)
            .finish()
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        Self::new(BreakerConfig::default())
    }
}

impl CircuitBreaker {
    /// Creates a breaker with `config`.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            endpoints: Mutex::new(HashMap::new()),
            trips: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            fast_rejects: AtomicU64::new(0),
        }
    }

    /// The active thresholds.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Asks permission to send to `endpoint`.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::CircuitOpen`] while the endpoint's circuit is
    /// open (or half-open with a probe already in flight). A successful
    /// acquire during half-open marks this call as the probe; the caller
    /// must report the outcome via [`CircuitBreaker::record_success`] or
    /// [`CircuitBreaker::record_failure`].
    pub fn try_acquire(&self, endpoint: &str) -> Result<(), RelayError> {
        let mut endpoints = self.endpoints.lock();
        let Some(state) = endpoints.get_mut(endpoint) else {
            return Ok(()); // unknown endpoint: closed by definition
        };
        match state.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                if state.opened_at.elapsed() >= self.config.cooldown {
                    state.state = BreakerState::HalfOpen;
                    state.probe_in_flight = true;
                    state.probe_successes = 0;
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                } else {
                    self.fast_rejects.fetch_add(1, Ordering::Relaxed);
                    Err(RelayError::CircuitOpen(endpoint.to_string()))
                }
            }
            BreakerState::HalfOpen => {
                if state.probe_in_flight {
                    self.fast_rejects.fetch_add(1, Ordering::Relaxed);
                    Err(RelayError::CircuitOpen(endpoint.to_string()))
                } else {
                    state.probe_in_flight = true;
                    self.probes.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
            }
        }
    }

    /// Records a successful exchange with `endpoint`.
    pub fn record_success(&self, endpoint: &str) {
        let mut endpoints = self.endpoints.lock();
        let state = endpoints
            .entry(endpoint.to_string())
            .or_insert_with(EndpointState::new);
        state.consecutive_failures = 0;
        state.push_outcome(false, self.config.window);
        if state.state == BreakerState::HalfOpen {
            state.probe_in_flight = false;
            state.probe_successes += 1;
            if state.probe_successes >= self.config.required_probes.max(1) {
                state.state = BreakerState::Closed;
                state.window.clear();
            }
        }
    }

    /// Records a failed exchange with `endpoint`, tripping the breaker
    /// when a threshold is crossed.
    pub fn record_failure(&self, endpoint: &str) {
        let mut endpoints = self.endpoints.lock();
        let state = endpoints
            .entry(endpoint.to_string())
            .or_insert_with(EndpointState::new);
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        state.push_outcome(true, self.config.window);
        let trip = match state.state {
            // A failed probe re-opens immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => {
                state.consecutive_failures >= self.config.consecutive_failures.max(1)
                    || (state.window.len() >= self.config.min_samples.max(1)
                        && state.failure_rate() >= self.config.failure_rate)
            }
            BreakerState::Open => false,
        };
        if trip {
            state.state = BreakerState::Open;
            state.opened_at = Instant::now();
            state.probe_in_flight = false;
            state.probe_successes = 0;
            self.trips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The current state for `endpoint` (closed when never seen).
    pub fn state(&self, endpoint: &str) -> BreakerState {
        self.endpoints
            .lock()
            .get(endpoint)
            .map_or(BreakerState::Closed, |s| s.state)
    }

    /// True when `endpoint` would be fast-rejected right now (open and
    /// still cooling down, or half-open with a probe in flight).
    pub fn is_blocking(&self, endpoint: &str) -> bool {
        self.endpoints
            .lock()
            .get(endpoint)
            .is_some_and(|s| match s.state {
                BreakerState::Closed => false,
                BreakerState::Open => s.opened_at.elapsed() < self.config.cooldown,
                BreakerState::HalfOpen => s.probe_in_flight,
            })
    }

    /// Times the breaker tripped closed → open (or re-opened on a failed
    /// probe).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Probe requests admitted while half-open.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Requests rejected instantly by an open circuit.
    pub fn fast_rejects(&self) -> u64 {
        self.fast_rejects.load(Ordering::Relaxed)
    }

    /// Endpoints whose circuit is currently open or half-open.
    pub fn open_endpoints(&self) -> u64 {
        self.endpoints
            .lock()
            .values()
            .filter(|s| s.state != BreakerState::Closed)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> BreakerConfig {
        BreakerConfig {
            consecutive_failures: 3,
            cooldown: Duration::from_millis(20),
            ..BreakerConfig::default()
        }
    }

    #[test]
    fn closed_until_consecutive_threshold() {
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..2 {
            b.try_acquire("e").unwrap();
            b.record_failure("e");
        }
        assert_eq!(b.state("e"), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
        b.record_failure("e");
        assert_eq!(b.state("e"), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(matches!(
            b.try_acquire("e"),
            Err(RelayError::CircuitOpen(_))
        ));
        assert_eq!(b.fast_rejects(), 1);
        assert_eq!(b.open_endpoints(), 1);
    }

    #[test]
    fn success_resets_consecutive_count() {
        // Alternating F S never reaches 3 consecutive failures and the
        // window rate stays at 0.5 < 0.6, so the breaker stays closed.
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..10 {
            b.record_failure("e");
            b.record_success("e");
        }
        assert_eq!(b.state("e"), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn failure_rate_trips_without_consecutive_run() {
        let b = CircuitBreaker::new(BreakerConfig {
            consecutive_failures: 100, // out of reach
            failure_rate: 0.5,
            window: 8,
            min_samples: 8,
            ..fast_config()
        });
        // Alternate F S F S … then pile on failures: rate crosses 0.5.
        for _ in 0..4 {
            b.record_failure("e");
            b.record_success("e");
        }
        assert_eq!(b.state("e"), BreakerState::Closed);
        b.record_failure("e");
        // The bounded window is now 4 failures / 8 outcomes ≥ 0.5.
        assert_eq!(b.state("e"), BreakerState::Open);
    }

    #[test]
    fn open_to_half_open_probe_to_closed() {
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..3 {
            b.record_failure("e");
        }
        assert_eq!(b.state("e"), BreakerState::Open);
        assert!(b.try_acquire("e").is_err());
        std::thread::sleep(Duration::from_millis(25));
        // Cooldown elapsed: exactly one probe gets through.
        b.try_acquire("e").unwrap();
        assert_eq!(b.state("e"), BreakerState::HalfOpen);
        assert!(b.try_acquire("e").is_err(), "second probe must wait");
        assert_eq!(b.probes(), 1);
        b.record_success("e");
        assert_eq!(b.state("e"), BreakerState::Closed);
        b.try_acquire("e").unwrap();
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..3 {
            b.record_failure("e");
        }
        std::thread::sleep(Duration::from_millis(25));
        b.try_acquire("e").unwrap();
        assert_eq!(b.state("e"), BreakerState::HalfOpen);
        b.record_failure("e");
        assert_eq!(b.state("e"), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(b.try_acquire("e").is_err(), "cooldown restarted");
    }

    #[test]
    fn multiple_probes_required_when_configured() {
        let b = CircuitBreaker::new(BreakerConfig {
            required_probes: 2,
            ..fast_config()
        });
        for _ in 0..3 {
            b.record_failure("e");
        }
        std::thread::sleep(Duration::from_millis(25));
        b.try_acquire("e").unwrap();
        b.record_success("e");
        assert_eq!(b.state("e"), BreakerState::HalfOpen, "one probe not enough");
        b.try_acquire("e").unwrap();
        b.record_success("e");
        assert_eq!(b.state("e"), BreakerState::Closed);
        assert_eq!(b.probes(), 2);
    }

    #[test]
    fn endpoints_are_independent() {
        let b = CircuitBreaker::new(fast_config());
        for _ in 0..3 {
            b.record_failure("dead");
        }
        assert_eq!(b.state("dead"), BreakerState::Open);
        assert_eq!(b.state("healthy"), BreakerState::Closed);
        b.try_acquire("healthy").unwrap();
    }
}
