//! Pluggable network drivers.
//!
//! "The relay also includes a set of pluggable network drivers that
//! translates the network-neutral protocol messages into calls to the
//! underlying network implementation" (paper §3.2). The Fabric driver
//! lives in the `interop` crate; an echo driver is provided here for relay
//! tests and as the simplest reference implementation.

use crate::error::RelayError;
use tdt_wire::messages::{Query, QueryResponse, ResponseStatus};

/// Translates network-neutral queries into ledger-specific execution.
pub trait NetworkDriver: Send + Sync {
    /// The network this driver serves.
    fn network_id(&self) -> &str;

    /// Executes `query` against the local network, orchestrating proof
    /// collection per the query's verification policy.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::DriverFailed`] on execution failure. Expected
    /// protocol-level failures (access denied, not found) are reported in
    /// the [`QueryResponse::status`] instead.
    fn execute_query(&self, query: &Query) -> Result<QueryResponse, RelayError>;
}

/// A trivial driver that echoes the query's first argument back, unsigned.
/// Useful for exercising relay plumbing without a blockchain.
#[derive(Debug, Clone)]
pub struct EchoDriver {
    network_id: String,
}

impl EchoDriver {
    /// Creates an echo driver for `network_id`.
    pub fn new(network_id: impl Into<String>) -> Self {
        EchoDriver {
            network_id: network_id.into(),
        }
    }
}

impl NetworkDriver for EchoDriver {
    fn network_id(&self) -> &str {
        &self.network_id
    }

    fn execute_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        Ok(QueryResponse {
            request_id: query.request_id.clone(),
            status: ResponseStatus::Ok,
            error: String::new(),
            result: query.address.args.first().cloned().unwrap_or_default(),
            result_encrypted: false,
            attestations: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdt_wire::messages::NetworkAddress;

    #[test]
    fn echo_driver_echoes() {
        let driver = EchoDriver::new("echo-net");
        assert_eq!(driver.network_id(), "echo-net");
        let query = Query {
            request_id: "r1".into(),
            address: NetworkAddress::new("echo-net", "l", "c", "f").with_arg(b"hello".to_vec()),
            ..Default::default()
        };
        let resp = driver.execute_query(&query).unwrap();
        assert_eq!(resp.result, b"hello");
        assert_eq!(resp.request_id, "r1");
        assert_eq!(resp.status, ResponseStatus::Ok);
    }

    #[test]
    fn echo_driver_empty_args() {
        let driver = EchoDriver::new("echo-net");
        let query = Query {
            request_id: "r2".into(),
            address: NetworkAddress::new("echo-net", "l", "c", "f"),
            ..Default::default()
        };
        let resp = driver.execute_query(&query).unwrap();
        assert!(resp.result.is_empty());
    }
}
