//! Relay error type.

use std::error::Error;
use std::fmt;
use tdt_wire::WireError;

/// Errors raised by the relay layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayError {
    /// No relay endpoint could be found for a network.
    DiscoveryFailed(String),
    /// The transport could not reach the remote relay.
    TransportFailed(String),
    /// A pooled connection died while the request was in flight. The
    /// request may never have reached the remote; a retry on a freshly
    /// dialed connection is safe and usually succeeds.
    StaleConnection(String),
    /// The local relay shed the request (token bucket empty).
    RateLimited,
    /// A relay instance is down (fault injection / outage).
    RelayDown(String),
    /// No driver is registered for the addressed network.
    NoDriver(String),
    /// The driver failed to execute the query.
    DriverFailed(String),
    /// The remote relay answered with an error envelope.
    Remote(String),
    /// Wire encoding/decoding failed.
    Wire(WireError),
    /// The circuit breaker for an endpoint is open: the endpoint has
    /// been failing and requests are rejected locally without touching
    /// the network until a half-open probe succeeds.
    CircuitOpen(String),
    /// The caller's deadline budget was exhausted before a reply (or a
    /// terminal error) was obtained.
    DeadlineExceeded(String),
    /// A relay component was constructed with invalid configuration
    /// (e.g. an empty relay group).
    InvalidConfig(String),
    /// The remote relay's admission controller shed the request before
    /// queuing it: at current queue depth the deadline budget could not
    /// plausibly be met. The endpoint is alive and answering — this is
    /// a fast, retryable rejection, not a failure of the relay itself.
    Overloaded(String),
}

impl fmt::Display for RelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayError::DiscoveryFailed(m) => write!(f, "relay discovery failed: {m}"),
            RelayError::TransportFailed(m) => write!(f, "relay transport failed: {m}"),
            RelayError::StaleConnection(m) => {
                write!(f, "pooled relay connection died mid-request: {m}")
            }
            RelayError::RateLimited => write!(f, "request rate limited by relay"),
            RelayError::RelayDown(id) => write!(f, "relay {id:?} is down"),
            RelayError::NoDriver(net) => write!(f, "no driver registered for network {net:?}"),
            RelayError::DriverFailed(m) => write!(f, "network driver failed: {m}"),
            RelayError::Remote(m) => write!(f, "remote relay error: {m}"),
            RelayError::Wire(e) => write!(f, "wire error: {e}"),
            RelayError::CircuitOpen(ep) => write!(f, "circuit breaker open for {ep:?}"),
            RelayError::DeadlineExceeded(m) => write!(f, "deadline exceeded: {m}"),
            RelayError::InvalidConfig(m) => write!(f, "invalid relay configuration: {m}"),
            RelayError::Overloaded(m) => write!(f, "relay overloaded, request shed: {m}"),
        }
    }
}

impl Error for RelayError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RelayError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for RelayError {
    fn from(e: WireError) -> Self {
        RelayError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            RelayError::DiscoveryFailed("x".into()),
            RelayError::TransportFailed("x".into()),
            RelayError::StaleConnection("x".into()),
            RelayError::RateLimited,
            RelayError::RelayDown("r".into()),
            RelayError::NoDriver("n".into()),
            RelayError::DriverFailed("d".into()),
            RelayError::Remote("m".into()),
            RelayError::Wire(WireError::UnexpectedEof),
            RelayError::CircuitOpen("e".into()),
            RelayError::DeadlineExceeded("t".into()),
            RelayError::InvalidConfig("c".into()),
            RelayError::Overloaded("q".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn wire_error_sources() {
        let e = RelayError::Wire(WireError::UnexpectedEof);
        assert!(Error::source(&e).is_some());
    }
}
