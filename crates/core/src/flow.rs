//! Instrumented execution of the paper's message flow (Fig. 2 / Fig. 4).
//!
//! Runs the full cross-network transaction one protocol step at a time,
//! timing each, so the experiment harness can print a per-step table that
//! mirrors the numbered arrows of Figure 2:
//!
//! 1. client builds + signs the query
//! 2. local relay performs discovery lookup
//! 3. local relay serializes and forwards the request
//! 4. source relay deserializes and dispatches to the driver
//! 5. driver orchestrates the query against selected peers
//! 6. peers consult the Exposure Control contract (inside Step 5 here —
//!    it executes within chaincode simulation)
//! 7. peer results collectively form the proof
//! 8. source relay serializes the reply
//! 9. client receives, decrypts, and pre-verifies the response
//! 10. client submits the local transaction with data + proof

use crate::client::{InteropClient, RemoteData};
use crate::driver::FabricDriver;
use crate::error::InteropError;
use crate::proof::process_response;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdt_fabric::gateway::TxOutcome;
use tdt_relay::discovery::DiscoveryService;
use tdt_relay::driver::NetworkDriver;
use tdt_wire::codec::Message;
use tdt_wire::messages::{NetworkAddress, Query, QueryResponse, RelayEnvelope, VerificationPolicy};

/// Timing of one protocol step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepTiming {
    /// Step number(s) as labelled in Fig. 2.
    pub step: &'static str,
    /// Human-readable description.
    pub name: &'static str,
    /// Wall-clock duration of the step.
    pub duration: Duration,
}

/// The outcome of a traced end-to-end flow.
#[derive(Debug)]
pub struct TracedOutcome {
    /// The remote data + proof obtained in Steps 1-9.
    pub remote: RemoteData,
    /// The local transaction outcome of Step 10.
    pub outcome: TxOutcome,
    /// Per-step timings.
    pub steps: Vec<StepTiming>,
}

impl TracedOutcome {
    /// Renders the timing table (one row per step).
    pub fn table(&self) -> String {
        let mut out = String::from("step | description | latency\n-----|-------------|--------\n");
        for s in &self.steps {
            out.push_str(&format!(
                "{:4} | {:<55} | {:>9.1?}\n",
                s.step, s.name, s.duration
            ));
        }
        out
    }

    /// Total latency across all steps.
    pub fn total(&self) -> Duration {
        self.steps.iter().map(|s| s.duration).sum()
    }
}

/// Pieces needed to run the flow with step-level instrumentation. The
/// normal path ([`InteropClient::query_remote`]) performs the same steps
/// opaquely; the traced variant needs direct access to each component.
pub struct FlowHarness {
    /// The destination-side client.
    pub client: InteropClient,
    /// The discovery service the destination relay would use (Step 2).
    pub discovery: Arc<dyn DiscoveryService>,
    /// The source network's driver (Steps 5-7).
    pub source_driver: Arc<FabricDriver>,
    /// Id of the destination relay (envelope sender).
    pub relay_id: String,
}

impl FlowHarness {
    /// Runs Steps 1-9, returning remote data and timings.
    ///
    /// # Errors
    ///
    /// Returns an [`InteropError`] when any step fails.
    pub fn query_traced(
        &self,
        address: NetworkAddress,
        policy: VerificationPolicy,
    ) -> Result<(RemoteData, Vec<StepTiming>), InteropError> {
        let mut steps = Vec::with_capacity(8);
        let time = |steps: &mut Vec<StepTiming>, step, name, start: Instant| {
            steps.push(StepTiming {
                step,
                name,
                duration: start.elapsed(),
            });
        };

        // Step 1: the client application builds and signs the query.
        let t0 = Instant::now();
        let query = self.client.build_query(address, policy);
        time(&mut steps, "1", "client builds and signs query", t0);

        // Step 2: discovery lookup for the source relay.
        let t0 = Instant::now();
        let target_network = query.address.network_id.clone();
        let _endpoint = self.discovery.lookup(&target_network)?;
        time(&mut steps, "2", "relay discovery lookup", t0);

        // Step 3: serialize the request for the wire.
        let t0 = Instant::now();
        let envelope = RelayEnvelope::query(self.relay_id.clone(), target_network, &query);
        let wire_bytes = envelope.encode_to_vec();
        time(&mut steps, "3", "serialize and forward request", t0);

        // Step 4: the source relay deserializes and dispatches.
        let t0 = Instant::now();
        let received = RelayEnvelope::decode_from_slice(&wire_bytes)?;
        let received_query = Query::decode_from_slice(&received.payload)?;
        time(&mut steps, "4", "source relay deserializes request", t0);

        // Steps 5-7: the driver orchestrates execution on selected peers;
        // each peer's chaincode consults the ECC, and the collected
        // signatures form the proof.
        let t0 = Instant::now();
        let response = self.source_driver.execute_query(&received_query)?;
        time(
            &mut steps,
            "5-7",
            "peer execution, exposure control, proof collection",
            t0,
        );

        // Step 8: serialize the reply.
        let t0 = Instant::now();
        let reply = RelayEnvelope::response(self.relay_id.clone(), "swt", &response);
        let reply_bytes = reply.encode_to_vec();
        time(&mut steps, "8", "serialize and return response", t0);

        // Step 9: the client decrypts and pre-verifies data + proof.
        let t0 = Instant::now();
        let reply = RelayEnvelope::decode_from_slice(&reply_bytes)?;
        let response = QueryResponse::decode_from_slice(&reply.payload)?;
        let proof = process_response(self.client.gateway().identity(), &query, &response)?;
        time(&mut steps, "9", "client decrypts and verifies proof", t0);

        Ok((
            RemoteData {
                data: proof.result.clone(),
                proof,
            },
            steps,
        ))
    }

    /// Runs the complete flow: Steps 1-9 plus the Step-10 transaction.
    ///
    /// # Errors
    ///
    /// Returns an [`InteropError`] when any step fails.
    pub fn run_traced(
        &self,
        address: NetworkAddress,
        policy: VerificationPolicy,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> Result<TracedOutcome, InteropError> {
        let (remote, mut steps) = self.query_traced(address, policy)?;
        // Step 10: transaction on the destination ledger with data + proof;
        // the chaincode validates via the Data Acceptance contract.
        let t0 = Instant::now();
        let outcome = self
            .client
            .submit_with_remote_data(chaincode, function, args, &remote)?;
        steps.push(StepTiming {
            step: "10",
            name: "local transaction with proof (data acceptance)",
            duration: t0.elapsed(),
        });
        Ok(TracedOutcome {
            remote,
            outcome,
            steps,
        })
    }
}

/// Builds a [`FlowHarness`] over a standard STL/SWT testbed.
pub fn harness_for_testbed(testbed: &crate::setup::Testbed) -> FlowHarness {
    FlowHarness {
        client: InteropClient::new(testbed.swt_seller_gateway(), Arc::clone(&testbed.swt_relay)),
        discovery: Arc::clone(&testbed.registry) as Arc<dyn DiscoveryService>,
        source_driver: Arc::new(FabricDriver::new(Arc::clone(&testbed.stl))),
        relay_id: "swt-relay".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{issue_sample_bl, stl_swt_testbed};
    use tdt_contracts::swt::SwtChaincode;

    fn prepared_testbed() -> crate::setup::Testbed {
        let t = stl_swt_testbed();
        issue_sample_bl(&t, "PO-1001");
        let buyer = t.swt_buyer_gateway();
        buyer
            .submit(
                SwtChaincode::NAME,
                "RequestLC",
                vec![
                    b"PO-1001".to_vec(),
                    b"LC-1".to_vec(),
                    b"buyer".to_vec(),
                    b"seller".to_vec(),
                    b"100000".to_vec(),
                ],
            )
            .unwrap()
            .into_committed()
            .unwrap();
        buyer
            .submit(SwtChaincode::NAME, "IssueLC", vec![b"PO-1001".to_vec()])
            .unwrap()
            .into_committed()
            .unwrap();
        t
    }

    fn address() -> NetworkAddress {
        NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
            .with_arg(b"PO-1001".to_vec())
    }

    fn policy() -> VerificationPolicy {
        VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality()
    }

    #[test]
    fn traced_flow_completes_all_steps() {
        let t = prepared_testbed();
        let harness = harness_for_testbed(&t);
        let traced = harness
            .run_traced(
                address(),
                policy(),
                SwtChaincode::NAME,
                "UploadDispatchDocs",
                vec![b"PO-1001".to_vec()],
            )
            .unwrap();
        assert!(traced.outcome.code.is_valid());
        let step_labels: Vec<&str> = traced.steps.iter().map(|s| s.step).collect();
        assert_eq!(step_labels, vec!["1", "2", "3", "4", "5-7", "8", "9", "10"]);
        assert!(traced.total() > Duration::ZERO);
        // The table renders one row per step plus the header.
        assert_eq!(traced.table().lines().count(), 2 + traced.steps.len());
    }

    #[test]
    fn traced_query_matches_untraced_client() {
        let t = prepared_testbed();
        let harness = harness_for_testbed(&t);
        let (remote_traced, _) = harness.query_traced(address(), policy()).unwrap();
        let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let remote_plain = client.query_remote(address(), policy()).unwrap();
        // Same data, independent nonces/proofs.
        assert_eq!(remote_traced.data, remote_plain.data);
        assert_ne!(remote_traced.proof.nonce, remote_plain.proof.nonce);
    }
}
