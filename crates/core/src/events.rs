//! Cross-network events: the Fabric event source and notice verification.
//!
//! Completes the publish/subscribe primitive of paper §2 (deferred in §7):
//! a destination application subscribes through its relay; the source
//! relay's [`FabricEventSource`] forwards every committed block as an
//! [`EventNotice`] *attested by a source peer*, so the subscriber can
//! authenticate notices against the recorded source configuration exactly
//! like query proofs.

use crate::error::InteropError;
use std::sync::Arc;
use tdt_fabric::network::FabricNetwork;
use tdt_ledger::block::TxValidationCode;
use tdt_relay::events::{EventSink, EventSource};
use tdt_relay::RelayError;
use tdt_wire::messages::{decode_certificate, EventNotice, EventSubscribeRequest, NetworkConfig};

/// Streams a [`FabricNetwork`]'s block events to remote subscribers.
pub struct FabricEventSource {
    network: Arc<FabricNetwork>,
}

impl std::fmt::Debug for FabricEventSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricEventSource")
            .field("network", &self.network.name())
            .finish()
    }
}

impl FabricEventSource {
    /// Creates an event source for `network`.
    pub fn new(network: Arc<FabricNetwork>) -> Self {
        FabricEventSource { network }
    }
}

impl EventSource for FabricEventSource {
    fn network_id(&self) -> &str {
        self.network.name()
    }

    fn start(&self, request: &EventSubscribeRequest, sink: EventSink) -> Result<(), RelayError> {
        // Attest notices with the first available peer's identity.
        let (_, peer) = self
            .network
            .peers()
            .next()
            .map(|(n, p)| (n.to_string(), Arc::clone(p)))
            .ok_or_else(|| RelayError::DriverFailed("network has no peers".into()))?;
        let identity = peer.read().identity().clone();
        let rx = self.network.events().subscribe();
        let subscription_id = request.subscription_id.clone();
        let network_id = self.network.name().to_string();
        std::thread::spawn(move || {
            for event in rx.iter() {
                let mut notice = EventNotice {
                    subscription_id: subscription_id.clone(),
                    network_id: network_id.clone(),
                    block_number: event.block_number,
                    txids: event.txids,
                    validation: event
                        .validation
                        .iter()
                        .map(|c| u8::from(matches!(c, TxValidationCode::Valid)))
                        .collect(),
                    signer_cert: tdt_wire::messages::encode_certificate(identity.certificate()),
                    signature: Vec::new(),
                };
                notice.signature = identity.sign(&notice.signing_bytes()).to_bytes();
                if sink(notice).is_err() {
                    // Subscriber gone or relay down: stop forwarding.
                    break;
                }
            }
        });
        Ok(())
    }
}

/// Verifies an event notice against a recorded source-network
/// configuration: the signer must chain to one of the recorded org roots
/// and the signature must cover the notice's canonical bytes.
///
/// # Errors
///
/// Returns [`InteropError::InvalidResponse`] on any verification failure.
pub fn verify_event_notice(
    notice: &EventNotice,
    config: &NetworkConfig,
) -> Result<(), InteropError> {
    if notice.network_id != config.network_id {
        return Err(InteropError::InvalidResponse(format!(
            "notice from {:?} checked against config for {:?}",
            notice.network_id, config.network_id
        )));
    }
    let cert = decode_certificate(&notice.signer_cert)
        .map_err(|e| InteropError::InvalidResponse(format!("notice cert: {e}")))?;
    let org = config
        .orgs
        .iter()
        .find(|o| o.org_id == cert.subject().organization)
        .ok_or_else(|| {
            InteropError::InvalidResponse(format!(
                "signer org {:?} not in recorded configuration",
                cert.subject().organization
            ))
        })?;
    let root = decode_certificate(&org.root_cert)
        .map_err(|e| InteropError::InvalidResponse(format!("recorded root: {e}")))?;
    cert.verify(&root)
        .map_err(|e| InteropError::InvalidResponse(format!("signer cert invalid: {e}")))?;
    let vk = cert
        .verifying_key()
        .map_err(|e| InteropError::InvalidResponse(e.to_string()))?;
    let signature = tdt_crypto::schnorr::Signature::from_bytes(&notice.signature)
        .map_err(|e| InteropError::InvalidResponse(format!("notice signature: {e}")))?;
    vk.verify(&notice.signing_bytes(), &signature)
        .map_err(|_| InteropError::InvalidResponse("notice signature invalid".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{issue_sample_bl, stl_swt_testbed};
    use std::time::Duration;
    use tdt_wire::messages::AuthInfo;

    fn subscribe(t: &crate::setup::Testbed) -> crossbeam::channel::Receiver<EventNotice> {
        // Attach the event source to the STL relay (source side).
        t.stl_relay
            .register_event_source(Arc::new(FabricEventSource::new(Arc::clone(&t.stl))));
        let auth = AuthInfo {
            network_id: "swt".into(),
            organization_id: "seller-bank-org".into(),
            certificate: tdt_wire::messages::encode_certificate(t.swt_seller_client.certificate()),
            signature: Vec::new(),
        };
        t.swt_relay.subscribe_remote_events("stl", auth).unwrap()
    }

    #[test]
    fn subscriber_receives_attested_block_events() {
        let t = stl_swt_testbed();
        let rx = subscribe(&t);
        issue_sample_bl(&t, "PO-77"); // commits 4 blocks on STL
        let stl_config = t.stl.network_config();
        let mut received = 0;
        while let Ok(notice) = rx.recv_timeout(Duration::from_secs(5)) {
            verify_event_notice(&notice, &stl_config).unwrap();
            assert_eq!(notice.network_id, "stl");
            assert_eq!(notice.validation, vec![1]);
            received += 1;
            if received == 4 {
                break;
            }
        }
        assert_eq!(received, 4);
    }

    #[test]
    fn forged_notice_rejected() {
        let t = stl_swt_testbed();
        let rx = subscribe(&t);
        issue_sample_bl(&t, "PO-78");
        let notice = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let stl_config = t.stl.network_config();
        // Tamper with the block number: the signature no longer covers it.
        let mut forged = notice.clone();
        forged.block_number += 100;
        assert!(verify_event_notice(&forged, &stl_config).is_err());
        // A notice claiming another network fails too.
        let mut wrong_net = notice.clone();
        wrong_net.network_id = "other".into();
        assert!(verify_event_notice(&wrong_net, &stl_config).is_err());
        // And a rogue signer outside the recorded config.
        let mut rogue_msp = tdt_fabric::msp::Msp::new(
            "stl",
            "seller-org",
            tdt_crypto::group::Group::test_group(),
            b"rogue",
        );
        let rogue = rogue_msp.enroll("peer0", tdt_crypto::cert::CertRole::Peer, false);
        let mut rogue_notice = notice.clone();
        rogue_notice.signer_cert = tdt_wire::messages::encode_certificate(rogue.certificate());
        rogue_notice.signature = rogue.sign(&rogue_notice.signing_bytes()).to_bytes();
        assert!(verify_event_notice(&rogue_notice, &stl_config).is_err());
    }

    #[test]
    fn unsubscribe_stops_delivery_acknowledgement() {
        let t = stl_swt_testbed();
        let rx = subscribe(&t);
        assert_eq!(t.swt_relay.subscription_count(), 1);
        issue_sample_bl(&t, "PO-79");
        // Drain at least one event, then unsubscribe.
        let first = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        t.swt_relay.unsubscribe(&first.subscription_id);
        assert_eq!(t.swt_relay.subscription_count(), 0);
    }

    #[test]
    fn subscription_to_unknown_network_fails() {
        let t = stl_swt_testbed();
        let auth = AuthInfo::default();
        assert!(matches!(
            t.swt_relay.subscribe_remote_events("mars", auth),
            Err(tdt_relay::RelayError::DiscoveryFailed(_))
        ));
    }

    #[test]
    fn subscription_without_source_refused() {
        let t = stl_swt_testbed();
        // STL relay has no event source registered in this test.
        let auth = AuthInfo::default();
        let err = t
            .swt_relay
            .subscribe_remote_events("stl", auth)
            .unwrap_err();
        assert!(matches!(err, tdt_relay::RelayError::Remote(m) if m.contains("no event source")));
        assert_eq!(t.swt_relay.subscription_count(), 0);
    }
}
