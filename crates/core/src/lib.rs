#![warn(missing_docs)]

//! Trusted data transfer between permissioned blockchain networks.
//!
//! This crate is the paper's primary contribution: a network-neutral
//! protocol and component set for cross-network queries whose responses
//! carry *proofs* representing the consensus view of the source network —
//! with no trusted mediator. It composes the substrates in this workspace
//! (`tdt-crypto`, `tdt-wire`, `tdt-ledger`, `tdt-fabric`, `tdt-contracts`,
//! `tdt-relay`) into the architecture of Fig. 2:
//!
//! * [`policy`] — verification-policy construction and satisfiability.
//! * [`plugin`] — the custom endorsement plugin that signs query metadata
//!   and encrypts it for the requesting client (paper §4.3).
//! * [`driver`] — the Fabric [`tdt_relay::driver::NetworkDriver`]:
//!   orchestrates proof collection against peers per the verification
//!   policy, consulting the Exposure Control contract.
//! * [`proof`] — client-side response processing: decrypt, pre-verify, and
//!   assemble the [`tdt_wire::messages::Proof`] submitted with the local
//!   transaction.
//! * [`client`] — [`client::InteropClient`]: the application-facing API
//!   for remote queries and proof-carrying local transactions.
//! * [`config`] — administrative helpers for the initialization phase:
//!   recording foreign configurations, verification policies, and exposure
//!   rules through the system contracts.
//! * [`setup`] — wiring helpers that connect networks with relays,
//!   drivers, discovery, and transports.
//! * [`events`] — cross-network event subscription: a peer-attested
//!   block-event feed pushed through the relays (paper §2 primitive,
//!   deferred in §7).
//! * [`flow`] — an instrumented step-by-step execution of the Fig. 2
//!   message flow, used to regenerate the paper's protocol figures.
//! * [`corda_like`] — a second (notary-based) network driver, the
//!   extensibility demonstration of §5.
//! * [`block_proof`] — a second *proof scheme* (block-inclusion via
//!   attested headers + Merkle paths), demonstrating §6's pluggable-proof
//!   claim.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` at the workspace root for a complete
//! two-network data transfer.

pub mod block_proof;
pub mod client;
pub mod config;
pub mod corda_like;
pub mod driver;
pub mod error;
pub mod events;
pub mod flow;
pub mod plugin;
pub mod policy;
pub mod proof;
pub mod setup;

pub use client::{InteropClient, RemoteData};
pub use error::InteropError;
