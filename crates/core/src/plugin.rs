//! The interop endorsement plugin (paper §4.3).
//!
//! For cross-network queries, "the normal peer endorsement process, which
//! produces a signature over query result metadata, is replaced with
//! custom logic that signs the metadata (including the result) and then
//! encrypts it with the SWT-SC's public key". Fabric's pluggable
//! endorsement mechanism (paper ref \[8\]) is modelled by
//! [`tdt_fabric::endorse::EndorsementPlugin`]; this module provides the
//! interop implementation.
//!
//! The metadata is encrypted so that "a verifiable proof associated with
//! the result [cannot be] exfiltrated by a malicious relay to unauthorized
//! networks; only the SWT-SC possesses a decryption key".

use tdt_fabric::chaincode::Proposal;
use tdt_fabric::endorse::{EndorsementPlugin, PluginOutput};
use tdt_fabric::error::FabricError;
use tdt_fabric::msp::Identity;
use tdt_wire::messages::decode_certificate;

/// Transient key carrying the requester's wire-encoded certificate.
pub const TRANSIENT_CERT: &str = "requester-cert";
/// Transient key carrying the requester's network id.
pub const TRANSIENT_NETWORK: &str = "requester-network";
/// Transient key carrying the requester's organization id.
pub const TRANSIENT_ORG: &str = "requester-org";

/// Signs metadata with the endorsing peer's key, then (optionally)
/// encrypts it with the requesting client's public key.
#[derive(Debug, Clone, Copy)]
pub struct InteropEndorsement {
    /// When true, the plugin encrypts the metadata payload for the
    /// requester (the confidential-policy path).
    pub encrypt_metadata: bool,
}

impl InteropEndorsement {
    /// Plugin for confidential queries (the paper's configuration).
    pub fn confidential() -> Self {
        InteropEndorsement {
            encrypt_metadata: true,
        }
    }

    /// Plugin that signs but leaves metadata in the clear.
    pub fn plaintext() -> Self {
        InteropEndorsement {
            encrypt_metadata: false,
        }
    }
}

impl EndorsementPlugin for InteropEndorsement {
    fn endorse(
        &self,
        signer: &Identity,
        payload: &[u8],
        proposal: &Proposal,
    ) -> Result<PluginOutput, FabricError> {
        // Sign the *plaintext* metadata: the destination verifies this
        // signature after the client decrypts.
        let signature = signer.sign(payload);
        if !self.encrypt_metadata {
            return Ok(PluginOutput {
                payload: payload.to_vec(),
                signature,
                payload_encrypted: false,
            });
        }
        let cert_bytes = proposal
            .transient
            .get(TRANSIENT_CERT)
            .ok_or_else(|| FabricError::Internal("proposal lacks requester-cert".into()))?;
        let cert = decode_certificate(cert_bytes)
            .map_err(|e| FabricError::Internal(format!("requester cert malformed: {e}")))?;
        let key = cert
            .encryption_key()
            .map_err(|e| FabricError::Internal(format!("requester key invalid: {e}")))?
            .ok_or_else(|| {
                FabricError::Internal("requester certificate has no encryption key".into())
            })?;
        // Deterministic ephemeral per (txid, signer): reproducible fixtures
        // without an RNG dependency inside the endorsement path.
        let seed = format!("interop-md:{}:{}", proposal.txid, signer.qualified_name());
        let ciphertext = key.encrypt_deterministic(payload, seed.as_bytes());
        Ok(PluginOutput {
            payload: ciphertext.to_bytes(),
            signature,
            payload_encrypted: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdt_crypto::cert::CertRole;
    use tdt_crypto::elgamal::Ciphertext;
    use tdt_crypto::group::Group;
    use tdt_fabric::msp::Msp;
    use tdt_wire::messages::encode_certificate;

    fn peer_identity() -> Identity {
        let mut msp = Msp::new("stl", "seller-org", Group::test_group(), b"p");
        msp.enroll("peer0", CertRole::Peer, false)
    }

    fn requester() -> Identity {
        let mut msp = Msp::new("swt", "seller-bank-org", Group::test_group(), b"c");
        msp.enroll("swt-sc", CertRole::Client, true)
    }

    fn proposal_with_cert(requester: &Identity) -> Proposal {
        Proposal::new(
            "tx-1",
            "ch",
            "TradeLensCC",
            "GetBillOfLading",
            vec![],
            requester.certificate().clone(),
        )
        .with_transient(TRANSIENT_CERT, encode_certificate(requester.certificate()))
        .as_relay_query()
    }

    #[test]
    fn confidential_plugin_encrypts_and_signs() {
        let peer = peer_identity();
        let req = requester();
        let proposal = proposal_with_cert(&req);
        let out = InteropEndorsement::confidential()
            .endorse(&peer, b"metadata bytes", &proposal)
            .unwrap();
        assert!(out.payload_encrypted);
        assert_ne!(out.payload, b"metadata bytes");
        // Signature is over the plaintext.
        let vk = peer.certificate().verifying_key().unwrap();
        assert!(vk.verify(b"metadata bytes", &out.signature).is_ok());
        // Requester (and only the requester) decrypts.
        let ct = Ciphertext::from_bytes(&out.payload).unwrap();
        let plaintext = req.decryption_key().unwrap().decrypt(&ct).unwrap();
        assert_eq!(plaintext, b"metadata bytes");
    }

    #[test]
    fn plaintext_plugin_passes_through() {
        let peer = peer_identity();
        let req = requester();
        let proposal = proposal_with_cert(&req);
        let out = InteropEndorsement::plaintext()
            .endorse(&peer, b"md", &proposal)
            .unwrap();
        assert!(!out.payload_encrypted);
        assert_eq!(out.payload, b"md");
    }

    #[test]
    fn missing_cert_fails_confidential() {
        let peer = peer_identity();
        let req = requester();
        let proposal = Proposal::new("tx-1", "ch", "cc", "f", vec![], req.certificate().clone());
        let err = InteropEndorsement::confidential()
            .endorse(&peer, b"md", &proposal)
            .unwrap_err();
        assert!(matches!(err, FabricError::Internal(_)));
    }

    #[test]
    fn cert_without_enc_key_fails_confidential() {
        let peer = peer_identity();
        let mut msp = Msp::new("swt", "org", Group::test_group(), b"x");
        let plain_client = msp.enroll("c", CertRole::Client, false);
        let proposal = Proposal::new(
            "tx",
            "ch",
            "cc",
            "f",
            vec![],
            plain_client.certificate().clone(),
        )
        .with_transient(
            TRANSIENT_CERT,
            encode_certificate(plain_client.certificate()),
        );
        assert!(InteropEndorsement::confidential()
            .endorse(&peer, b"md", &proposal)
            .is_err());
    }

    #[test]
    fn deterministic_per_txid_and_signer() {
        let peer = peer_identity();
        let req = requester();
        let proposal = proposal_with_cert(&req);
        let a = InteropEndorsement::confidential()
            .endorse(&peer, b"md", &proposal)
            .unwrap();
        let b = InteropEndorsement::confidential()
            .endorse(&peer, b"md", &proposal)
            .unwrap();
        assert_eq!(a, b);
        // Different signer -> different ciphertext.
        let mut msp2 = Msp::new("stl", "carrier-org", Group::test_group(), b"p2");
        let peer2 = msp2.enroll("peer0", CertRole::Peer, false);
        let c = InteropEndorsement::confidential()
            .endorse(&peer2, b"md", &proposal)
            .unwrap();
        assert_ne!(a.payload, c.payload);
    }
}
