//! A second network driver: a Corda-like notary network.
//!
//! The paper's extensibility claim (§5): "the relay service ... can be
//! directly reused in networks built on Corda or Quorum ... In Corda, a
//! verification policy can be specified to include signatures from
//! notaries, which will be involved in access control, proof generation
//! and verification." This module demonstrates that claim: a minimal
//! notary-based ledger with its own driver that plugs into the same relay,
//! wire protocol, and destination-side Data Acceptance contract — no
//! changes to any of them.

use crate::error::InteropError;
use crate::plugin::TRANSIENT_CERT;
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use tdt_crypto::cert::CertRole;
use tdt_crypto::group::Group;
use tdt_crypto::sha256::sha256;
use tdt_fabric::msp::{Identity, Msp};
use tdt_relay::driver::NetworkDriver;
use tdt_relay::RelayError;
use tdt_wire::codec::Message;
use tdt_wire::messages::{
    encode_certificate, Attestation, NetworkConfig, OrgConfig, Query, QueryResponse,
    ResponseStatus, ResultMetadata,
};

/// A minimal Corda-like network: notaries attest facts held in a shared
/// vault. Each notary belongs to its own "organization" so the standard
/// verification-policy language applies unchanged.
pub struct NotaryNetwork {
    network_id: String,
    group: Group,
    notaries: Vec<(String, Identity)>,
    msps: Vec<Msp>,
    /// The vault: `contract:function:key` -> fact bytes.
    vault: RwLock<HashMap<String, Vec<u8>>>,
    /// Exposure control: (requesting network, org) pairs allowed to query.
    exposure: RwLock<HashSet<(String, String)>>,
    height: RwLock<u64>,
}

impl std::fmt::Debug for NotaryNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NotaryNetwork")
            .field("network_id", &self.network_id)
            .field("notaries", &self.notaries.len())
            .finish()
    }
}

impl NotaryNetwork {
    /// Creates a notary network with one notary per listed organization.
    pub fn new(network_id: impl Into<String>, notary_orgs: &[&str]) -> Self {
        let network_id = network_id.into();
        let group = Group::test_group();
        let mut notaries = Vec::new();
        let mut msps = Vec::new();
        for org in notary_orgs {
            let mut msp = Msp::new(&network_id, org, group.clone(), b"notary-seed");
            // Notaries act as the network's attesting nodes; issuing them
            // peer certificates keeps the destination CMDAC's "signer must
            // be a peer" rule meaningful across platforms.
            let identity = msp.enroll("notary0", CertRole::Peer, false);
            notaries.push(((*org).to_string(), identity));
            msps.push(msp);
        }
        NotaryNetwork {
            network_id,
            group,
            notaries,
            msps,
            vault: RwLock::new(HashMap::new()),
            exposure: RwLock::new(HashSet::new()),
            height: RwLock::new(1),
        }
    }

    /// The network's unique name.
    pub fn network_id(&self) -> &str {
        &self.network_id
    }

    /// Records a fact in the vault.
    pub fn record_fact(&self, contract: &str, function: &str, key: &str, value: Vec<u8>) {
        self.vault
            .write()
            .insert(format!("{contract}:{function}:{key}"), value);
        *self.height.write() += 1;
    }

    /// Grants query access to members of `(network, org)`.
    pub fn allow(&self, network: impl Into<String>, org: impl Into<String>) {
        self.exposure.write().insert((network.into(), org.into()));
    }

    /// The shareable configuration for destination-side recording, in the
    /// exact same schema Fabric networks use.
    pub fn network_config(&self) -> NetworkConfig {
        let orgs = self
            .msps
            .iter()
            .zip(&self.notaries)
            .map(|(msp, (org, identity))| OrgConfig {
                org_id: org.clone(),
                root_cert: encode_certificate(msp.root_certificate()),
                peer_certs: vec![encode_certificate(identity.certificate())],
            })
            .collect();
        NetworkConfig {
            network_id: self.network_id.clone(),
            group_name: self.group.name().to_string(),
            orgs,
        }
    }
}

/// The Corda-like [`NetworkDriver`].
pub struct CordaLikeDriver {
    network: Arc<NotaryNetwork>,
}

impl std::fmt::Debug for CordaLikeDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CordaLikeDriver")
            .field("network", &self.network.network_id)
            .finish()
    }
}

impl CordaLikeDriver {
    /// Creates a driver for `network`.
    pub fn new(network: Arc<NotaryNetwork>) -> Self {
        CordaLikeDriver { network }
    }

    fn execute(&self, query: &Query) -> Result<QueryResponse, InteropError> {
        let address = &query.address;
        if address.network_id != self.network.network_id {
            return Err(InteropError::WrongNetwork {
                expected: self.network.network_id.clone(),
                got: address.network_id.clone(),
            });
        }
        // Access control: the requesting (network, org) must be allowed.
        let subject = (
            query.auth.network_id.clone(),
            query.auth.organization_id.clone(),
        );
        if !self.network.exposure.read().contains(&subject) {
            return Ok(QueryResponse {
                request_id: query.request_id.clone(),
                status: ResponseStatus::AccessDenied,
                error: format!("no exposure grant for {subject:?}"),
                ..Default::default()
            });
        }
        // Fetch the fact.
        let key_arg = address
            .args
            .first()
            .map(|a| String::from_utf8_lossy(a).into_owned())
            .unwrap_or_default();
        let vault_key = format!("{}:{}:{}", address.contract_id, address.function, key_arg);
        let Some(fact) = self.network.vault.read().get(&vault_key).cloned() else {
            return Ok(QueryResponse {
                request_id: query.request_id.clone(),
                status: ResponseStatus::NotFound,
                error: format!("no fact at {vault_key:?}"),
                ..Default::default()
            });
        };
        // Pick notaries per the verification policy.
        let orgs = crate::policy::minimal_org_set(&query.policy.expression).ok_or_else(|| {
            InteropError::PolicyUnsatisfiable("policy has no satisfying org set".into())
        })?;
        // Encrypt the fact for the requester when confidential.
        let requester_cert = query
            .auth
            .decode_certificate()
            .map_err(|e| InteropError::BadAuthentication(e.to_string()))?;
        let (result, result_encrypted, result_hash) = if query.policy.confidential {
            let key = requester_cert
                .encryption_key()?
                .ok_or(InteropError::MissingDecryptionKey)?;
            let seed = format!("corda-result:{}", query.request_id);
            let ct = key.encrypt_deterministic(&fact, seed.as_bytes());
            (ct.to_bytes(), true, sha256(&fact).to_vec())
        } else {
            (fact.clone(), false, sha256(&fact).to_vec())
        };
        let height = *self.network.height.read();
        let mut attestations = Vec::with_capacity(orgs.len());
        for org in &orgs {
            let Some((_, notary)) = self.network.notaries.iter().find(|(o, _)| o == org) else {
                return Ok(QueryResponse {
                    request_id: query.request_id.clone(),
                    status: ResponseStatus::PolicyUnsatisfiable,
                    error: format!("no notary for org {org:?}"),
                    ..Default::default()
                });
            };
            let metadata = ResultMetadata {
                request_id: query.request_id.clone(),
                address: address.display_name(),
                result_hash: result_hash.clone(),
                nonce: query.nonce.clone(),
                peer_id: notary.qualified_name(),
                org_id: org.clone(),
                ledger_height: height,
                committed_block_plus_one: 0,
                txid: String::new(),
            };
            let metadata_bytes = metadata.encode_to_vec();
            let signature = notary.sign(&metadata_bytes);
            let (metadata_out, metadata_encrypted) = if query.policy.confidential {
                let key = requester_cert
                    .encryption_key()?
                    .ok_or(InteropError::MissingDecryptionKey)?;
                let seed = format!("corda-md:{}:{}", query.request_id, notary.qualified_name());
                (
                    key.encrypt_deterministic(&metadata_bytes, seed.as_bytes())
                        .to_bytes(),
                    true,
                )
            } else {
                (metadata_bytes, false)
            };
            attestations.push(Attestation {
                signer_cert: encode_certificate(notary.certificate()),
                signature: signature.to_bytes(),
                metadata: metadata_out,
                metadata_encrypted,
            });
        }
        Ok(QueryResponse {
            request_id: query.request_id.clone(),
            status: ResponseStatus::Ok,
            error: String::new(),
            result,
            result_encrypted,
            attestations,
        })
    }
}

impl NetworkDriver for CordaLikeDriver {
    fn network_id(&self) -> &str {
        &self.network.network_id
    }

    fn execute_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        // The plugin's transient constant is unused here, but referenced so
        // both drivers share the same contract for requester material.
        let _ = TRANSIENT_CERT;
        self.execute(query)
            .map_err(|e| RelayError::DriverFailed(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::InteropClient;
    use crate::setup::stl_swt_testbed;
    use tdt_relay::discovery::DiscoveryService;
    use tdt_relay::service::RelayService;
    use tdt_relay::transport::{EnvelopeHandler, RelayTransport};
    use tdt_wire::messages::{NetworkAddress, VerificationPolicy};

    /// Wires a notary network into the standard testbed's relay fabric.
    fn with_notary_net() -> (crate::setup::Testbed, Arc<NotaryNetwork>) {
        let t = stl_swt_testbed();
        let notary_net = Arc::new(NotaryNetwork::new(
            "corda-net",
            &["notary-org-a", "notary-org-b"],
        ));
        notary_net.record_fact("VaultCC", "GetFact", "K-1", b"attested fact".to_vec());
        notary_net.allow("swt", "seller-bank-org");
        // A relay for the notary network, reusing the same bus + registry.
        let relay = Arc::new(RelayService::new(
            "corda-relay",
            "corda-net",
            Arc::clone(&t.registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&t.bus) as Arc<dyn RelayTransport>,
        ));
        relay.register_driver(Arc::new(CordaLikeDriver::new(Arc::clone(&notary_net))));
        t.bus.register(
            "corda-relay",
            Arc::clone(&relay) as Arc<dyn EnvelopeHandler>,
        );
        t.registry.register("corda-net", "inproc:corda-relay");
        (t, notary_net)
    }

    fn fact_address() -> NetworkAddress {
        NetworkAddress::new("corda-net", "vault", "VaultCC", "GetFact").with_arg(b"K-1".to_vec())
    }

    fn notary_policy() -> VerificationPolicy {
        VerificationPolicy::all_of_orgs(["notary-org-a", "notary-org-b"]).with_confidentiality()
    }

    #[test]
    fn same_client_and_relay_reach_notary_network() {
        let (t, _net) = with_notary_net();
        let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let remote = client
            .query_remote(fact_address(), notary_policy())
            .unwrap();
        assert_eq!(remote.data, b"attested fact");
        assert_eq!(remote.proof.attestations.len(), 2);
    }

    #[test]
    fn cmdac_validates_notary_proofs_unchanged() {
        let (t, notary_net) = with_notary_net();
        // Record the notary network's config + policy on SWT via the same
        // admin path used for Fabric networks.
        let admin = t.swt_seller_gateway();
        crate::config::record_foreign_config(&admin, &notary_net.network_config()).unwrap();
        crate::config::set_verification_policy(
            &admin,
            "corda-net",
            "VaultCC",
            "GetFact",
            &notary_policy(),
        )
        .unwrap();
        // Fetch data + proof, then have SWT's CMDAC validate it.
        let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let remote = client
            .query_remote(fact_address(), notary_policy())
            .unwrap();
        let verdict = admin
            .submit(
                "CMDAC",
                "ValidateProof",
                vec![
                    b"corda-net".to_vec(),
                    b"corda-net:vault:VaultCC:GetFact".to_vec(),
                    remote.proof_bytes(),
                ],
            )
            .unwrap()
            .into_committed()
            .unwrap();
        assert_eq!(verdict, b"ok");
    }

    #[test]
    fn exposure_enforced() {
        let (t, notary_net) = with_notary_net();
        // Revoke access by re-creating the grant set without swt.
        notary_net.exposure.write().clear();
        let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let err = client
            .query_remote(fact_address(), notary_policy())
            .unwrap_err();
        assert!(matches!(err, InteropError::AccessDenied(_)));
    }

    #[test]
    fn missing_fact_not_found() {
        let (t, _net) = with_notary_net();
        let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let addr = NetworkAddress::new("corda-net", "vault", "VaultCC", "GetFact")
            .with_arg(b"NO-SUCH-KEY".to_vec());
        let err = client.query_remote(addr, notary_policy()).unwrap_err();
        assert!(matches!(err, InteropError::NotFound(_)));
    }

    #[test]
    fn unknown_notary_org_policy_unsatisfiable() {
        let (t, _net) = with_notary_net();
        let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let policy = VerificationPolicy::all_of_orgs(["ghost-org"]).with_confidentiality();
        let err = client.query_remote(fact_address(), policy).unwrap_err();
        assert!(matches!(err, InteropError::PolicyUnsatisfiable(_)));
    }
}
