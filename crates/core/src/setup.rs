//! Wiring helpers: assemble interoperating networks with relays, drivers,
//! discovery, and transports.
//!
//! [`stl_swt_testbed`] reproduces the paper's proof-of-concept deployment
//! (§4): Simplified TradeLens (a Seller and a Carrier org, one peer each)
//! and Simplified We.Trade (Buyer's Bank and Seller's Bank orgs, two peers
//! each), fully initialized for cross-network queries — configurations
//! exchanged, verification policy and exposure rule recorded, and one
//! relay per network on an in-process bus.

use crate::config::{add_exposure_rule, record_foreign_config, set_verification_policy};
use crate::driver::FabricDriver;
use std::sync::Arc;
use tdt_contracts::cmdac::Cmdac;
use tdt_contracts::ecc::Ecc;
use tdt_contracts::stl::StlChaincode;
use tdt_contracts::swt::SwtChaincode;
use tdt_contracts::{CMDAC_NAME, ECC_NAME};
use tdt_crypto::certcache::CertChainCache;
use tdt_fabric::gateway::Gateway;
use tdt_fabric::msp::Identity;
use tdt_fabric::network::{FabricNetwork, NetworkBuilder};
use tdt_fabric::policy::EndorsementPolicy;
use tdt_relay::discovery::{DiscoveryService, StaticRegistry};
use tdt_relay::service::RelayService;
use tdt_relay::transport::{EnvelopeHandler, InProcessBus, RelayTransport};
use tdt_wire::messages::VerificationPolicy;

/// The canonical address of the remote B/L query.
pub const BL_ADDRESS: &str = "stl:trade-channel:TradeLensCC:GetBillOfLading";

/// Builds the Simplified TradeLens network: Seller and Carrier orgs, one
/// peer each, running `TradeLensCC` plus the ECC and CMDAC system
/// contracts.
pub fn stl_network() -> Arc<FabricNetwork> {
    stl_network_with_cert_cache(Arc::new(CertChainCache::new()))
}

/// [`stl_network`] with the CMDAC using `cert_cache` for chain
/// validation, so the cache can be shared with the network's relay.
pub fn stl_network_with_cert_cache(cert_cache: Arc<CertChainCache>) -> Arc<FabricNetwork> {
    NetworkBuilder::new("stl")
        .channel("trade-channel")
        .org("seller-org", 1)
        .org("carrier-org", 1)
        .chaincode(
            StlChaincode::NAME,
            Arc::new(StlChaincode::new("seller-org", "carrier-org")),
            EndorsementPolicy::all_of(["seller-org", "carrier-org"]),
        )
        .chaincode(
            ECC_NAME,
            Arc::new(Ecc::new()),
            EndorsementPolicy::all_of(["seller-org", "carrier-org"]),
        )
        .chaincode(
            CMDAC_NAME,
            Arc::new(Cmdac::with_cert_cache(cert_cache)),
            EndorsementPolicy::all_of(["seller-org", "carrier-org"]),
        )
        .build()
}

/// Builds the Simplified We.Trade network: Buyer's Bank and Seller's Bank
/// orgs, two peers each, running `WeTradeCC` plus ECC and CMDAC. The
/// `WeTradeCC` endorsement policy is the paper's: one peer from each bank.
pub fn swt_network() -> Arc<FabricNetwork> {
    swt_network_with_cert_cache(Arc::new(CertChainCache::new()))
}

/// [`swt_network`] with the CMDAC using `cert_cache` for chain
/// validation, so the cache can be shared with the network's relay.
pub fn swt_network_with_cert_cache(cert_cache: Arc<CertChainCache>) -> Arc<FabricNetwork> {
    NetworkBuilder::new("swt")
        .channel("finance-channel")
        .org("buyer-bank-org", 2)
        .org("seller-bank-org", 2)
        .chaincode(
            SwtChaincode::NAME,
            Arc::new(SwtChaincode::new(
                "buyer-bank-org",
                "seller-bank-org",
                "stl",
                BL_ADDRESS,
            )),
            EndorsementPolicy::all_of(["buyer-bank-org", "seller-bank-org"]),
        )
        .chaincode(
            ECC_NAME,
            Arc::new(Ecc::new()),
            EndorsementPolicy::all_of(["buyer-bank-org", "seller-bank-org"]),
        )
        .chaincode(
            CMDAC_NAME,
            Arc::new(Cmdac::with_cert_cache(cert_cache)),
            EndorsementPolicy::all_of(["buyer-bank-org", "seller-bank-org"]),
        )
        .build()
}

/// A fully wired pair of interoperating networks.
pub struct Testbed {
    /// Simplified TradeLens.
    pub stl: Arc<FabricNetwork>,
    /// Simplified We.Trade.
    pub swt: Arc<FabricNetwork>,
    /// The in-process relay bus.
    pub bus: Arc<InProcessBus>,
    /// The discovery registry (network -> relay endpoint).
    pub registry: Arc<StaticRegistry>,
    /// STL's relay.
    pub stl_relay: Arc<RelayService>,
    /// SWT's relay.
    pub swt_relay: Arc<RelayService>,
    /// STL Seller application identity.
    pub stl_seller: Identity,
    /// STL Carrier application identity.
    pub stl_carrier: Identity,
    /// SWT Buyer application identity (client of the Buyer's Bank).
    pub swt_buyer: Identity,
    /// The SWT Seller Client (SWT-SC), issued with an encryption key pair
    /// per §4.3.
    pub swt_seller_client: Identity,
}

impl Testbed {
    /// Gateway for the STL Seller application.
    pub fn stl_seller_gateway(&self) -> Gateway {
        Gateway::new(Arc::clone(&self.stl), self.stl_seller.clone())
    }

    /// Gateway for the STL Carrier application.
    pub fn stl_carrier_gateway(&self) -> Gateway {
        Gateway::new(Arc::clone(&self.stl), self.stl_carrier.clone())
    }

    /// Gateway for the SWT Buyer application.
    pub fn swt_buyer_gateway(&self) -> Gateway {
        Gateway::new(Arc::clone(&self.swt), self.swt_buyer.clone())
    }

    /// Gateway for the SWT Seller Client.
    pub fn swt_seller_gateway(&self) -> Gateway {
        Gateway::new(Arc::clone(&self.swt), self.swt_seller_client.clone())
    }
}

/// Builds and initializes the paper's full proof-of-concept deployment.
///
/// Each network's CMDAC shares its certificate-chain cache with that
/// network's relay, so cross-network proof validation hit rates are
/// observable through [`RelayService::stats`].
pub fn stl_swt_testbed() -> Testbed {
    let stl_cert_cache = Arc::new(CertChainCache::new());
    let swt_cert_cache = Arc::new(CertChainCache::new());
    let stl = stl_network_with_cert_cache(Arc::clone(&stl_cert_cache));
    let swt = swt_network_with_cert_cache(Arc::clone(&swt_cert_cache));

    // Client identities (applications).
    let stl_seller = stl
        .register_client("seller-org", "seller-app", false)
        // lint:allow(panic: "deterministic demo fixture; org names are compile-time constants")
        .expect("seller-org exists");
    let stl_carrier = stl
        .register_client("carrier-org", "carrier-app", false)
        // lint:allow(panic: "deterministic demo fixture; org names are compile-time constants")
        .expect("carrier-org exists");
    let swt_buyer = swt
        .register_client("buyer-bank-org", "buyer-app", false)
        // lint:allow(panic: "deterministic demo fixture; org names are compile-time constants")
        .expect("buyer-bank-org exists");
    let swt_seller_client = swt
        .register_client("seller-bank-org", "swt-sc", true)
        // lint:allow(panic: "deterministic demo fixture; org names are compile-time constants")
        .expect("seller-bank-org exists");

    // Initialization phase: exchange configurations and record policies.
    let stl_admin = Gateway::new(Arc::clone(&stl), stl_seller.clone());
    let swt_admin = Gateway::new(Arc::clone(&swt), swt_seller_client.clone());
    // lint:allow(panic: "deterministic demo fixture; freshly built networks always accept config")
    record_foreign_config(&stl_admin, &swt.network_config()).expect("record SWT config on STL");
    // lint:allow(panic: "deterministic demo fixture; freshly built networks always accept config")
    record_foreign_config(&swt_admin, &stl.network_config()).expect("record STL config on SWT");
    set_verification_policy(
        &swt_admin,
        "stl",
        StlChaincode::NAME,
        "GetBillOfLading",
        &VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality(),
    )
    // lint:allow(panic: "deterministic demo fixture; policy arguments are compile-time constants")
    .expect("record verification policy on SWT");
    add_exposure_rule(
        &stl_admin,
        "swt",
        "seller-bank-org",
        StlChaincode::NAME,
        "GetBillOfLading",
    )
    // lint:allow(panic: "deterministic demo fixture; rule arguments are compile-time constants")
    .expect("record exposure rule on STL");

    // Relays on an in-process bus with a static discovery registry.
    let bus = Arc::new(InProcessBus::new());
    let registry = Arc::new(StaticRegistry::new());
    registry.register("stl", "inproc:stl-relay");
    registry.register("swt", "inproc:swt-relay");
    let stl_relay = Arc::new(
        RelayService::new(
            "stl-relay",
            "stl",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        )
        .with_cert_cache(stl_cert_cache),
    );
    stl_relay.register_driver(Arc::new(FabricDriver::new(Arc::clone(&stl))));
    let swt_relay = Arc::new(
        RelayService::new(
            "swt-relay",
            "swt",
            Arc::clone(&registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&bus) as Arc<dyn RelayTransport>,
        )
        .with_cert_cache(swt_cert_cache),
    );
    swt_relay.register_driver(Arc::new(FabricDriver::new(Arc::clone(&swt))));
    bus.register(
        "stl-relay",
        Arc::clone(&stl_relay) as Arc<dyn EnvelopeHandler>,
    );
    bus.register(
        "swt-relay",
        Arc::clone(&swt_relay) as Arc<dyn EnvelopeHandler>,
    );

    Testbed {
        stl,
        swt,
        bus,
        registry,
        stl_relay,
        swt_relay,
        stl_seller,
        stl_carrier,
        swt_buyer,
        swt_seller_client,
    }
}

/// Drives the STL shipment lifecycle for `po_ref` to the point where a
/// bill of lading exists (paper Fig. 3, Steps 1 and 5-8).
pub fn issue_sample_bl(testbed: &Testbed, po_ref: &str) {
    let seller = testbed.stl_seller_gateway();
    let carrier = testbed.stl_carrier_gateway();
    seller
        .submit(
            StlChaincode::NAME,
            "CreateShipment",
            vec![po_ref.as_bytes().to_vec(), b"600 tulip bulbs".to_vec()],
        )
        // lint:allow(panic: "demo lifecycle driver over a fixture ledger; not reachable from network input")
        .expect("create shipment")
        .into_committed()
        // lint:allow(panic: "demo lifecycle driver over a fixture ledger; not reachable from network input")
        .expect("shipment committed");
    carrier
        .submit(
            StlChaincode::NAME,
            "ConfirmBooking",
            vec![po_ref.as_bytes().to_vec()],
        )
        // lint:allow(panic: "demo lifecycle driver over a fixture ledger; not reachable from network input")
        .expect("confirm booking")
        .into_committed()
        // lint:allow(panic: "demo lifecycle driver over a fixture ledger; not reachable from network input")
        .expect("booking committed");
    seller
        .submit(
            StlChaincode::NAME,
            "TransferPossession",
            vec![po_ref.as_bytes().to_vec()],
        )
        // lint:allow(panic: "demo lifecycle driver over a fixture ledger; not reachable from network input")
        .expect("transfer possession")
        .into_committed()
        // lint:allow(panic: "demo lifecycle driver over a fixture ledger; not reachable from network input")
        .expect("possession committed");
    carrier
        .submit(
            StlChaincode::NAME,
            "IssueBillOfLading",
            vec![
                po_ref.as_bytes().to_vec(),
                format!("BL-{po_ref}").into_bytes(),
            ],
        )
        // lint:allow(panic: "demo lifecycle driver over a fixture ledger; not reachable from network input")
        .expect("issue B/L")
        .into_committed()
        // lint:allow(panic: "demo lifecycle driver over a fixture ledger; not reachable from network input")
        .expect("B/L committed");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_builds_with_paper_topology() {
        let t = stl_swt_testbed();
        assert_eq!(t.stl.peers().count(), 2, "STL has 2 peers");
        assert_eq!(t.swt.peers().count(), 4, "SWT has 4 peers");
        assert_eq!(t.stl.org_ids(), vec!["carrier-org", "seller-org"]);
        assert_eq!(t.swt.org_ids(), vec!["buyer-bank-org", "seller-bank-org"]);
        assert!(t.swt_seller_client.decryption_key().is_some());
    }

    #[test]
    fn bl_issuance_flows() {
        let t = stl_swt_testbed();
        issue_sample_bl(&t, "PO-42");
        let bl = t
            .stl_seller_gateway()
            .query(
                StlChaincode::NAME,
                "GetBillOfLading",
                vec![b"PO-42".to_vec()],
            )
            .unwrap();
        let bl =
            <tdt_contracts::stl::BillOfLading as tdt_wire::codec::Message>::decode_from_slice(&bl)
                .unwrap();
        assert_eq!(bl.bl_id, "BL-PO-42");
    }

    #[test]
    fn shipment_history_via_chaincode() {
        // GetShipmentHistory uses the peer's history index (Fabric's
        // GetHistoryForKey): four lifecycle states, oldest first.
        let t = stl_swt_testbed();
        issue_sample_bl(&t, "PO-H");
        let history = t
            .stl_seller_gateway()
            .query(
                StlChaincode::NAME,
                "GetShipmentHistory",
                vec![b"PO-H".to_vec()],
            )
            .unwrap();
        let text = String::from_utf8(history).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with("Created"));
        assert!(lines[1].ends_with("BookingConfirmed"));
        assert!(lines[2].ends_with("InPossession"));
        assert!(lines[3].ends_with("BlIssued"));
    }

    #[test]
    fn discovery_registry_wired() {
        let t = stl_swt_testbed();
        assert_eq!(t.registry.lookup("stl").unwrap(), "inproc:stl-relay");
        assert_eq!(t.registry.lookup("swt").unwrap(), "inproc:swt-relay");
    }
}
