//! Administrative operations of the initialization phase (paper §3.3):
//! "their system contracts must be initialized with metadata that is
//! determined by the networks' governing bodies and subsequently applied
//! to the respective ledgers by satisfying the networks' consensus rules."
//!
//! Each helper submits a real transaction through a [`Gateway`], so the
//! recorded configuration carries the local network's consensus (it is
//! endorsed per the system contract's endorsement policy and committed on
//! every peer).

use crate::error::InteropError;
use tdt_contracts::{CMDAC_NAME, ECC_NAME};
use tdt_fabric::gateway::Gateway;
use tdt_wire::codec::Message;
use tdt_wire::messages::{NetworkConfig, VerificationPolicy};

/// Records a foreign network's configuration via the CMDAC.
///
/// # Errors
///
/// Returns [`InteropError::Fabric`] when the transaction fails or is
/// invalidated.
pub fn record_foreign_config(
    gateway: &Gateway,
    config: &NetworkConfig,
) -> Result<(), InteropError> {
    gateway
        .submit(
            CMDAC_NAME,
            "RecordForeignConfig",
            vec![config.encode_to_vec()],
        )?
        .into_committed()?;
    Ok(())
}

/// Records the verification policy for a foreign contract function via the
/// CMDAC.
///
/// # Errors
///
/// Returns [`InteropError::Fabric`] when the transaction fails or is
/// invalidated.
pub fn set_verification_policy(
    gateway: &Gateway,
    network_id: &str,
    contract: &str,
    function: &str,
    policy: &VerificationPolicy,
) -> Result<(), InteropError> {
    gateway
        .submit(
            CMDAC_NAME,
            "SetVerificationPolicy",
            vec![
                network_id.as_bytes().to_vec(),
                contract.as_bytes().to_vec(),
                function.as_bytes().to_vec(),
                policy.encode_to_vec(),
            ],
        )?
        .into_committed()?;
    Ok(())
}

/// Adds an exposure-control rule `<network, org, chaincode, function>` via
/// the ECC.
///
/// # Errors
///
/// Returns [`InteropError::Fabric`] when the transaction fails or is
/// invalidated.
pub fn add_exposure_rule(
    gateway: &Gateway,
    network_id: &str,
    org_id: &str,
    chaincode: &str,
    function: &str,
) -> Result<(), InteropError> {
    gateway
        .submit(
            ECC_NAME,
            "AddAccessRule",
            vec![
                network_id.as_bytes().to_vec(),
                org_id.as_bytes().to_vec(),
                chaincode.as_bytes().to_vec(),
                function.as_bytes().to_vec(),
            ],
        )?
        .into_committed()?;
    Ok(())
}

/// Derives a verification policy from the *source network's* endorsement
/// policy for `chaincode` and records it on the destination ledger — the
/// automated construction the paper lists as future work (§7: "the
/// construction of an optimal verification policy from a network's
/// consensus policy"). The derived policy mirrors the endorsement policy's
/// structure, so any accepted proof reflects at least the endorsement
/// quorum that would have committed the data.
///
/// # Errors
///
/// Returns [`InteropError::PolicyUnsatisfiable`] when the source has no
/// such chaincode, or [`InteropError::Fabric`] when recording fails.
pub fn derive_and_record_policy(
    destination_gateway: &Gateway,
    source_network: &tdt_fabric::network::FabricNetwork,
    chaincode: &str,
    function: &str,
    confidential: bool,
) -> Result<VerificationPolicy, InteropError> {
    let endorsement_policy = source_network.policy_of(chaincode).ok_or_else(|| {
        InteropError::PolicyUnsatisfiable(format!("source network has no chaincode {chaincode:?}"))
    })?;
    let policy = VerificationPolicy {
        expression: crate::policy::from_endorsement_policy(endorsement_policy),
        confidential,
    };
    set_verification_policy(
        destination_gateway,
        source_network.name(),
        chaincode,
        function,
        &policy,
    )?;
    Ok(policy)
}

/// Removes an exposure-control rule via the ECC.
///
/// # Errors
///
/// Returns [`InteropError::Fabric`] when the transaction fails or is
/// invalidated.
pub fn remove_exposure_rule(
    gateway: &Gateway,
    network_id: &str,
    org_id: &str,
    chaincode: &str,
    function: &str,
) -> Result<(), InteropError> {
    gateway
        .submit(
            ECC_NAME,
            "RemoveAccessRule",
            vec![
                network_id.as_bytes().to_vec(),
                org_id.as_bytes().to_vec(),
                chaincode.as_bytes().to_vec(),
                function.as_bytes().to_vec(),
            ],
        )?
        .into_committed()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::setup::stl_swt_testbed;

    #[test]
    fn derived_policy_recorded_and_usable() {
        use crate::setup::issue_sample_bl;
        use std::sync::Arc;
        let t = stl_swt_testbed();
        issue_sample_bl(&t, "PO-5");
        // Derive SWT's verification policy for GetShipment from STL's
        // endorsement policy (AND(seller-org, carrier-org)) and expose it.
        let derived = super::derive_and_record_policy(
            &t.swt_seller_gateway(),
            &t.stl,
            "TradeLensCC",
            "GetShipment",
            false,
        )
        .unwrap();
        assert!(derived
            .expression
            .is_satisfied(&["seller-org", "carrier-org"]));
        assert!(!derived.expression.is_satisfied(&["seller-org"]));
        super::add_exposure_rule(
            &t.stl_seller_gateway(),
            "swt",
            "seller-bank-org",
            "TradeLensCC",
            "GetShipment",
        )
        .unwrap();
        // A query under the derived policy works end to end, and the
        // resulting proof passes the CMDAC with that recorded policy.
        let client = crate::InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let remote = client
            .query_remote(
                tdt_wire::messages::NetworkAddress::new(
                    "stl",
                    "trade-channel",
                    "TradeLensCC",
                    "GetShipment",
                )
                .with_arg(b"PO-5".to_vec()),
                derived,
            )
            .unwrap();
        let verdict = t
            .swt_seller_gateway()
            .submit(
                "CMDAC",
                "ValidateProof",
                vec![
                    b"stl".to_vec(),
                    b"stl:trade-channel:TradeLensCC:GetShipment".to_vec(),
                    remote.proof_bytes(),
                ],
            )
            .unwrap()
            .into_committed()
            .unwrap();
        assert_eq!(verdict, b"ok");
    }

    #[test]
    fn derive_unknown_chaincode_fails() {
        let t = stl_swt_testbed();
        assert!(super::derive_and_record_policy(
            &t.swt_seller_gateway(),
            &t.stl,
            "NoSuchCC",
            "F",
            true
        )
        .is_err());
    }

    #[test]
    fn testbed_initialization_recorded_on_ledgers() {
        let testbed = stl_swt_testbed();
        // SWT's CMDAC knows STL's configuration.
        let swt_gateway = testbed.swt_seller_gateway();
        let cfg = swt_gateway
            .query("CMDAC", "GetForeignConfig", vec![b"stl".to_vec()])
            .unwrap();
        let cfg =
            <tdt_wire::messages::NetworkConfig as tdt_wire::codec::Message>::decode_from_slice(
                &cfg,
            )
            .unwrap();
        assert_eq!(cfg.network_id, "stl");
        assert_eq!(cfg.orgs.len(), 2);
        // SWT's CMDAC holds the verification policy.
        let policy = swt_gateway
            .query(
                "CMDAC",
                "GetVerificationPolicy",
                vec![
                    b"stl".to_vec(),
                    b"TradeLensCC".to_vec(),
                    b"GetBillOfLading".to_vec(),
                ],
            )
            .unwrap();
        assert!(!policy.is_empty());
        // STL's ECC holds the paper's exposure rule.
        let stl_gateway = testbed.stl_seller_gateway();
        let rules = stl_gateway.query("ECC", "ListAccessRules", vec![]).unwrap();
        let rules = String::from_utf8(rules).unwrap();
        assert!(rules.contains("swt:seller-bank-org:TradeLensCC:GetBillOfLading"));
    }
}
