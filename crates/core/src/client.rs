//! The application-facing interop client.
//!
//! Wraps a local-network [`Gateway`] and the local relay to provide the
//! two operations an adapted application needs (paper §5 measured ~80 SLOC
//! for this integration in the SWT Seller application):
//!
//! 1. [`InteropClient::query_remote`] — fetch data plus proof from a
//!    foreign network (Fig. 2, Steps 1-9).
//! 2. [`InteropClient::submit_with_remote_data`] — run the local
//!    transaction with the decrypted data and proof as arguments
//!    (Fig. 2, Step 10).

use crate::driver::query_auth_bytes;
use crate::error::InteropError;
use crate::proof::process_response;
use rand::RngCore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tdt_fabric::gateway::{Gateway, TxOutcome};
use tdt_obs::span::{self as obs_span, RecordErr, Span};
use tdt_obs::{ContextGuard, TraceContext};
use tdt_relay::redundancy::RelayGroup;
use tdt_relay::service::RelayService;
use tdt_relay::RelayError;
use tdt_wire::codec::Message;
use tdt_wire::messages::{
    AuthInfo, NetworkAddress, Proof, Query, QueryResponse, VerificationPolicy,
};

/// Remote data with its verified (client-side pre-checked) proof.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteData {
    /// The decrypted query result.
    pub data: Vec<u8>,
    /// The proof to pass to the local chaincode.
    pub proof: Proof,
}

impl RemoteData {
    /// Wire-encodes the proof for use as a transaction argument.
    pub fn proof_bytes(&self) -> Vec<u8> {
        self.proof.encode_to_vec()
    }
}

/// The relay (or redundant relay group) a client talks to.
#[derive(Clone)]
pub enum RelayHandle {
    /// A single relay instance.
    Single(Arc<RelayService>),
    /// A redundant group with failover.
    Group(Arc<RelayGroup>),
}

impl std::fmt::Debug for RelayHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelayHandle::Single(r) => write!(f, "RelayHandle::Single({})", r.id()),
            RelayHandle::Group(g) => write!(f, "RelayHandle::Group(len={})", g.len()),
        }
    }
}

impl RelayHandle {
    fn relay_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        match self {
            RelayHandle::Single(relay) => relay.relay_query(query),
            RelayHandle::Group(group) => group.relay_query(query),
        }
    }
}

/// Starts the client-side span of a cross-network operation: joins the
/// caller's trace when one is installed on this thread, otherwise roots a
/// fresh trace — the query path's head-based sampling decision, made at
/// the global ratio (`tdt_obs::trace::set_sample_ratio` /
/// `TDT_TRACE_SAMPLE_RATE`, default 1.0) so production operators can turn
/// per-query recording down without touching call sites.
fn root_span(name: &'static str) -> (Span, ContextGuard) {
    match TraceContext::current() {
        Some(_) => obs_span::enter(name),
        None => {
            let root = TraceContext::root_sampled();
            let guard = root.install();
            (Span::start(name, &root), guard)
        }
    }
}

/// A client of the interoperability protocol.
#[derive(Debug)]
pub struct InteropClient {
    gateway: Gateway,
    relay: RelayHandle,
    counter: AtomicU64,
}

impl InteropClient {
    /// Creates a client backed by a single relay.
    pub fn new(gateway: Gateway, relay: Arc<RelayService>) -> Self {
        InteropClient {
            gateway,
            relay: RelayHandle::Single(relay),
            counter: AtomicU64::new(0),
        }
    }

    /// Creates a client backed by a redundant relay group.
    pub fn with_relay_group(gateway: Gateway, group: Arc<RelayGroup>) -> Self {
        InteropClient {
            gateway,
            relay: RelayHandle::Group(group),
            counter: AtomicU64::new(0),
        }
    }

    /// The underlying local-network gateway.
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// Builds a signed query (exposed for the instrumented flow harness).
    pub fn build_query(&self, address: NetworkAddress, policy: VerificationPolicy) -> Query {
        self.build_request(address, policy, false)
    }

    fn build_request(
        &self,
        address: NetworkAddress,
        policy: VerificationPolicy,
        invocation: bool,
    ) -> Query {
        let identity = self.gateway.identity();
        let seq = self.counter.fetch_add(1, Ordering::Relaxed);
        let mut nonce = vec![0u8; 16];
        rand::thread_rng().fill_bytes(&mut nonce);
        let request_id = format!(
            "{}-{}-{}",
            identity.qualified_name().replace('/', "."),
            std::process::id(),
            seq
        );
        let mut query = Query {
            request_id,
            address,
            policy,
            auth: AuthInfo {
                network_id: identity.certificate().subject().network.clone(),
                organization_id: identity.organization().to_string(),
                certificate: tdt_wire::messages::encode_certificate(identity.certificate()),
                signature: Vec::new(),
            },
            nonce,
            invocation,
        };
        query.auth.signature = identity
            .signing_key()
            .sign(&query_auth_bytes(&query))
            .to_bytes();
        query
    }

    /// Fetches data from a foreign network with a proof satisfying
    /// `policy` (Fig. 2, Steps 1-9).
    ///
    /// # Errors
    ///
    /// Returns an [`InteropError`] when the relay chain fails, the source
    /// denies access, or the returned proof does not verify.
    pub fn query_remote(
        &self,
        address: NetworkAddress,
        policy: VerificationPolicy,
    ) -> Result<RemoteData, InteropError> {
        let (mut span, _obs_guard) = root_span("client.query_remote");
        self.fetch_remote(address, policy, false)
            .record_err(&mut span)
    }

    /// Executes a cross-network *invocation*: a ledger update on the
    /// foreign network, returning its (decrypted) result plus a
    /// commitment receipt attested per `policy` — the extension the paper
    /// sketches in §5 ("the query protocol ... can be easily extended to
    /// enable cross-network chaincode invocations") and defers in §7.
    ///
    /// # Errors
    ///
    /// Returns an [`InteropError`] when the relay chain fails, exposure
    /// control denies the write, the transaction is invalidated at commit,
    /// or the receipt does not verify.
    pub fn invoke_remote(
        &self,
        address: NetworkAddress,
        policy: VerificationPolicy,
    ) -> Result<RemoteData, InteropError> {
        let (mut span, _obs_guard) = root_span("client.invoke_remote");
        self.fetch_remote(address, policy, true)
            .record_err(&mut span)
    }

    /// Shared body of the two remote operations: build the signed query,
    /// relay it, and verify the returned proof — each stage under its own
    /// span of the trace rooted (or joined) by the caller.
    fn fetch_remote(
        &self,
        address: NetworkAddress,
        policy: VerificationPolicy,
        invocation: bool,
    ) -> Result<RemoteData, InteropError> {
        let query = self.build_request(address, policy, invocation);
        let response = self.relay.relay_query(&query)?;
        let proof = {
            let (mut verify_span, _verify_guard) = obs_span::enter("proof.verify");
            process_response(self.gateway.identity(), &query, &response)
                .record_err(&mut verify_span)?
        };
        Ok(RemoteData {
            data: proof.result.clone(),
            proof,
        })
    }

    /// Submits a local transaction whose final two arguments are the
    /// remote data and its encoded proof (Fig. 2, Step 10).
    ///
    /// # Errors
    ///
    /// Returns [`InteropError::Fabric`] on submission failure; an
    /// invalidated transaction is reported through the outcome.
    pub fn submit_with_remote_data(
        &self,
        chaincode: &str,
        function: &str,
        mut args: Vec<Vec<u8>>,
        remote: &RemoteData,
    ) -> Result<TxOutcome, InteropError> {
        args.push(remote.data.clone());
        args.push(remote.proof_bytes());
        Ok(self.gateway.submit(chaincode, function, args)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{issue_sample_bl, stl_swt_testbed};
    use tdt_contracts::stl::BillOfLading;
    use tdt_contracts::swt::{LcStatus, LetterOfCredit, SwtChaincode};
    use tdt_wire::messages::PolicyNode;

    fn bl_address(po: &str) -> NetworkAddress {
        NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
            .with_arg(po.as_bytes().to_vec())
    }

    fn policy() -> VerificationPolicy {
        VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality()
    }

    #[test]
    fn end_to_end_query_and_upload() {
        let t = stl_swt_testbed();
        issue_sample_bl(&t, "PO-1001");
        // Open and issue the L/C on SWT.
        let buyer = t.swt_buyer_gateway();
        buyer
            .submit(
                SwtChaincode::NAME,
                "RequestLC",
                vec![
                    b"PO-1001".to_vec(),
                    b"LC-1".to_vec(),
                    b"buyer-gmbh".to_vec(),
                    b"tulip-exports".to_vec(),
                    b"100000".to_vec(),
                ],
            )
            .unwrap()
            .into_committed()
            .unwrap();
        buyer
            .submit(SwtChaincode::NAME, "IssueLC", vec![b"PO-1001".to_vec()])
            .unwrap()
            .into_committed()
            .unwrap();
        // The SWT Seller Client fetches the B/L with proof (Step 9)...
        let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let remote = client
            .query_remote(bl_address("PO-1001"), policy())
            .unwrap();
        let bl = <BillOfLading as Message>::decode_from_slice(&remote.data).unwrap();
        assert_eq!(bl.po_ref, "PO-1001");
        // ...and runs UploadDispatchDocs with data + proof (Step 10).
        let outcome = client
            .submit_with_remote_data(
                SwtChaincode::NAME,
                "UploadDispatchDocs",
                vec![b"PO-1001".to_vec()],
                &remote,
            )
            .unwrap();
        assert!(outcome.code.is_valid());
        // The L/C has the verified B/L attached on every SWT peer.
        let lc = client
            .gateway()
            .query(SwtChaincode::NAME, "GetLC", vec![b"PO-1001".to_vec()])
            .unwrap();
        let lc = <LetterOfCredit as Message>::decode_from_slice(&lc).unwrap();
        assert_eq!(lc.status, LcStatus::DocsUploaded);
        assert_eq!(lc.bl, remote.data);
    }

    #[test]
    fn query_denied_without_exposure_rule() {
        let t = stl_swt_testbed();
        issue_sample_bl(&t, "PO-1001");
        // A buyer-bank client is not covered by the recorded rule.
        let buyer_client = t
            .swt
            .register_client("buyer-bank-org", "buyer-sc", true)
            .unwrap();
        let gateway = tdt_fabric::gateway::Gateway::new(Arc::clone(&t.swt), buyer_client);
        let client = InteropClient::new(gateway, Arc::clone(&t.swt_relay));
        let err = client
            .query_remote(bl_address("PO-1001"), policy())
            .unwrap_err();
        assert!(matches!(err, InteropError::AccessDenied(_)));
    }

    #[test]
    fn missing_remote_asset_not_found() {
        let t = stl_swt_testbed();
        let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let err = client
            .query_remote(bl_address("PO-GHOST"), policy())
            .unwrap_err();
        assert!(matches!(err, InteropError::NotFound(_)));
    }

    #[test]
    fn request_ids_unique() {
        let t = stl_swt_testbed();
        let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let q1 = client.build_query(bl_address("PO-1"), policy());
        let q2 = client.build_query(bl_address("PO-1"), policy());
        assert_ne!(q1.request_id, q2.request_id);
        assert_ne!(q1.nonce, q2.nonce);
    }

    #[test]
    fn relaxed_policy_single_org() {
        let t = stl_swt_testbed();
        issue_sample_bl(&t, "PO-2");
        // Record a single-org verification policy on SWT and query with it.
        let client = InteropClient::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let single = VerificationPolicy {
            expression: PolicyNode::Org("seller-org".into()),
            confidential: true,
        };
        let remote = client.query_remote(bl_address("PO-2"), single).unwrap();
        assert_eq!(remote.proof.attestations.len(), 1);
    }

    #[test]
    fn relay_group_failover_transparent_to_client() {
        use tdt_relay::discovery::DiscoveryService;
        use tdt_relay::transport::RelayTransport;
        let t = stl_swt_testbed();
        issue_sample_bl(&t, "PO-3");
        // Build two SWT relays; take the first down.
        let relay_b = Arc::new(tdt_relay::service::RelayService::new(
            "swt-relay-b",
            "swt",
            Arc::clone(&t.registry) as Arc<dyn DiscoveryService>,
            Arc::clone(&t.bus) as Arc<dyn RelayTransport>,
        ));
        let group = Arc::new(RelayGroup::new(vec![Arc::clone(&t.swt_relay), relay_b]).unwrap());
        t.swt_relay.set_down(true);
        let client = InteropClient::with_relay_group(t.swt_seller_gateway(), group);
        let remote = client.query_remote(bl_address("PO-3"), policy()).unwrap();
        assert!(!remote.data.is_empty());
    }
}
