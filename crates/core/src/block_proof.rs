//! An alternative pluggable proof scheme: block-inclusion proofs.
//!
//! The paper's implementation uses attestation-based proofs over query
//! results, but notes that "the architecture allows any suitable proof
//! scheme to be plugged in" (§6). This module plugs in a second scheme,
//! closer in spirit to the SPV/NIPoPoW family the paper cites: instead of
//! peers attesting a *result*, peers attest a *block header*, and a Merkle
//! path proves a specific transaction's inclusion under the header's data
//! hash. The destination can then verify that a transaction **committed**
//! on the source ledger without re-running it.
//!
//! Compared to attestation proofs:
//!
//! * ✚ proves commitment (not just a consistent read),
//! * ✚ one header signature covers *every* transaction in the block,
//! * ✚ proof size grows logarithmically with block size (Merkle path),
//! * ─ exposes the whole transaction envelope to the verifier (no
//!   per-field confidentiality), so it suits notarization-style use cases
//!   rather than confidential data transfer.

use crate::error::InteropError;
use std::sync::Arc;
use tdt_crypto::sha256::sha256_concat;
use tdt_fabric::network::FabricNetwork;
use tdt_ledger::merkle::{merkle_proof, MerkleProof, ProofStep};
use tdt_wire::codec::Message;
use tdt_wire::messages::{
    decode_certificate, encode_certificate, BlockProof, HeaderSig, MerkleStep, NetworkConfig,
    PolicyNode,
};

/// Domain-separated bytes a peer signs when attesting a block header.
pub fn header_signing_bytes(
    network_id: &str,
    number: u64,
    prev_hash: &[u8],
    data_hash: &[u8],
) -> Vec<u8> {
    sha256_concat(&[
        b"tdt-header-attest",
        network_id.as_bytes(),
        &number.to_be_bytes(),
        prev_hash,
        data_hash,
    ])
    .to_vec()
}

/// Builds a block-inclusion proof for `txid` in block `block_number`,
/// gathering header signatures from one available peer of each org in
/// `attesting_orgs`.
///
/// # Errors
///
/// Returns [`InteropError`] when the block/transaction does not exist or
/// an attesting org has no available peer.
pub fn generate_block_proof(
    network: &Arc<FabricNetwork>,
    block_number: u64,
    txid: &str,
    attesting_orgs: &[String],
) -> Result<BlockProof, InteropError> {
    // Read the block from any available peer.
    let (_, reader) = network
        .peers()
        .next()
        .map(|(n, p)| (n.to_string(), Arc::clone(p)))
        .ok_or_else(|| {
            InteropError::Fabric(tdt_fabric::FabricError::Internal(
                "network has no peers".into(),
            ))
        })?;
    let (header_number, prev_hash, data_hash, transactions) = {
        let peer = reader.read();
        let block = peer
            .store()
            .block(block_number)
            .map_err(|e| InteropError::NotFound(e.to_string()))?;
        (
            block.header.number,
            block.header.prev_hash.to_vec(),
            block.header.data_hash.to_vec(),
            block.transactions.clone(),
        )
    };
    let (tx_index, tx_bytes) = transactions
        .iter()
        .enumerate()
        .find(|(_, tx)| {
            tdt_fabric::endorse::TransactionEnvelope::decode_from_slice(tx)
                .map(|e| e.txid == txid)
                .unwrap_or(false)
        })
        .map(|(i, tx)| (i, tx.clone()))
        .ok_or_else(|| {
            InteropError::NotFound(format!("transaction {txid:?} not in block {block_number}"))
        })?;
    let merkle = merkle_proof(&transactions, tx_index)
        .map_err(|e| InteropError::InvalidResponse(e.to_string()))?;
    let signing = header_signing_bytes(network.name(), header_number, &prev_hash, &data_hash);
    let mut header_sigs = Vec::with_capacity(attesting_orgs.len());
    for org in attesting_orgs {
        let (_, peer) = network
            .available_peer(org)
            .map_err(|e| InteropError::PolicyUnsatisfiable(e.to_string()))?;
        let peer = peer.read();
        header_sigs.push(HeaderSig {
            signer_cert: encode_certificate(peer.identity().certificate()),
            signature: peer.identity().sign(&signing).to_bytes(),
        });
    }
    Ok(BlockProof {
        network_id: network.name().to_string(),
        block_number_plus_one: header_number + 1,
        prev_hash,
        data_hash,
        header_sigs,
        tx_bytes,
        merkle_steps: merkle_steps_to_wire(&merkle),
    })
}

fn merkle_steps_to_wire(proof: &MerkleProof) -> Vec<MerkleStep> {
    proof
        .steps()
        .iter()
        .map(|s| MerkleStep {
            sibling: s.sibling.to_vec(),
            sibling_on_right: s.sibling_on_right,
        })
        .collect()
}

fn merkle_steps_from_wire(steps: &[MerkleStep]) -> Result<MerkleProof, InteropError> {
    let mut out = Vec::with_capacity(steps.len());
    for s in steps {
        let sibling: [u8; 32] =
            s.sibling.as_slice().try_into().map_err(|_| {
                InteropError::InvalidResponse("merkle sibling must be 32 bytes".into())
            })?;
        out.push(ProofStep {
            sibling,
            sibling_on_right: s.sibling_on_right,
        });
    }
    Ok(MerkleProof::from_steps(out))
}

/// Verifies a block-inclusion proof against a recorded source-network
/// configuration and an attestation policy: every header signature must be
/// by a peer chaining to a recorded org root, the signing orgs must
/// satisfy `policy`, and the Merkle path must place `tx_bytes` under the
/// attested data hash.
///
/// # Errors
///
/// Returns [`InteropError::InvalidResponse`] describing the first failure.
pub fn verify_block_proof(
    proof: &BlockProof,
    config: &NetworkConfig,
    policy: &PolicyNode,
) -> Result<(), InteropError> {
    tdt_obs::profile_scope!("proof.verify");
    if proof.network_id != config.network_id {
        return Err(InteropError::InvalidResponse(format!(
            "proof from {:?} checked against config for {:?}",
            proof.network_id, config.network_id
        )));
    }
    let number = proof
        .block_number()
        .ok_or_else(|| InteropError::InvalidResponse("proof lacks a block number".into()))?;
    let signing = header_signing_bytes(
        &proof.network_id,
        number,
        &proof.prev_hash,
        &proof.data_hash,
    );
    let mut signing_orgs: Vec<String> = Vec::new();
    for (i, hs) in proof.header_sigs.iter().enumerate() {
        let cert = decode_certificate(&hs.signer_cert)
            .map_err(|e| InteropError::InvalidResponse(format!("header sig {i} cert: {e}")))?;
        let org = config
            .orgs
            .iter()
            .find(|o| o.org_id == cert.subject().organization)
            .ok_or_else(|| {
                InteropError::InvalidResponse(format!(
                    "header sig {i} org {:?} not in recorded configuration",
                    cert.subject().organization
                ))
            })?;
        let root = decode_certificate(&org.root_cert)
            .map_err(|e| InteropError::InvalidResponse(format!("recorded root: {e}")))?;
        cert.verify(&root)
            .map_err(|e| InteropError::InvalidResponse(format!("header sig {i} cert: {e}")))?;
        let vk = cert
            .verifying_key()
            .map_err(|e| InteropError::InvalidResponse(e.to_string()))?;
        let sig = tdt_crypto::schnorr::Signature::from_bytes(&hs.signature)
            .map_err(|e| InteropError::InvalidResponse(format!("header sig {i}: {e}")))?;
        vk.verify(&signing, &sig).map_err(|_| {
            InteropError::InvalidResponse(format!("header sig {i} does not verify"))
        })?;
        if !signing_orgs.contains(&cert.subject().organization) {
            signing_orgs.push(cert.subject().organization.clone());
        }
    }
    if !policy.is_satisfied(&signing_orgs) {
        return Err(InteropError::InvalidResponse(format!(
            "header signers {signing_orgs:?} do not satisfy the attestation policy"
        )));
    }
    // Merkle inclusion of the transaction under the attested data hash.
    let data_hash: [u8; 32] = proof
        .data_hash
        .as_slice()
        .try_into()
        .map_err(|_| InteropError::InvalidResponse("data hash must be 32 bytes".into()))?;
    let merkle = merkle_steps_from_wire(&proof.merkle_steps)?;
    merkle
        .verify(&proof.tx_bytes, &data_hash)
        .map_err(|_| InteropError::InvalidResponse("merkle inclusion check failed".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{issue_sample_bl, stl_swt_testbed, Testbed};

    fn prepared() -> (Testbed, u64, String) {
        let t = stl_swt_testbed();
        issue_sample_bl(&t, "PO-1001");
        // Find the block holding the IssueBillOfLading transaction: the
        // last block committed on STL.
        let (_, peer) = t.stl.peers().next().unwrap();
        let (block_number, txid) = {
            let peer = peer.read();
            let number = peer.height() - 1;
            let block = peer.store().block(number).unwrap();
            let txid =
                tdt_fabric::endorse::TransactionEnvelope::decode_from_slice(&block.transactions[0])
                    .unwrap()
                    .txid;
            (number, txid)
        };
        (t, block_number, txid)
    }

    fn orgs() -> Vec<String> {
        vec!["seller-org".to_string(), "carrier-org".to_string()]
    }

    fn policy() -> PolicyNode {
        PolicyNode::And(vec![
            PolicyNode::Org("seller-org".into()),
            PolicyNode::Org("carrier-org".into()),
        ])
    }

    #[test]
    fn valid_block_proof_verifies() {
        let (t, block_number, txid) = prepared();
        let proof = generate_block_proof(&t.stl, block_number, &txid, &orgs()).unwrap();
        let config = t.stl.network_config();
        verify_block_proof(&proof, &config, &policy()).unwrap();
        // And it survives a wire roundtrip.
        let decoded = BlockProof::decode_from_slice(&proof.encode_to_vec()).unwrap();
        verify_block_proof(&decoded, &config, &policy()).unwrap();
    }

    #[test]
    fn proven_tx_is_the_expected_one() {
        let (t, block_number, txid) = prepared();
        let proof = generate_block_proof(&t.stl, block_number, &txid, &orgs()).unwrap();
        let envelope =
            tdt_fabric::endorse::TransactionEnvelope::decode_from_slice(&proof.tx_bytes).unwrap();
        assert_eq!(envelope.txid, txid);
        assert_eq!(envelope.chaincode, "TradeLensCC");
    }

    #[test]
    fn tampered_tx_rejected() {
        let (t, block_number, txid) = prepared();
        let mut proof = generate_block_proof(&t.stl, block_number, &txid, &orgs()).unwrap();
        proof.tx_bytes[0] ^= 1;
        let err = verify_block_proof(&proof, &t.stl.network_config(), &policy()).unwrap_err();
        assert!(err.to_string().contains("merkle"));
    }

    #[test]
    fn tampered_header_rejected() {
        let (t, block_number, txid) = prepared();
        let mut proof = generate_block_proof(&t.stl, block_number, &txid, &orgs()).unwrap();
        proof.block_number_plus_one += 1;
        let err = verify_block_proof(&proof, &t.stl.network_config(), &policy()).unwrap_err();
        assert!(err.to_string().contains("does not verify"));
    }

    #[test]
    fn insufficient_signers_rejected() {
        let (t, block_number, txid) = prepared();
        let proof =
            generate_block_proof(&t.stl, block_number, &txid, &["seller-org".to_string()]).unwrap();
        let err = verify_block_proof(&proof, &t.stl.network_config(), &policy()).unwrap_err();
        assert!(err.to_string().contains("policy"));
    }

    #[test]
    fn rogue_signer_rejected() {
        let (t, block_number, txid) = prepared();
        let mut proof = generate_block_proof(&t.stl, block_number, &txid, &orgs()).unwrap();
        let mut rogue_msp = tdt_fabric::msp::Msp::new(
            "stl",
            "seller-org",
            tdt_crypto::group::Group::test_group(),
            b"rogue",
        );
        let rogue = rogue_msp.enroll("peer0", tdt_crypto::cert::CertRole::Peer, false);
        let number = proof.block_number().unwrap();
        let signing = header_signing_bytes(
            &proof.network_id,
            number,
            &proof.prev_hash,
            &proof.data_hash,
        );
        proof.header_sigs[0] = HeaderSig {
            signer_cert: encode_certificate(rogue.certificate()),
            signature: rogue.sign(&signing).to_bytes(),
        };
        assert!(verify_block_proof(&proof, &t.stl.network_config(), &policy()).is_err());
    }

    #[test]
    fn missing_block_or_tx_errors() {
        let (t, block_number, _) = prepared();
        assert!(matches!(
            generate_block_proof(&t.stl, 999, "x", &orgs()),
            Err(InteropError::NotFound(_))
        ));
        assert!(matches!(
            generate_block_proof(&t.stl, block_number, "no-such-tx", &orgs()),
            Err(InteropError::NotFound(_))
        ));
    }
}
