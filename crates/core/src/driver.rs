//! The Fabric network driver.
//!
//! Implements [`NetworkDriver`] for a [`FabricNetwork`]: Steps 5-7 of the
//! paper's message flow. The driver "uses the appropriate network driver to
//! orchestrate the query against the respective peers in the network based
//! on the specified verification policy"; each peer executing the contract
//! function "refers to the Exposure Control contract to determine if the
//! remote client application has appropriate permissions", and "the results
//! from each of the selected peers collectively form the proof satisfying
//! the verification policy" (paper §3.3).

use crate::error::InteropError;
use crate::plugin::{InteropEndorsement, TRANSIENT_CERT, TRANSIENT_NETWORK, TRANSIENT_ORG};
use crate::policy::minimal_org_set;
use std::sync::Arc;
use tdt_contracts::ecc::EncryptedResult;
use tdt_crypto::sha256::sha256;
use tdt_fabric::chaincode::Proposal;
use tdt_fabric::error::{ChaincodeError, FabricError};
use tdt_fabric::network::FabricNetwork;
use tdt_relay::driver::NetworkDriver;
use tdt_relay::RelayError;
use tdt_wire::codec::Message;
use tdt_wire::messages::{
    encode_certificate, Attestation, Query, QueryResponse, ResponseStatus, ResultMetadata,
};

/// Canonical bytes a requesting client signs to authenticate a query.
pub fn query_auth_bytes(query: &Query) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"tdt-query-auth-v1");
    let push = |out: &mut Vec<u8>, b: &[u8]| {
        out.extend_from_slice(&(b.len() as u32).to_be_bytes());
        out.extend_from_slice(b);
    };
    push(&mut out, query.request_id.as_bytes());
    push(&mut out, query.address.display_name().as_bytes());
    push(&mut out, &query.nonce);
    push(&mut out, &query.policy.encode_to_vec());
    // The invocation flag is covered so a malicious relay cannot upgrade a
    // read-only query into a ledger update (or vice versa).
    out.push(query.invocation as u8);
    out
}

/// A [`NetworkDriver`] for Fabric-like networks.
pub struct FabricDriver {
    network: Arc<FabricNetwork>,
}

impl std::fmt::Debug for FabricDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricDriver")
            .field("network", &self.network.name())
            .finish()
    }
}

impl FabricDriver {
    /// Creates a driver for `network`.
    pub fn new(network: Arc<FabricNetwork>) -> Self {
        FabricDriver { network }
    }

    fn execute(&self, query: &Query) -> Result<QueryResponse, InteropError> {
        let address = &query.address;
        if address.network_id != self.network.name() {
            return Err(InteropError::WrongNetwork {
                expected: self.network.name().to_string(),
                got: address.network_id.clone(),
            });
        }
        // Authenticate the requester's signature over the query. (The
        // certificate's *authenticity* is established by the ECC against
        // the recorded foreign configuration during chaincode execution.)
        let requester_cert = query
            .auth
            .decode_certificate()
            .map_err(|e| InteropError::BadAuthentication(format!("certificate malformed: {e}")))?;
        let vk = requester_cert
            .verifying_key()
            .map_err(|e| InteropError::BadAuthentication(e.to_string()))?;
        let signature = tdt_crypto::schnorr::Signature::from_bytes(&query.auth.signature)
            .map_err(|e| InteropError::BadAuthentication(format!("signature malformed: {e}")))?;
        vk.verify(&query_auth_bytes(query), &signature)
            .map_err(|_| InteropError::BadAuthentication("query signature invalid".into()))?;

        // Select the organizations to query from the verification policy.
        let orgs = minimal_org_set(&query.policy.expression).ok_or_else(|| {
            InteropError::PolicyUnsatisfiable("policy has no satisfying org set".into())
        })?;
        if orgs.is_empty() {
            return Err(InteropError::PolicyUnsatisfiable(
                "policy names no organizations".into(),
            ));
        }

        // Build the relay-query proposal once; every selected peer
        // simulates the same proposal (same txid -> convergent ciphertext).
        let proposal = Proposal::new(
            format!("relay-{}", query.request_id),
            address.ledger_id.clone(),
            address.contract_id.clone(),
            address.function.clone(),
            address.args.clone(),
            requester_cert,
        )
        .as_relay_query()
        .with_transient(
            TRANSIENT_NETWORK,
            query.auth.network_id.clone().into_bytes(),
        )
        .with_transient(
            TRANSIENT_ORG,
            query.auth.organization_id.clone().into_bytes(),
        )
        .with_transient(TRANSIENT_CERT, query.auth.certificate.clone());

        if query.invocation {
            return self.execute_invocation(query, proposal, &orgs);
        }

        let plugin = if query.policy.confidential {
            InteropEndorsement::confidential()
        } else {
            InteropEndorsement::plaintext()
        };

        let mut reference_result: Option<Vec<u8>> = None;
        let mut attestations = Vec::with_capacity(orgs.len());
        let mut response_result = Vec::new();
        let mut result_encrypted = false;
        for org in &orgs {
            let (peer_name, peer) = self
                .network
                .available_peer(org)
                .map_err(|e| InteropError::PolicyUnsatisfiable(e.to_string()))?;
            self.network.faults().apply_latency();
            let peer = peer.read();
            let sim = peer.simulate(&proposal)?;
            match &reference_result {
                None => reference_result = Some(sim.result.clone()),
                Some(reference) => {
                    if reference != &sim.result {
                        return Err(InteropError::DivergentResults(format!(
                            "peer {peer_name} disagrees with earlier peers"
                        )));
                    }
                }
            }
            // Unpack the ECC's (plaintext-hash, ciphertext) wrapper when
            // the result was encrypted on-chain; otherwise hash directly.
            let result_hash: Vec<u8>;
            if query.policy.confidential {
                let wrapped = EncryptedResult::from_bytes(&sim.result)
                    .map_err(|e| InteropError::InvalidResponse(e.to_string()))?;
                result_hash = wrapped.plaintext_hash.to_vec();
                response_result = wrapped.ciphertext;
                result_encrypted = true;
            } else {
                result_hash = sha256(&sim.result).to_vec();
                response_result = sim.result.clone();
            }
            let metadata = ResultMetadata {
                request_id: query.request_id.clone(),
                address: address.display_name(),
                result_hash,
                nonce: query.nonce.clone(),
                peer_id: peer.qualified_name(),
                org_id: peer.org_id().to_string(),
                ledger_height: peer.height(),
                committed_block_plus_one: 0,
                txid: String::new(),
            };
            let metadata_bytes = metadata.encode_to_vec();
            let out = peer.endorse_with_plugin(&proposal, &metadata_bytes, &plugin)?;
            attestations.push(Attestation {
                signer_cert: encode_certificate(peer.identity().certificate()),
                signature: out.signature.to_bytes(),
                metadata: out.payload,
                metadata_encrypted: out.payload_encrypted,
            });
        }
        Ok(QueryResponse {
            request_id: query.request_id.clone(),
            status: ResponseStatus::Ok,
            error: String::new(),
            result: response_result,
            result_encrypted,
            attestations,
        })
    }

    /// Cross-network *invocation* (the extension of paper §5/§7): endorse
    /// per the chaincode's endorsement policy, order, commit, then have
    /// peers attest a receipt over the committed transaction.
    fn execute_invocation(
        &self,
        query: &Query,
        proposal: tdt_fabric::chaincode::Proposal,
        verification_orgs: &[String],
    ) -> Result<QueryResponse, InteropError> {
        use tdt_fabric::endorse::TransactionEnvelope;
        let contract = &query.address.contract_id;
        // The local endorsement policy governs the write.
        let endorsement_policy = self.network.policy_of(contract).ok_or_else(|| {
            InteropError::Fabric(FabricError::ChaincodeNotDeployed(contract.clone()))
        })?;
        let endorse_orgs = endorsement_policy.minimal_org_set().ok_or_else(|| {
            InteropError::PolicyUnsatisfiable("endorsement policy unsatisfiable".into())
        })?;
        let (sim, endorsements) = self.network.endorse(&proposal, &endorse_orgs)?;
        let envelope = TransactionEnvelope {
            txid: proposal.txid.clone(),
            channel: query.address.ledger_id.clone(),
            chaincode: contract.clone(),
            result: sim.result.clone(),
            rwset: sim.rwset.clone(),
            endorsements,
            creator_cert: proposal.creator.clone(),
        };
        let (block_number, codes) = match self.network.order(&envelope)? {
            Some(c) => c,
            None => self.network.cut_block()?.ok_or_else(|| {
                InteropError::Fabric(FabricError::Internal("orderer lost the transaction".into()))
            })?,
        };
        // Locate this transaction's validation code in the committed block.
        let code = self.validation_code_of(block_number, &proposal.txid, &codes);
        if !code.map(|c| c.is_valid()).unwrap_or(false) {
            return Ok(QueryResponse {
                request_id: query.request_id.clone(),
                status: ResponseStatus::Error,
                error: format!("invocation invalidated at commit: {code:?}"),
                ..Default::default()
            });
        }
        // Build the receipt attestations per the verification policy.
        let plugin = if query.policy.confidential {
            InteropEndorsement::confidential()
        } else {
            InteropEndorsement::plaintext()
        };
        let (response_result, result_encrypted, result_hash) = if query.policy.confidential {
            let wrapped = EncryptedResult::from_bytes(&sim.result)
                .map_err(|e| InteropError::InvalidResponse(e.to_string()))?;
            (wrapped.ciphertext, true, wrapped.plaintext_hash.to_vec())
        } else {
            (sim.result.clone(), false, sha256(&sim.result).to_vec())
        };
        let mut attestations = Vec::with_capacity(verification_orgs.len());
        for org in verification_orgs {
            let (_, peer) = self
                .network
                .available_peer(org)
                .map_err(|e| InteropError::PolicyUnsatisfiable(e.to_string()))?;
            let peer = peer.read();
            let metadata = ResultMetadata {
                request_id: query.request_id.clone(),
                address: query.address.display_name(),
                result_hash: result_hash.clone(),
                nonce: query.nonce.clone(),
                peer_id: peer.qualified_name(),
                org_id: peer.org_id().to_string(),
                ledger_height: peer.height(),
                committed_block_plus_one: block_number + 1,
                txid: proposal.txid.clone(),
            };
            let metadata_bytes = metadata.encode_to_vec();
            let out = peer.endorse_with_plugin(&proposal, &metadata_bytes, &plugin)?;
            attestations.push(Attestation {
                signer_cert: encode_certificate(peer.identity().certificate()),
                signature: out.signature.to_bytes(),
                metadata: out.payload,
                metadata_encrypted: out.payload_encrypted,
            });
        }
        Ok(QueryResponse {
            request_id: query.request_id.clone(),
            status: ResponseStatus::Ok,
            error: String::new(),
            result: response_result,
            result_encrypted,
            attestations,
        })
    }

    fn validation_code_of(
        &self,
        block_number: u64,
        txid: &str,
        codes: &[tdt_ledger::block::TxValidationCode],
    ) -> Option<tdt_ledger::block::TxValidationCode> {
        let (_, peer) = self.network.peers().next()?;
        let peer = peer.read();
        let block = peer.store().block(block_number).ok()?;
        let idx = block.transactions.iter().position(|tx| {
            tdt_fabric::endorse::TransactionEnvelope::decode_from_slice(tx)
                .map(|e| e.txid == txid)
                .unwrap_or(false)
        })?;
        codes.get(idx).copied()
    }
}

impl NetworkDriver for FabricDriver {
    fn network_id(&self) -> &str {
        self.network.name()
    }

    fn execute_query(&self, query: &Query) -> Result<QueryResponse, RelayError> {
        match self.execute(query) {
            Ok(response) => Ok(response),
            // Expected protocol outcomes become statuses, not transport errors.
            Err(InteropError::Fabric(FabricError::Chaincode(ChaincodeError::AccessDenied(m)))) => {
                Ok(QueryResponse {
                    request_id: query.request_id.clone(),
                    status: ResponseStatus::AccessDenied,
                    error: m,
                    ..Default::default()
                })
            }
            Err(InteropError::Fabric(FabricError::Chaincode(ChaincodeError::NotFound(m)))) => {
                Ok(QueryResponse {
                    request_id: query.request_id.clone(),
                    status: ResponseStatus::NotFound,
                    error: m,
                    ..Default::default()
                })
            }
            Err(InteropError::PolicyUnsatisfiable(m)) => Ok(QueryResponse {
                request_id: query.request_id.clone(),
                status: ResponseStatus::PolicyUnsatisfiable,
                error: m,
                ..Default::default()
            }),
            Err(e) => Err(RelayError::DriverFailed(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdt_fabric::msp::Identity;
    use tdt_wire::messages::{AuthInfo, NetworkAddress, VerificationPolicy};

    /// Builds the STL network with a shipment whose B/L is issued, plus a
    /// registered foreign client, and returns the driver + client identity.
    fn driver_fixture() -> (FabricDriver, Identity, Arc<FabricNetwork>) {
        let testbed = crate::setup::stl_swt_testbed();
        // Drive the STL lifecycle so a B/L exists.
        crate::setup::issue_sample_bl(&testbed, "PO-1001");
        let driver = FabricDriver::new(Arc::clone(&testbed.stl));
        (
            driver,
            testbed.swt_seller_client.clone(),
            Arc::clone(&testbed.stl),
        )
    }

    fn signed_query(client: &Identity, po: &str, confidential: bool) -> Query {
        let mut policy = VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]);
        if confidential {
            policy = policy.with_confidentiality();
        }
        let mut query = Query {
            request_id: "req-0".into(),
            address: NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
                .with_arg(po.as_bytes().to_vec()),
            policy,
            auth: AuthInfo {
                network_id: "swt".into(),
                organization_id: "seller-bank-org".into(),
                certificate: encode_certificate(client.certificate()),
                signature: Vec::new(),
            },
            nonce: vec![5; 16],
            invocation: false,
        };
        let sig = client.signing_key().sign(&query_auth_bytes(&query));
        query.auth.signature = sig.to_bytes();
        query
    }

    #[test]
    fn confidential_query_produces_proof() {
        let (driver, client, _) = driver_fixture();
        let query = signed_query(&client, "PO-1001", true);
        let response = driver.execute_query(&query).unwrap();
        assert_eq!(response.status, ResponseStatus::Ok);
        assert!(response.result_encrypted);
        assert_eq!(response.attestations.len(), 2);
        for att in &response.attestations {
            assert!(att.metadata_encrypted);
        }
        // The relay-visible result is not the plaintext B/L.
        let dk = client.decryption_key().unwrap();
        let ct = tdt_crypto::elgamal::Ciphertext::from_bytes(&response.result).unwrap();
        let plaintext = dk.decrypt(&ct).unwrap();
        assert_ne!(plaintext, response.result);
        let bl = tdt_contracts::stl::BillOfLading::decode_from_slice(&plaintext).unwrap();
        assert_eq!(bl.po_ref, "PO-1001");
    }

    #[test]
    fn unsigned_query_rejected() {
        let (driver, client, _) = driver_fixture();
        let mut query = signed_query(&client, "PO-1001", true);
        query.auth.signature = vec![0, 0, 0, 0];
        assert!(matches!(
            driver.execute_query(&query),
            Err(RelayError::DriverFailed(m)) if m.contains("authentication")
        ));
    }

    #[test]
    fn tampered_query_rejected() {
        let (driver, client, _) = driver_fixture();
        let mut query = signed_query(&client, "PO-1001", true);
        query.nonce = vec![9; 16]; // breaks the auth signature binding
        assert!(matches!(
            driver.execute_query(&query),
            Err(RelayError::DriverFailed(m)) if m.contains("authentication")
        ));
    }

    #[test]
    fn wrong_network_rejected() {
        let (driver, client, _) = driver_fixture();
        let mut query = signed_query(&client, "PO-1001", true);
        query.address.network_id = "corda-net".into();
        let sig = client.signing_key().sign(&query_auth_bytes(&query));
        query.auth.signature = sig.to_bytes();
        assert!(driver.execute_query(&query).is_err());
    }

    #[test]
    fn missing_bl_maps_to_not_found() {
        let (driver, client, _) = driver_fixture();
        let query = signed_query(&client, "PO-UNKNOWN", true);
        let response = driver.execute_query(&query).unwrap();
        assert_eq!(response.status, ResponseStatus::NotFound);
    }

    #[test]
    fn policy_with_unknown_org_unsatisfiable() {
        let (driver, client, _) = driver_fixture();
        let mut query = signed_query(&client, "PO-1001", true);
        query.policy = VerificationPolicy::all_of_orgs(["ghost-org"]).with_confidentiality();
        let sig = client.signing_key().sign(&query_auth_bytes(&query));
        query.auth.signature = sig.to_bytes();
        let response = driver.execute_query(&query).unwrap();
        assert_eq!(response.status, ResponseStatus::PolicyUnsatisfiable);
    }

    #[test]
    fn peers_down_policy_unsatisfiable() {
        let (driver, client, network) = driver_fixture();
        network.faults().take_down("stl/carrier-org/peer0");
        let query = signed_query(&client, "PO-1001", true);
        let response = driver.execute_query(&query).unwrap();
        assert_eq!(response.status, ResponseStatus::PolicyUnsatisfiable);
    }

    #[test]
    fn attestation_signatures_verify_over_decrypted_metadata() {
        let (driver, client, _) = driver_fixture();
        let query = signed_query(&client, "PO-1001", true);
        let response = driver.execute_query(&query).unwrap();
        let dk = client.decryption_key().unwrap();
        for att in &response.attestations {
            let ct = tdt_crypto::elgamal::Ciphertext::from_bytes(&att.metadata).unwrap();
            let metadata_plain = dk.decrypt(&ct).unwrap();
            let cert = tdt_wire::messages::decode_certificate(&att.signer_cert).unwrap();
            let vk = cert.verifying_key().unwrap();
            let sig = tdt_crypto::schnorr::Signature::from_bytes(&att.signature).unwrap();
            assert!(vk.verify(&metadata_plain, &sig).is_ok());
            let metadata = ResultMetadata::decode_from_slice(&metadata_plain).unwrap();
            assert_eq!(metadata.request_id, "req-0");
            assert_eq!(metadata.nonce, vec![5; 16]);
        }
    }
}
