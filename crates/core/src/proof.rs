//! Client-side response processing (paper §4.3): decrypt the result and
//! proof metadata, pre-verify the attestations, and assemble the
//! [`Proof`] that will be passed as a transaction argument to the local
//! chaincode (which re-validates everything through the CMDAC — the
//! client-side check is an early filter, not the trust root).

use crate::error::InteropError;
use tdt_crypto::elgamal::Ciphertext;
use tdt_crypto::sha256::sha256;
use tdt_fabric::msp::Identity;
use tdt_wire::codec::Message;
use tdt_wire::messages::{
    decode_certificate, Attestation, Proof, Query, QueryResponse, ResponseStatus, ResultMetadata,
};

/// Decrypts, verifies, and repackages a query response into a [`Proof`].
///
/// # Errors
///
/// * [`InteropError::AccessDenied`] / [`InteropError::NotFound`] /
///   [`InteropError::PolicyUnsatisfiable`] mirroring the response status.
/// * [`InteropError::MissingDecryptionKey`] when the response is
///   confidential but `identity` has no decryption key.
/// * [`InteropError::InvalidResponse`] when decryption fails, a signature
///   does not verify, metadata is inconsistent with the query, or the
///   attesting organizations do not satisfy the verification policy.
pub fn process_response(
    identity: &Identity,
    query: &Query,
    response: &QueryResponse,
) -> Result<Proof, InteropError> {
    match response.status {
        ResponseStatus::Ok => {}
        ResponseStatus::AccessDenied => {
            return Err(InteropError::AccessDenied(response.error.clone()))
        }
        ResponseStatus::NotFound => return Err(InteropError::NotFound(response.error.clone())),
        ResponseStatus::PolicyUnsatisfiable => {
            return Err(InteropError::PolicyUnsatisfiable(response.error.clone()))
        }
        ResponseStatus::Error => return Err(InteropError::InvalidResponse(response.error.clone())),
    }
    if response.request_id != query.request_id {
        return Err(InteropError::InvalidResponse(format!(
            "response for {:?} does not answer request {:?}",
            response.request_id, query.request_id
        )));
    }
    // Decrypt the result.
    let result_plain = if response.result_encrypted {
        let dk = identity
            .decryption_key()
            .ok_or(InteropError::MissingDecryptionKey)?;
        let ct = Ciphertext::from_bytes(&response.result)
            .map_err(|e| InteropError::InvalidResponse(format!("result ciphertext: {e}")))?;
        dk.decrypt(&ct)
            .map_err(|e| InteropError::InvalidResponse(format!("result decryption: {e}")))?
    } else {
        response.result.clone()
    };
    let result_hash = sha256(&result_plain);
    let expected_address = query.address.display_name();

    if response.attestations.is_empty() {
        return Err(InteropError::InvalidResponse(
            "response carries no attestations".into(),
        ));
    }
    let verified = verify_attestations(identity, query, &expected_address, &result_hash, response)?;
    let mut plain_attestations = Vec::with_capacity(response.attestations.len());
    let mut endorsing_orgs: Vec<String> = Vec::new();
    for (org_id, attestation) in verified {
        if !endorsing_orgs.contains(&org_id) {
            endorsing_orgs.push(org_id);
        }
        plain_attestations.push(attestation);
    }
    // Pre-check the verification policy locally.
    if !query.policy.expression.is_satisfied(&endorsing_orgs) {
        return Err(InteropError::InvalidResponse(format!(
            "attesting orgs {endorsing_orgs:?} do not satisfy the verification policy"
        )));
    }
    Ok(Proof {
        request_id: query.request_id.clone(),
        address: expected_address,
        nonce: query.nonce.clone(),
        result: result_plain,
        attestations: plain_attestations,
    })
}

/// One attestation after the cheap-per-item phase: decrypted, decoded, and
/// consistency-checked, with its signature still unverified.
struct PreparedAttestation {
    org_id: String,
    metadata_plain: Vec<u8>,
    verifying_key: tdt_crypto::schnorr::VerifyingKey,
    signature: tdt_crypto::schnorr::Signature,
    repacked: Attestation,
}

/// Verifies every attestation in two phases: a parallel preparation pass
/// (metadata decryption, certificate/signature decoding, consistency
/// checks — the ElGamal decryption is the per-item hot spot) followed by a
/// single randomized batch verification of all Schnorr signatures
/// ([`tdt_crypto::schnorr::batch_verify`], which parallelizes its own
/// multi-exponentiations and bisects to the offending index on failure).
///
/// Preparation results come back in attestation order, so callers observe
/// exactly the error the old sequential loop produced regardless of
/// thread scheduling.
fn verify_attestations(
    identity: &Identity,
    query: &Query,
    expected_address: &str,
    result_hash: &[u8; 32],
    response: &QueryResponse,
) -> Result<Vec<(String, Attestation)>, InteropError> {
    let n = response.attestations.len();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    let prepared: Vec<Result<PreparedAttestation, InteropError>> = if workers <= 1 {
        response
            .attestations
            .iter()
            .enumerate()
            .map(|(i, att)| {
                prepare_attestation(identity, query, expected_address, result_hash, i, att)
            })
            .collect()
    } else {
        let mut results: Vec<Option<Result<PreparedAttestation, InteropError>>> =
            std::iter::repeat_with(|| None).take(n).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        response
                            .attestations
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(i, att)| {
                                (
                                    i,
                                    prepare_attestation(
                                        identity,
                                        query,
                                        expected_address,
                                        result_hash,
                                        i,
                                        att,
                                    ),
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                // A panicking preparation thread must not take the client
                // down with it: leave its slots unfilled and fail them
                // closed below.
                if let Ok(items) = handle.join() {
                    for (i, result) in items {
                        if let Some(slot) = results.get_mut(i) {
                            *slot = Some(result);
                        }
                    }
                }
            }
        });
        results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    Err(InteropError::InvalidResponse(format!(
                        "attestation {i} verification did not complete"
                    )))
                })
            })
            .collect()
    };
    let prepared: Vec<PreparedAttestation> = prepared.into_iter().collect::<Result<Vec<_>, _>>()?;

    // Phase 2: one batch verification over all signatures. The client is
    // short-lived and sees varying endorser keys, so no per-key tables
    // here — the generator's fixed-base table and the fused multi-exp
    // already carry the speedup.
    let items: Vec<tdt_crypto::schnorr::BatchItem<'_>> = prepared
        .iter()
        .map(|p| tdt_crypto::schnorr::BatchItem {
            key: &p.verifying_key,
            message: &p.metadata_plain,
            signature: &p.signature,
            table: None,
        })
        .collect();
    match tdt_crypto::schnorr::batch_verify(&items) {
        Ok(()) => {}
        Err(tdt_crypto::schnorr::BatchVerifyError::Invalid { index }) => {
            return Err(InteropError::InvalidResponse(format!(
                "attestation {index} signature invalid"
            )))
        }
        Err(tdt_crypto::schnorr::BatchVerifyError::GroupMismatch { index }) => {
            return Err(InteropError::InvalidResponse(format!(
                "attestation {index} signer key uses a mismatched group"
            )))
        }
        Err(tdt_crypto::schnorr::BatchVerifyError::Empty) => {
            return Err(InteropError::InvalidResponse(
                "response carries no attestations".into(),
            ))
        }
    }
    Ok(prepared
        .into_iter()
        .map(|p| (p.org_id, p.repacked))
        .collect())
}

/// Prepares one attestation: decrypt metadata if needed, decode the
/// signer's certificate/key/signature, and check the metadata answers this
/// query about this result. Signature verification itself is deferred to
/// the batch pass.
fn prepare_attestation(
    identity: &Identity,
    query: &Query,
    expected_address: &str,
    result_hash: &[u8; 32],
    i: usize,
    att: &Attestation,
) -> Result<PreparedAttestation, InteropError> {
    // Decrypt the metadata when necessary.
    let metadata_plain = if att.metadata_encrypted {
        let dk = identity
            .decryption_key()
            .ok_or(InteropError::MissingDecryptionKey)?;
        let ct = Ciphertext::from_bytes(&att.metadata).map_err(|e| {
            InteropError::InvalidResponse(format!("attestation {i} ciphertext: {e}"))
        })?;
        dk.decrypt(&ct).map_err(|e| {
            InteropError::InvalidResponse(format!("attestation {i} decryption: {e}"))
        })?
    } else {
        att.metadata.clone()
    };
    let cert = decode_certificate(&att.signer_cert)
        .map_err(|e| InteropError::InvalidResponse(format!("attestation {i} cert: {e}")))?;
    let vk = cert
        .verifying_key()
        .map_err(|e| InteropError::InvalidResponse(format!("attestation {i} key: {e}")))?;
    let signature = tdt_crypto::schnorr::Signature::from_bytes(&att.signature)
        .map_err(|e| InteropError::InvalidResponse(format!("attestation {i} sig: {e}")))?;
    // Check the metadata answers *this* query, about *this* result.
    let metadata = ResultMetadata::decode_from_slice(&metadata_plain)
        .map_err(|e| InteropError::InvalidResponse(format!("attestation {i} metadata: {e}")))?;
    if metadata.request_id != query.request_id {
        return Err(InteropError::InvalidResponse(format!(
            "attestation {i} answers a different request"
        )));
    }
    if metadata.address != expected_address {
        return Err(InteropError::InvalidResponse(format!(
            "attestation {i} covers address {:?}, expected {expected_address:?}",
            metadata.address
        )));
    }
    if metadata.nonce != query.nonce {
        return Err(InteropError::InvalidResponse(format!(
            "attestation {i} nonce mismatch"
        )));
    }
    if metadata.result_hash != *result_hash {
        return Err(InteropError::InvalidResponse(format!(
            "attestation {i} attests a different result"
        )));
    }
    Ok(PreparedAttestation {
        org_id: metadata.org_id,
        repacked: Attestation {
            signer_cert: att.signer_cert.clone(),
            signature: att.signature.clone(),
            metadata: metadata_plain.clone(),
            metadata_encrypted: false,
        },
        metadata_plain,
        verifying_key: vk,
        signature,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{query_auth_bytes, FabricDriver};
    use crate::setup::{issue_sample_bl, stl_swt_testbed, Testbed};
    use std::sync::Arc;
    use tdt_relay::driver::NetworkDriver;
    use tdt_wire::messages::{AuthInfo, NetworkAddress, VerificationPolicy};

    struct Fixture {
        testbed: Testbed,
        driver: FabricDriver,
    }

    fn fixture() -> Fixture {
        let testbed = stl_swt_testbed();
        issue_sample_bl(&testbed, "PO-1001");
        let driver = FabricDriver::new(Arc::clone(&testbed.stl));
        Fixture { testbed, driver }
    }

    fn query_and_response(f: &Fixture) -> (Query, QueryResponse) {
        let client = &f.testbed.swt_seller_client;
        let mut query = Query {
            request_id: "req-9".into(),
            address: NetworkAddress::new("stl", "trade-channel", "TradeLensCC", "GetBillOfLading")
                .with_arg(b"PO-1001".to_vec()),
            policy: VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"])
                .with_confidentiality(),
            auth: AuthInfo {
                network_id: "swt".into(),
                organization_id: "seller-bank-org".into(),
                certificate: tdt_wire::messages::encode_certificate(client.certificate()),
                signature: Vec::new(),
            },
            nonce: vec![8; 16],
            invocation: false,
        };
        query.auth.signature = client
            .signing_key()
            .sign(&query_auth_bytes(&query))
            .to_bytes();
        let response = f.driver.execute_query(&query).unwrap();
        (query, response)
    }

    #[test]
    fn valid_response_yields_proof() {
        let f = fixture();
        let (query, response) = query_and_response(&f);
        let proof = process_response(&f.testbed.swt_seller_client, &query, &response).unwrap();
        assert_eq!(proof.request_id, "req-9");
        assert_eq!(proof.attestations.len(), 2);
        assert!(proof.attestations.iter().all(|a| !a.metadata_encrypted));
        let bl = <tdt_contracts::stl::BillOfLading as Message>::decode_from_slice(&proof.result)
            .unwrap();
        assert_eq!(bl.po_ref, "PO-1001");
    }

    #[test]
    fn wrong_identity_cannot_decrypt() {
        let f = fixture();
        let (query, response) = query_and_response(&f);
        // The buyer has no decryption key at all.
        let err = process_response(&f.testbed.swt_buyer, &query, &response).unwrap_err();
        assert_eq!(err, InteropError::MissingDecryptionKey);
        // An identity with a *different* decryption key fails the MAC.
        let other = f
            .testbed
            .swt
            .register_client("seller-bank-org", "other-client", true)
            .unwrap();
        let err = process_response(&other, &query, &response).unwrap_err();
        assert!(matches!(err, InteropError::InvalidResponse(_)));
    }

    #[test]
    fn tampered_result_detected() {
        let f = fixture();
        let (query, mut response) = query_and_response(&f);
        // A malicious relay flips ciphertext bits.
        let last = response.result.len() - 1;
        response.result[last] ^= 0xff;
        let err = process_response(&f.testbed.swt_seller_client, &query, &response).unwrap_err();
        assert!(matches!(err, InteropError::InvalidResponse(_)));
    }

    #[test]
    fn swapped_attestation_signature_detected() {
        let f = fixture();
        let (query, mut response) = query_and_response(&f);
        let sig0 = response.attestations[0].signature.clone();
        response.attestations[0].signature = response.attestations[1].signature.clone();
        response.attestations[1].signature = sig0;
        let err = process_response(&f.testbed.swt_seller_client, &query, &response).unwrap_err();
        assert!(matches!(err, InteropError::InvalidResponse(_)));
    }

    #[test]
    fn dropped_attestation_fails_policy_precheck() {
        let f = fixture();
        let (query, mut response) = query_and_response(&f);
        response.attestations.truncate(1);
        let err = process_response(&f.testbed.swt_seller_client, &query, &response).unwrap_err();
        assert!(matches!(err, InteropError::InvalidResponse(m) if m.contains("policy")));
    }

    #[test]
    fn empty_attestations_rejected() {
        let f = fixture();
        let (query, mut response) = query_and_response(&f);
        response.attestations.clear();
        assert!(matches!(
            process_response(&f.testbed.swt_seller_client, &query, &response),
            Err(InteropError::InvalidResponse(_))
        ));
    }

    #[test]
    fn mismatched_request_id_rejected() {
        let f = fixture();
        let (mut query, response) = query_and_response(&f);
        query.request_id = "other-request".into();
        assert!(matches!(
            process_response(&f.testbed.swt_seller_client, &query, &response),
            Err(InteropError::InvalidResponse(_))
        ));
    }

    #[test]
    fn error_statuses_mapped() {
        let f = fixture();
        let (query, _) = query_and_response(&f);
        for (status, matcher) in [
            (ResponseStatus::AccessDenied, "denied"),
            (ResponseStatus::NotFound, "not found"),
            (ResponseStatus::PolicyUnsatisfiable, "unsatisfiable"),
            (ResponseStatus::Error, "invalid"),
        ] {
            let response = QueryResponse {
                request_id: query.request_id.clone(),
                status,
                error: "boom".into(),
                ..Default::default()
            };
            let err =
                process_response(&f.testbed.swt_seller_client, &query, &response).unwrap_err();
            assert!(
                err.to_string().contains(matcher),
                "{status:?} -> {err} should contain {matcher:?}"
            );
        }
    }
}
