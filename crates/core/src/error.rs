//! Error type of the interoperability layer.

use std::error::Error;
use std::fmt;

/// Errors raised by the trusted-data-transfer protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InteropError {
    /// The addressed network does not match the driver's network.
    WrongNetwork {
        /// The network this driver serves.
        expected: String,
        /// The network the query addressed.
        got: String,
    },
    /// The verification policy cannot be satisfied (unknown orgs, empty
    /// expression, or peers unavailable).
    PolicyUnsatisfiable(String),
    /// The remote query was denied by exposure control.
    AccessDenied(String),
    /// The remote function/asset does not exist.
    NotFound(String),
    /// The query's authentication details failed verification.
    BadAuthentication(String),
    /// Peers returned divergent results.
    DivergentResults(String),
    /// The response (or proof) failed client-side verification.
    InvalidResponse(String),
    /// The client identity lacks a decryption key for confidential data.
    MissingDecryptionKey,
    /// A relay-layer failure.
    Relay(tdt_relay::RelayError),
    /// A blockchain-layer failure.
    Fabric(tdt_fabric::FabricError),
    /// A cryptographic failure.
    Crypto(tdt_crypto::CryptoError),
    /// A wire-encoding failure.
    Wire(tdt_wire::WireError),
}

impl fmt::Display for InteropError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InteropError::WrongNetwork { expected, got } => {
                write!(
                    f,
                    "query addressed to {got:?} but this driver serves {expected:?}"
                )
            }
            InteropError::PolicyUnsatisfiable(m) => {
                write!(f, "verification policy unsatisfiable: {m}")
            }
            InteropError::AccessDenied(m) => write!(f, "access denied by source network: {m}"),
            InteropError::NotFound(m) => write!(f, "not found on source network: {m}"),
            InteropError::BadAuthentication(m) => write!(f, "authentication failed: {m}"),
            InteropError::DivergentResults(m) => write!(f, "peers returned divergent results: {m}"),
            InteropError::InvalidResponse(m) => write!(f, "invalid response: {m}"),
            InteropError::MissingDecryptionKey => {
                write!(
                    f,
                    "client identity has no decryption key for confidential data"
                )
            }
            InteropError::Relay(e) => write!(f, "relay error: {e}"),
            InteropError::Fabric(e) => write!(f, "fabric error: {e}"),
            InteropError::Crypto(e) => write!(f, "crypto error: {e}"),
            InteropError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl Error for InteropError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InteropError::Relay(e) => Some(e),
            InteropError::Fabric(e) => Some(e),
            InteropError::Crypto(e) => Some(e),
            InteropError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tdt_relay::RelayError> for InteropError {
    fn from(e: tdt_relay::RelayError) -> Self {
        InteropError::Relay(e)
    }
}

impl From<tdt_fabric::FabricError> for InteropError {
    fn from(e: tdt_fabric::FabricError) -> Self {
        InteropError::Fabric(e)
    }
}

impl From<tdt_crypto::CryptoError> for InteropError {
    fn from(e: tdt_crypto::CryptoError) -> Self {
        InteropError::Crypto(e)
    }
}

impl From<tdt_wire::WireError> for InteropError {
    fn from(e: tdt_wire::WireError) -> Self {
        InteropError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            InteropError::WrongNetwork {
                expected: "a".into(),
                got: "b".into(),
            },
            InteropError::PolicyUnsatisfiable("x".into()),
            InteropError::AccessDenied("x".into()),
            InteropError::NotFound("x".into()),
            InteropError::BadAuthentication("x".into()),
            InteropError::DivergentResults("x".into()),
            InteropError::InvalidResponse("x".into()),
            InteropError::MissingDecryptionKey,
            InteropError::Relay(tdt_relay::RelayError::RateLimited),
            InteropError::Fabric(tdt_fabric::FabricError::Internal("x".into())),
            InteropError::Crypto(tdt_crypto::CryptoError::InvalidSignature),
            InteropError::Wire(tdt_wire::WireError::UnexpectedEof),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        let e: InteropError = tdt_relay::RelayError::RateLimited.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&InteropError::MissingDecryptionKey).is_none());
    }
}
