//! Verification-policy utilities.
//!
//! The wire-level [`PolicyNode`] language is evaluated by the destination's
//! Data Acceptance contract; the *source* relay driver also reads it to
//! decide which peers to query (paper §3.3, Step 5: the driver
//! "orchestrate\[s\] the query against the respective peers in the network
//! based on the specified verification policy").

use tdt_wire::messages::{PolicyNode, VerificationPolicy};

/// Computes a minimal set of organizations whose attestations would
/// satisfy `node`. Returns `None` for unsatisfiable expressions.
pub fn minimal_org_set(node: &PolicyNode) -> Option<Vec<String>> {
    match node {
        PolicyNode::Org(org) => Some(vec![org.clone()]),
        PolicyNode::And(children) => {
            let mut out: Vec<String> = Vec::new();
            for child in children {
                for org in minimal_org_set(child)? {
                    if !out.contains(&org) {
                        out.push(org);
                    }
                }
            }
            Some(out)
        }
        PolicyNode::Or(children) => children
            .iter()
            .filter_map(minimal_org_set)
            .min_by_key(Vec::len),
        PolicyNode::OutOf(k, children) => {
            let mut candidates: Vec<Vec<String>> =
                children.iter().filter_map(minimal_org_set).collect();
            if candidates.len() < *k as usize {
                return None;
            }
            candidates.sort_by_key(Vec::len);
            let mut out: Vec<String> = Vec::new();
            for set in candidates.into_iter().take(*k as usize) {
                for org in set {
                    if !out.contains(&org) {
                        out.push(org);
                    }
                }
            }
            Some(out)
        }
    }
}

/// Builds the paper's proof-of-concept policy: one peer from each of the
/// given organizations, with end-to-end confidentiality.
pub fn confidential_all_of<I, S>(orgs: I) -> VerificationPolicy
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    VerificationPolicy::all_of_orgs(orgs).with_confidentiality()
}

/// Derives a verification policy from a source network's consensus
/// (endorsement) policy — the construction the paper lists as future work
/// (§7: "the construction of an optimal verification policy from a
/// network's consensus policy"). The mapping is conservative: the
/// verification policy mirrors the endorsement policy's structure, so any
/// proof satisfying it reflects at least the endorsement quorum.
pub fn from_endorsement_policy(policy: &tdt_fabric::policy::EndorsementPolicy) -> PolicyNode {
    use tdt_fabric::policy::EndorsementPolicy as Ep;
    match policy {
        Ep::Org(org) => PolicyNode::Org(org.clone()),
        Ep::And(children) => {
            PolicyNode::And(children.iter().map(from_endorsement_policy).collect())
        }
        Ep::Or(children) => PolicyNode::Or(children.iter().map(from_endorsement_policy).collect()),
        Ep::OutOf(k, children) => {
            PolicyNode::OutOf(*k, children.iter().map(from_endorsement_policy).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdt_fabric::policy::EndorsementPolicy;

    #[test]
    fn minimal_set_org() {
        assert_eq!(
            minimal_org_set(&PolicyNode::Org("a".into())).unwrap(),
            vec!["a"]
        );
    }

    #[test]
    fn minimal_set_and_dedups() {
        let node = PolicyNode::And(vec![
            PolicyNode::Org("a".into()),
            PolicyNode::Org("b".into()),
            PolicyNode::Org("a".into()),
        ]);
        assert_eq!(minimal_org_set(&node).unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn minimal_set_or_picks_smallest() {
        let node = PolicyNode::Or(vec![
            PolicyNode::And(vec![
                PolicyNode::Org("a".into()),
                PolicyNode::Org("b".into()),
            ]),
            PolicyNode::Org("c".into()),
        ]);
        assert_eq!(minimal_org_set(&node).unwrap(), vec!["c"]);
    }

    #[test]
    fn minimal_set_outof() {
        let node = PolicyNode::OutOf(
            2,
            vec![
                PolicyNode::Org("a".into()),
                PolicyNode::Org("b".into()),
                PolicyNode::Org("c".into()),
            ],
        );
        let set = minimal_org_set(&node).unwrap();
        assert_eq!(set.len(), 2);
        assert!(node.is_satisfied(&set));
    }

    #[test]
    fn unsatisfiable_outof() {
        let node = PolicyNode::OutOf(5, vec![PolicyNode::Org("a".into())]);
        assert!(minimal_org_set(&node).is_none());
    }

    #[test]
    fn minimal_set_satisfies_policy() {
        // Nested combination.
        let node = PolicyNode::And(vec![
            PolicyNode::Org("x".into()),
            PolicyNode::OutOf(
                1,
                vec![PolicyNode::Org("y".into()), PolicyNode::Org("z".into())],
            ),
        ]);
        let set = minimal_org_set(&node).unwrap();
        assert!(node.is_satisfied(&set));
        assert!(set.contains(&"x".to_string()));
    }

    #[test]
    fn confidential_builder() {
        let p = confidential_all_of(["seller-org", "carrier-org"]);
        assert!(p.confidential);
        assert!(p.expression.is_satisfied(&["seller-org", "carrier-org"]));
    }

    #[test]
    fn endorsement_policy_mapping_preserves_semantics() {
        let ep = EndorsementPolicy::And(vec![
            EndorsementPolicy::Org("a".into()),
            EndorsementPolicy::k_of(1, ["b", "c"]),
        ]);
        let vp = from_endorsement_policy(&ep);
        for sample in [
            vec!["a", "b"],
            vec!["a", "c"],
            vec!["a"],
            vec!["b", "c"],
            vec![],
        ] {
            assert_eq!(
                ep.is_satisfied(&sample),
                vp.is_satisfied(&sample),
                "sample {sample:?}"
            );
        }
    }
}
