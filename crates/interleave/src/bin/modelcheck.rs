//! CI entry point: explore every model replica, both variants.
//!
//! * Fixed variants must come back clean with the bounded schedule
//!   space exhausted.
//! * Pre-fix variants must still be caught — a checker that stops
//!   finding the old bugs is broken, not lucky.
//! * A seeded random soak runs on top; the seed comes from
//!   `INTERLEAVE_SEED` (CI passes a pinned seed and a randomized one)
//!   and is echoed so any failure replays exactly.

use interleave::models::{admission_ewma, breaker_probe, stats_snapshot, Variant};
use interleave::sched::{explore, Config, Sim};

type Scenario = Box<dyn Fn(&mut Sim)>;

fn scenarios(variant: Variant) -> Vec<(&'static str, Scenario)> {
    vec![
        ("admission-ewma", Box::new(admission_ewma(variant))),
        ("breaker-probe", Box::new(breaker_probe(variant))),
        ("stats-snapshot", Box::new(stats_snapshot(variant))),
    ]
}

fn main() {
    let seed = std::env::var("INTERLEAVE_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xC0FFEE);
    println!("interleave: seed {seed} (replay with INTERLEAVE_SEED={seed})");
    let mut failed = false;

    println!("— fixed variants: exhaustive exploration must be clean —");
    for (name, scenario) in scenarios(Variant::Fixed) {
        let report = explore(Config::exhaustive(), &scenario);
        let ok = report.violation.is_none() && report.complete;
        println!(
            "  {} {name:<18} {}",
            if ok { "PASS" } else { "FAIL" },
            report.summary()
        );
        failed |= !ok;
    }

    println!("— pre-fix variants: the seeded bugs must still be caught —");
    for (name, scenario) in scenarios(Variant::PreFix) {
        let report = explore(Config::exhaustive(), &scenario);
        let ok = report.violation.is_some();
        println!(
            "  {} {name:<18} {}",
            if ok { "PASS" } else { "FAIL" },
            report.summary()
        );
        failed |= !ok;
    }

    println!("— random soak on fixed variants (seed {seed}) —");
    for (name, scenario) in scenarios(Variant::Fixed) {
        let report = explore(Config::random(seed, 512), &scenario);
        let ok = report.violation.is_none();
        println!(
            "  {} {name:<18} {}",
            if ok { "PASS" } else { "FAIL" },
            report.summary()
        );
        failed |= !ok;
    }

    if failed {
        println!("interleave: FAILED");
        std::process::exit(1);
    }
    println!("interleave: all models verified");
}
