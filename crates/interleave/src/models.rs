//! Model replicas of the relay's concurrent structures.
//!
//! Each model reproduces the *synchronization skeleton* of a real
//! structure — the loads, stores, and lock acquisitions, at the same
//! granularity — with the domain arithmetic simplified just enough to
//! state an exact invariant. Every model comes in two variants:
//!
//! * **pre-fix** — the shape the code had before this PR's sync-pass
//!   findings were fixed. The checker must find the race.
//! * **fixed** — the shipped shape. The checker must exhaust the
//!   bounded schedule space without a violation.
//!
//! Covered structures:
//! * `relay::admission` — `observe_service_time`'s EWMA update, which
//!   was a `load`/`store` pair (lost updates) and is now a CAS loop.
//! * `relay::breaker` — half-open probe accounting, which used to let
//!   *any* success close the circuit and now attributes outcomes to
//!   the admitted probe via serial tokens.
//! * `relay::service` stats — `RelayStatsSnapshot`-style field-wise
//!   counter reads racing RMW increments.

use crate::sched::{Sim, VCell, VMutex, Vt};
use std::sync::{Arc, Mutex, PoisonError};

/// Which side of the fix a model replicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The racy pre-fix shape; exploration must find a violation.
    PreFix,
    /// The shipped shape; exploration must come back clean.
    Fixed,
}

/// `relay::admission::observe_service_time`: concurrent observers fold
/// samples into one shared estimate.
///
/// The arithmetic is additive (each observer contributes exactly 100)
/// so the invariant is exact: after both observers finish, the
/// estimate must reflect both contributions. The pre-fix variant is
/// the literal `load` → compute → `store` window the sync pass flagged
/// at `admission.rs`; the fixed variant is the `fetch_update`-style
/// CAS retry loop that replaced it.
pub fn admission_ewma(variant: Variant) -> impl Fn(&mut Sim) {
    move |sim: &mut Sim| {
        let estimate = Arc::new(VCell::new(0u64));
        for _ in 0..2 {
            let estimate = Arc::clone(&estimate);
            sim.thread(move |vt| match variant {
                Variant::PreFix => {
                    let current = estimate.read(vt);
                    estimate.write(vt, current + 100);
                }
                Variant::Fixed => loop {
                    let current = estimate.read(vt);
                    if estimate
                        .compare_exchange(vt, current, current + 100)
                        .is_ok()
                    {
                        break;
                    }
                },
            });
        }
        let estimate = Arc::clone(&estimate);
        sim.check(move || {
            let v = estimate.peek();
            if v == 200 {
                Ok(())
            } else {
                Err(format!(
                    "lost update: estimate {v} after two observations of +100 (expected 200)"
                ))
            }
        });
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BState {
    Open,
    HalfOpen,
    Closed,
}

/// Replica of `relay::breaker::EndpointState`, reduced to the probe
/// bookkeeping.
#[derive(Clone, Debug)]
struct BreakerModel {
    state: BState,
    probe_in_flight: bool,
    probe_serial: u64,
    /// Set when a HalfOpen→Closed transition was driven by an outcome
    /// that was not the current probe's — the bug this PR fixed.
    unattributed_close: bool,
}

#[derive(Clone, Copy, Default)]
struct ModelAdmission {
    probe: bool,
    serial: u64,
}

fn model_try_acquire(breaker: &VMutex<BreakerModel>, vt: &Vt) -> Option<ModelAdmission> {
    let mut g = breaker.lock(vt);
    match g.state {
        BState::HalfOpen if g.probe_in_flight => None, // probe out: fast reject
        // Cooldown is taken as elapsed by construction: Open admits
        // the probe immediately, as `try_acquire` does after the wait.
        BState::Open | BState::HalfOpen => {
            g.state = BState::HalfOpen;
            g.probe_in_flight = true;
            g.probe_serial += 1;
            Some(ModelAdmission {
                probe: true,
                serial: g.probe_serial,
            })
        }
        BState::Closed => Some(ModelAdmission::default()),
    }
}

fn model_record_success(
    breaker: &VMutex<BreakerModel>,
    vt: &Vt,
    admission: ModelAdmission,
    variant: Variant,
) {
    let mut g = breaker.lock(vt);
    if g.state != BState::HalfOpen {
        return;
    }
    let is_current_probe =
        admission.probe && g.probe_in_flight && admission.serial == g.probe_serial;
    match variant {
        // Pre-fix `record_success`: the first success observed while
        // half-open closes the circuit, whoever produced it.
        Variant::PreFix => {
            if !is_current_probe {
                g.unattributed_close = true;
            }
            g.probe_in_flight = false;
            g.state = BState::Closed;
        }
        // Fixed `record_outcome`: only the current probe's own success
        // may close.
        Variant::Fixed => {
            if is_current_probe {
                g.probe_in_flight = false;
                g.state = BState::Closed;
            }
        }
    }
}

/// `relay::breaker` half-open probe attribution.
///
/// A straggler — a request admitted before the circuit tripped —
/// reports success concurrently with a fresh half-open probe. The
/// invariant: the circuit may only close on the current probe's own
/// outcome, and must end Closed (the probe does succeed).
pub fn breaker_probe(variant: Variant) -> impl Fn(&mut Sim) {
    move |sim: &mut Sim| {
        let breaker = Arc::new(VMutex::new(BreakerModel {
            state: BState::Open, // tripped; cooldown elapsed
            probe_in_flight: false,
            probe_serial: 0,
            unattributed_close: false,
        }));
        {
            // Straggler: was admitted while the circuit was still
            // closed, finishes (successfully) only now.
            let breaker = Arc::clone(&breaker);
            sim.thread(move |vt| {
                model_record_success(&breaker, vt, ModelAdmission::default(), variant);
            });
        }
        {
            // Prober: acquires (becoming the probe) and reports its own
            // success.
            let breaker = Arc::clone(&breaker);
            sim.thread(move |vt| {
                if let Some(admission) = model_try_acquire(&breaker, vt) {
                    model_record_success(&breaker, vt, admission, variant);
                }
            });
        }
        let breaker = Arc::clone(&breaker);
        sim.check(move || {
            let b = breaker.peek();
            if b.unattributed_close {
                return Err(
                    "circuit closed by a stale outcome while the probe was deciding".to_string(),
                );
            }
            if b.state != BState::Closed {
                return Err(format!(
                    "probe succeeded but the circuit ended {:?}",
                    b.state
                ));
            }
            Ok(())
        });
    }
}

/// `RelayStats`-style counters: workers RMW-increment shared fields
/// while a reader takes two field-wise snapshots.
///
/// Invariants: no increment is ever lost (the counter-inference rule
/// the sync pass applies to `fetch_add` fields), and per-field
/// monotonicity across snapshots — the property `RelayStatsSnapshot`
/// consumers rely on even though a field-wise snapshot is not a
/// consistent cut.
pub fn stats_snapshot(variant: Variant) -> impl Fn(&mut Sim) {
    move |sim: &mut Sim| {
        let forwarded = Arc::new(VCell::new(0u64));
        let shed = Arc::new(VCell::new(0u64));
        for _ in 0..2 {
            let forwarded = Arc::clone(&forwarded);
            let shed = Arc::clone(&shed);
            sim.thread(move |vt| match variant {
                Variant::PreFix => {
                    // Load/store counters: the shape the sync pass
                    // rejects even for statistics.
                    let f = forwarded.read(vt);
                    forwarded.write(vt, f + 1);
                    let s = shed.read(vt);
                    shed.write(vt, s + 1);
                }
                Variant::Fixed => {
                    forwarded.rmw(vt, |v| v + 1);
                    shed.rmw(vt, |v| v + 1);
                }
            });
        }
        let observed: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        {
            let forwarded = Arc::clone(&forwarded);
            let shed = Arc::clone(&shed);
            let observed = Arc::clone(&observed);
            sim.thread(move |vt| {
                let mut snaps = Vec::with_capacity(2);
                for _ in 0..2 {
                    let f = forwarded.read(vt);
                    let s = shed.read(vt);
                    snaps.push((f, s));
                }
                observed
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(snaps);
            });
        }
        let forwarded = Arc::clone(&forwarded);
        let shed = Arc::clone(&shed);
        let observed = Arc::clone(&observed);
        sim.check(move || {
            let (f, s) = (forwarded.peek(), shed.peek());
            if f != 2 || s != 2 {
                return Err(format!(
                    "lost counter increments: forwarded={f} shed={s} (expected 2/2)"
                ));
            }
            let snaps = observed.lock().unwrap_or_else(PoisonError::into_inner);
            for pair in snaps.windows(2) {
                let (f1, s1) = pair[0];
                let (f2, s2) = pair[1];
                if f2 < f1 || s2 < s1 {
                    return Err(format!(
                        "snapshot went backwards: ({f1},{s1}) then ({f2},{s2})"
                    ));
                }
            }
            Ok(())
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{explore, Config};

    #[test]
    fn admission_prefix_race_is_found_and_replays() {
        let report = explore(Config::exhaustive(), admission_ewma(Variant::PreFix));
        let v = report.violation.expect("pre-fix EWMA must lose an update");
        assert!(v.message.contains("lost update"), "{}", v.message);
        let replay = explore(
            Config::replay(v.schedule.clone()),
            admission_ewma(Variant::PreFix),
        );
        assert!(
            replay.violation.is_some(),
            "recorded schedule must reproduce the race"
        );
    }

    #[test]
    fn admission_fixed_is_clean_exhaustively() {
        let report = explore(Config::exhaustive(), admission_ewma(Variant::Fixed));
        assert!(report.violation.is_none(), "{}", report.summary());
        assert!(report.complete, "{}", report.summary());
    }

    #[test]
    fn breaker_prefix_stale_close_is_found() {
        let report = explore(Config::exhaustive(), breaker_probe(Variant::PreFix));
        let v = report
            .violation
            .expect("pre-fix breaker must close on stale evidence");
        assert!(v.message.contains("stale outcome"), "{}", v.message);
    }

    #[test]
    fn breaker_fixed_is_clean_exhaustively() {
        let report = explore(Config::exhaustive(), breaker_probe(Variant::Fixed));
        assert!(report.violation.is_none(), "{}", report.summary());
        assert!(report.complete, "{}", report.summary());
    }

    #[test]
    fn stats_prefix_lost_increment_is_found() {
        let report = explore(Config::exhaustive(), stats_snapshot(Variant::PreFix));
        let v = report
            .violation
            .expect("load/store counters must lose increments");
        assert!(v.message.contains("lost counter"), "{}", v.message);
    }

    #[test]
    fn stats_fixed_is_clean_exhaustively() {
        let report = explore(
            Config::exhaustive_bounded(2),
            stats_snapshot(Variant::Fixed),
        );
        assert!(report.violation.is_none(), "{}", report.summary());
        assert!(report.complete, "{}", report.summary());
    }

    #[test]
    fn seeded_random_finds_the_admission_race() {
        let report = explore(Config::random(42, 256), admission_ewma(Variant::PreFix));
        let v = report
            .violation
            .expect("random exploration finds the 2-thread race fast");
        assert_eq!(v.seed, Some(42));
    }
}
