//! The scheduler core: virtual threads, decision points, exploration.
//!
//! One *schedule* runs the model's virtual threads on real OS threads,
//! but strictly one at a time: every visible action ([`VCell`] access,
//! [`VMutex`] acquisition, explicit [`Vt::step`]) is a decision point
//! where the yielding thread picks — under the active strategy — which
//! enabled thread runs next. The picked sequence is recorded as
//! `(choice, width)` pairs, which makes exploration stateless: any
//! schedule can be replayed exactly by forcing its recorded choices.
//!
//! Strategies:
//! * [`Strategy::Exhaustive`] — depth-first over all decision
//!   sequences, bounded by a preemption budget (schedules that switch
//!   away from a runnable thread more than `max_preemptions` times are
//!   pruned, the classic bounded-preemption reduction).
//! * [`Strategy::Random`] — seeded SplitMix64 choices; the seed is in
//!   the report so any found violation replays byte-for-byte.
//! * [`Strategy::Replay`] — force a previously recorded schedule.
//!
//! Deadlocks (no runnable thread while some are blocked) and model
//! panics are reported as violations with the reproducing schedule.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Panic payload used to unwind virtual threads when a run aborts.
const ABORT: &str = "interleave-abort";

/// SplitMix64: tiny, seedable, good enough to decorrelate schedules.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One recorded scheduling decision: which of the `width` enabled
/// choices was taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    pub choice: usize,
    pub width: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

struct RunState {
    current: Option<usize>,
    status: Vec<Status>,
    trace: Vec<Decision>,
    forced: Vec<usize>,
    rng: Option<SplitMix64>,
    preemptions: usize,
    max_preemptions: Option<usize>,
    steps: usize,
    max_steps: usize,
    failure: Option<String>,
    done: bool,
}

struct Inner {
    state: Mutex<RunState>,
    cv: Condvar,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, RunState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Picks the next thread to run and records the decision. Sets `done`
/// when every thread finished, `failure` on deadlock.
fn pick_next(st: &mut RunState, prev: Option<usize>) {
    let enabled: Vec<usize> = st
        .status
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == Status::Runnable)
        .map(|(i, _)| i)
        .collect();
    if enabled.is_empty() {
        if st.status.iter().all(|s| *s == Status::Finished) {
            st.done = true;
        } else {
            let blocked: Vec<usize> = st
                .status
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::Blocked)
                .map(|(i, _)| i)
                .collect();
            st.failure = Some(format!(
                "deadlock: threads {blocked:?} blocked with nothing runnable"
            ));
        }
        st.current = None;
        return;
    }
    // Bounded preemption: once the budget is spent, a still-runnable
    // thread keeps running (forced switches — blocks, finishes — are
    // always allowed).
    let bound_hit = st
        .max_preemptions
        .is_some_and(|bound| st.preemptions >= bound);
    let choices: Vec<usize> = match prev {
        Some(p) if bound_hit && st.status[p] == Status::Runnable => vec![p],
        _ => enabled,
    };
    let idx = if st.trace.len() < st.forced.len() {
        st.forced[st.trace.len()].min(choices.len() - 1)
    } else if let Some(rng) = st.rng.as_mut() {
        (rng.next_u64() % choices.len() as u64) as usize
    } else {
        0
    };
    st.trace.push(Decision {
        choice: idx,
        width: choices.len(),
    });
    let next = choices[idx];
    if let Some(p) = prev {
        if next != p && st.status[p] == Status::Runnable {
            st.preemptions += 1;
        }
    }
    st.current = Some(next);
}

/// Handle a virtual thread uses to interact with the scheduler. Every
/// instrumented operation routes through [`Vt::step`].
pub struct Vt {
    id: usize,
    inner: Arc<Inner>,
}

impl Vt {
    /// Blocks until the scheduler hands this thread the turn; unwinds
    /// when the run was aborted.
    fn wait_for_turn(&self) {
        let mut st = self.inner.lock();
        loop {
            if st.failure.is_some() || st.done {
                drop(st);
                std::panic::panic_any(ABORT);
            }
            if st.current == Some(self.id) {
                return;
            }
            st = self
                .inner
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A decision point: yields control and lets the strategy pick the
    /// next thread (possibly this one again).
    pub fn step(&self) {
        let mut st = self.inner.lock();
        if st.failure.is_some() || st.done {
            drop(st);
            std::panic::panic_any(ABORT);
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.failure = Some(format!(
                "step budget {} exceeded: model does not terminate under this schedule",
                st.max_steps
            ));
            self.inner.cv.notify_all();
            drop(st);
            std::panic::panic_any(ABORT);
        }
        pick_next(&mut st, Some(self.id));
        self.inner.cv.notify_all();
        drop(st);
        self.wait_for_turn();
    }

    /// Aborts the run with a violation observed mid-schedule.
    pub fn fail(&self, message: impl Into<String>) -> ! {
        let mut st = self.inner.lock();
        if st.failure.is_none() {
            st.failure = Some(message.into());
        }
        self.inner.cv.notify_all();
        drop(st);
        std::panic::panic_any(ABORT)
    }

    fn finish(&self) {
        let mut st = self.inner.lock();
        st.status[self.id] = Status::Finished;
        pick_next(&mut st, None);
        self.inner.cv.notify_all();
    }

    /// Marks this thread blocked and yields without standing in the
    /// enabled set; returns once rescheduled (after an unblock).
    fn block_and_yield(&self) {
        let mut st = self.inner.lock();
        st.status[self.id] = Status::Blocked;
        pick_next(&mut st, Some(self.id));
        self.inner.cv.notify_all();
        drop(st);
        self.wait_for_turn();
    }

    fn make_runnable(&self, id: usize) {
        let mut st = self.inner.lock();
        if st.status[id] == Status::Blocked {
            st.status[id] = Status::Runnable;
        }
    }
}

/// Shared scalar accessed at decision points — the model stand-in for
/// an atomic. `read`/`write` are separate steps (the racy shape);
/// `rmw`/`compare_exchange` are single steps (the atomic shape).
pub struct VCell<T> {
    data: Mutex<T>,
}

impl<T: Copy> VCell<T> {
    pub fn new(value: T) -> Self {
        VCell {
            data: Mutex::new(value),
        }
    }

    fn slot(&self) -> MutexGuard<'_, T> {
        self.data.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn read(&self, vt: &Vt) -> T {
        vt.step();
        *self.slot()
    }

    pub fn write(&self, vt: &Vt, value: T) {
        vt.step();
        *self.slot() = value;
    }

    /// Atomic read-modify-write: one decision point, no window.
    pub fn rmw(&self, vt: &Vt, f: impl FnOnce(T) -> T) -> T {
        vt.step();
        let mut slot = self.slot();
        let old = *slot;
        *slot = f(old);
        old
    }

    /// Reads the value outside any schedule, for end-of-run invariants.
    pub fn peek(&self) -> T {
        *self.slot()
    }
}

impl<T: Copy + PartialEq> VCell<T> {
    /// Atomic compare-exchange: one decision point.
    ///
    /// # Errors
    ///
    /// Returns the observed value when it differs from `current`.
    pub fn compare_exchange(&self, vt: &Vt, current: T, new: T) -> Result<T, T> {
        vt.step();
        let mut slot = self.slot();
        let observed = *slot;
        if observed == current {
            *slot = new;
            Ok(observed)
        } else {
            Err(observed)
        }
    }
}

struct LockMeta {
    held: bool,
    waiters: Vec<usize>,
}

/// Mutex stand-in whose acquisition is a decision point and whose
/// contention participates in deadlock detection.
pub struct VMutex<T> {
    meta: Mutex<LockMeta>,
    data: Mutex<T>,
}

impl<T> VMutex<T> {
    pub fn new(value: T) -> Self {
        VMutex {
            meta: Mutex::new(LockMeta {
                held: false,
                waiters: Vec::new(),
            }),
            data: Mutex::new(value),
        }
    }

    fn meta(&self) -> MutexGuard<'_, LockMeta> {
        self.meta.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the virtual lock, blocking (virtually) while held.
    pub fn lock<'a>(&'a self, vt: &'a Vt) -> VGuard<'a, T> {
        vt.step();
        loop {
            {
                let mut meta = self.meta();
                if !meta.held {
                    meta.held = true;
                    drop(meta);
                    let data = self.data.lock().unwrap_or_else(PoisonError::into_inner);
                    return VGuard {
                        vt,
                        mutex: self,
                        data: Some(data),
                    };
                }
                meta.waiters.push(vt.id);
            }
            vt.block_and_yield();
        }
    }

    /// Reads the value outside any schedule, for end-of-run invariants.
    pub fn peek(&self) -> T
    where
        T: Clone,
    {
        self.data
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// RAII guard for a [`VMutex`]; releasing wakes (virtually) every
/// waiter.
pub struct VGuard<'a, T> {
    vt: &'a Vt,
    mutex: &'a VMutex<T>,
    data: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for VGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data.as_ref().expect("guard holds data until drop")
    }
}

impl<T> std::ops::DerefMut for VGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data.as_mut().expect("guard holds data until drop")
    }
}

impl<T> Drop for VGuard<'_, T> {
    fn drop(&mut self) {
        self.data.take();
        let waiters = {
            let mut meta = self.mutex.meta();
            meta.held = false;
            std::mem::take(&mut meta.waiters)
        };
        for waiter in waiters {
            self.vt.make_runnable(waiter);
        }
    }
}

type ThreadFn = Box<dyn FnOnce(&Vt) + Send + 'static>;
type CheckFn = Box<dyn FnOnce() -> Result<(), String> + 'static>;

/// One schedule's worth of model state: virtual threads plus
/// end-of-run invariants. A fresh `Sim` is built per schedule so every
/// exploration starts from identical state.
#[derive(Default)]
pub struct Sim {
    threads: Vec<ThreadFn>,
    checks: Vec<CheckFn>,
}

impl Sim {
    /// Registers a virtual thread.
    pub fn thread(&mut self, f: impl FnOnce(&Vt) + Send + 'static) {
        self.threads.push(Box::new(f));
    }

    /// Registers an invariant evaluated after all threads finish.
    pub fn check(&mut self, f: impl FnOnce() -> Result<(), String> + 'static) {
        self.checks.push(Box::new(f));
    }
}

/// How to walk the schedule space.
pub enum Strategy {
    /// Depth-first over every decision sequence within the preemption
    /// budget.
    Exhaustive {
        max_preemptions: Option<usize>,
        max_schedules: usize,
    },
    /// Seeded random walks.
    Random { seed: u64, schedules: usize },
    /// Replay one recorded schedule.
    Replay { schedule: Vec<usize> },
}

/// Exploration configuration.
pub struct Config {
    pub strategy: Strategy,
    /// Per-schedule step ceiling (runaway/livelock guard).
    pub max_steps: usize,
}

impl Config {
    /// Exhaustive with the default preemption budget of 3.
    pub fn exhaustive() -> Self {
        Config {
            strategy: Strategy::Exhaustive {
                max_preemptions: Some(3),
                max_schedules: 200_000,
            },
            max_steps: 10_000,
        }
    }

    /// Exhaustive with an explicit preemption budget.
    pub fn exhaustive_bounded(max_preemptions: usize) -> Self {
        Config {
            strategy: Strategy::Exhaustive {
                max_preemptions: Some(max_preemptions),
                max_schedules: 200_000,
            },
            max_steps: 10_000,
        }
    }

    /// Seeded random exploration.
    pub fn random(seed: u64, schedules: usize) -> Self {
        Config {
            strategy: Strategy::Random { seed, schedules },
            max_steps: 10_000,
        }
    }

    /// Replay of one recorded schedule.
    pub fn replay(schedule: Vec<usize>) -> Self {
        Config {
            strategy: Strategy::Replay { schedule },
            max_steps: 10_000,
        }
    }
}

/// A violation with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub message: String,
    /// Decision choices; feed to [`Config::replay`].
    pub schedule: Vec<usize>,
    /// Master seed when found by random exploration.
    pub seed: Option<u64>,
}

/// The outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// True when exhaustive exploration exhausted the (bounded) space.
    pub complete: bool,
    pub violation: Option<Violation>,
}

impl Report {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        match &self.violation {
            Some(v) => {
                let seed = v.seed.map(|s| format!(" seed={s}")).unwrap_or_default();
                format!(
                    "VIOLATION after {} schedule(s){seed}: {} [replay schedule: {:?}]",
                    self.schedules, v.message, v.schedule
                )
            }
            None => format!(
                "clean: {} schedule(s), space {}",
                self.schedules,
                if self.complete {
                    "exhausted"
                } else {
                    "sampled"
                }
            ),
        }
    }
}

struct RunOutcome {
    trace: Vec<Decision>,
    failure: Option<String>,
}

fn run_once(
    threads: Vec<ThreadFn>,
    forced: &[usize],
    rng: Option<SplitMix64>,
    max_preemptions: Option<usize>,
    max_steps: usize,
) -> RunOutcome {
    let n = threads.len();
    let inner = Arc::new(Inner {
        state: Mutex::new(RunState {
            current: None,
            status: vec![Status::Runnable; n],
            trace: Vec::new(),
            forced: forced.to_vec(),
            rng,
            preemptions: 0,
            max_preemptions,
            steps: 0,
            max_steps,
            failure: None,
            done: n == 0,
        }),
        cv: Condvar::new(),
    });
    let mut handles = Vec::with_capacity(n);
    for (id, f) in threads.into_iter().enumerate() {
        let inner = Arc::clone(&inner);
        handles.push(std::thread::spawn(move || {
            let vt = Vt { id, inner };
            let result = catch_unwind(AssertUnwindSafe(|| {
                vt.wait_for_turn();
                f(&vt);
            }));
            match result {
                Ok(()) => vt.finish(),
                Err(payload) => {
                    if payload.downcast_ref::<&str>() != Some(&ABORT) {
                        let msg = payload
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "non-string panic".to_string());
                        let mut st = vt.inner.lock();
                        if st.failure.is_none() {
                            st.failure = Some(format!("model thread {id} panicked: {msg}"));
                        }
                        vt.inner.cv.notify_all();
                    }
                }
            }
        }));
    }
    {
        let mut st = inner.lock();
        if !st.done {
            pick_next(&mut st, None);
        }
        inner.cv.notify_all();
    }
    {
        let mut st = inner.lock();
        while !st.done && st.failure.is_none() {
            st = inner.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        // Let any still-parked virtual thread observe the end and unwind.
        st.done = true;
    }
    inner.cv.notify_all();
    for handle in handles {
        let _ = handle.join();
    }
    let st = inner.lock();
    RunOutcome {
        trace: st.trace.clone(),
        failure: st.failure.clone(),
    }
}

fn run_scenario(
    scenario: &impl Fn(&mut Sim),
    forced: &[usize],
    rng: Option<SplitMix64>,
    max_preemptions: Option<usize>,
    max_steps: usize,
) -> (Vec<Decision>, Option<String>) {
    let mut sim = Sim::default();
    scenario(&mut sim);
    let checks = std::mem::take(&mut sim.checks);
    let outcome = run_once(sim.threads, forced, rng, max_preemptions, max_steps);
    if outcome.failure.is_some() {
        return (outcome.trace, outcome.failure);
    }
    for check in checks {
        if let Err(message) = check() {
            return (outcome.trace, Some(message));
        }
    }
    (outcome.trace, None)
}

fn choices(trace: &[Decision]) -> Vec<usize> {
    trace.iter().map(|d| d.choice).collect()
}

/// Explores `scenario` under `config` and reports what was found.
///
/// The scenario closure is invoked once per schedule to build fresh
/// model state, so schedules never contaminate each other.
pub fn explore(config: Config, scenario: impl Fn(&mut Sim)) -> Report {
    match config.strategy {
        Strategy::Exhaustive {
            max_preemptions,
            max_schedules,
        } => {
            let mut forced: Vec<usize> = Vec::new();
            let mut schedules = 0usize;
            loop {
                let (trace, failure) =
                    run_scenario(&scenario, &forced, None, max_preemptions, config.max_steps);
                schedules += 1;
                if let Some(message) = failure {
                    return Report {
                        schedules,
                        complete: false,
                        violation: Some(Violation {
                            message,
                            schedule: choices(&trace),
                            seed: None,
                        }),
                    };
                }
                // Backtrack: advance the deepest decision with an
                // unexplored sibling.
                let mut next = trace;
                let advanced = loop {
                    match next.pop() {
                        None => break false,
                        Some(d) if d.choice + 1 < d.width => {
                            next.push(Decision {
                                choice: d.choice + 1,
                                width: d.width,
                            });
                            break true;
                        }
                        Some(_) => {}
                    }
                };
                if !advanced {
                    return Report {
                        schedules,
                        complete: true,
                        violation: None,
                    };
                }
                if schedules >= max_schedules {
                    return Report {
                        schedules,
                        complete: false,
                        violation: None,
                    };
                }
                forced = choices(&next);
            }
        }
        Strategy::Random { seed, schedules } => {
            for i in 0..schedules {
                let rng = SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let (trace, failure) =
                    run_scenario(&scenario, &[], Some(rng), None, config.max_steps);
                if let Some(message) = failure {
                    return Report {
                        schedules: i + 1,
                        complete: false,
                        violation: Some(Violation {
                            message,
                            schedule: choices(&trace),
                            seed: Some(seed),
                        }),
                    };
                }
            }
            Report {
                schedules,
                complete: false,
                violation: None,
            }
        }
        Strategy::Replay { schedule } => {
            let (trace, failure) = run_scenario(&scenario, &schedule, None, None, config.max_steps);
            Report {
                schedules: 1,
                complete: false,
                violation: failure.map(|message| Violation {
                    message,
                    schedule: choices(&trace),
                    seed: None,
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads blind-increment a shared cell: the classic lost
    /// update the checker must find.
    fn blind_increment(sim: &mut Sim) {
        let cell = Arc::new(VCell::new(0u64));
        for _ in 0..2 {
            let cell = Arc::clone(&cell);
            sim.thread(move |vt| {
                let cur = cell.read(vt);
                cell.write(vt, cur + 1);
            });
        }
        let cell = Arc::clone(&cell);
        sim.check(move || {
            let v = cell.peek();
            if v == 2 {
                Ok(())
            } else {
                Err(format!("lost update: {v} != 2"))
            }
        });
    }

    #[test]
    fn exhaustive_small_case_completes() {
        let report = explore(Config::exhaustive(), |sim| {
            let cell = Arc::new(VCell::new(0u64));
            for _ in 0..2 {
                let cell = Arc::clone(&cell);
                sim.thread(move |vt| {
                    cell.rmw(vt, |v| v + 1);
                });
            }
            let cell = Arc::clone(&cell);
            sim.check(move || (cell.peek() == 2).then_some(()).ok_or("lost rmw".into()));
        });
        assert!(report.complete, "{}", report.summary());
        assert!(report.violation.is_none(), "{}", report.summary());
        assert!(report.schedules > 1, "{}", report.summary());
    }

    #[test]
    fn exhaustive_catches_injected_race() {
        let report = explore(Config::exhaustive(), blind_increment);
        let v = report.violation.expect("lost update must be found");
        assert!(v.message.contains("lost update"), "{}", v.message);
        // The recorded schedule replays to the same violation.
        let replay = explore(Config::replay(v.schedule.clone()), blind_increment);
        let rv = replay.violation.expect("replay must reproduce");
        assert_eq!(rv.message, v.message);
    }

    #[test]
    fn random_exploration_is_deterministic_per_seed() {
        let a = explore(Config::random(0xDEAD_BEEF, 64), blind_increment);
        let b = explore(Config::random(0xDEAD_BEEF, 64), blind_increment);
        let va = a.violation.expect("seeded run finds the race");
        let vb = b.violation.expect("same seed, same discovery");
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(va.schedule, vb.schedule);
        assert_eq!(va.seed, Some(0xDEAD_BEEF));
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        let report = explore(Config::exhaustive(), |sim| {
            let a = Arc::new(VMutex::new(0u32));
            let b = Arc::new(VMutex::new(0u32));
            {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                sim.thread(move |vt| {
                    let mut ga = a.lock(vt);
                    let mut gb = b.lock(vt);
                    *ga += 1;
                    *gb += 1;
                });
            }
            {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                sim.thread(move |vt| {
                    let mut gb = b.lock(vt);
                    let mut ga = a.lock(vt);
                    *gb += 1;
                    *ga += 1;
                });
            }
        });
        let v = report
            .violation
            .expect("lock-order inversion must deadlock");
        assert!(v.message.contains("deadlock"), "{}", v.message);
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        // Critical sections under a VMutex never interleave: the
        // read-modify-write through the guard is race-free by
        // construction, exhaustively.
        let report = explore(Config::exhaustive(), |sim| {
            let total = Arc::new(VMutex::new(0u64));
            for _ in 0..3 {
                let total = Arc::clone(&total);
                sim.thread(move |vt| {
                    let mut guard = total.lock(vt);
                    let v = *guard;
                    vt.step();
                    *guard = v + 1;
                });
            }
            let total = Arc::clone(&total);
            sim.check(move || {
                let v = total.peek();
                (v == 3)
                    .then_some(())
                    .ok_or(format!("mutex failed to exclude: {v} != 3"))
            });
        });
        assert!(report.violation.is_none(), "{}", report.summary());
        assert!(report.complete, "{}", report.summary());
    }

    #[test]
    fn model_panic_surfaces_as_violation() {
        let report = explore(Config::exhaustive(), |sim| {
            sim.thread(|vt| {
                vt.step();
                panic!("boom");
            });
        });
        let v = report.violation.expect("panic must be reported");
        assert!(v.message.contains("panicked"), "{}", v.message);
        assert!(v.message.contains("boom"), "{}", v.message);
    }
}
