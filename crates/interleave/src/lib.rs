//! Deterministic interleaving checker for the workspace's concurrent
//! structures.
//!
//! The `lint` crate's sync pass finds *shapes* that are wrong (blind
//! load/store windows, Relaxed on synchronization edges, lock
//! bypasses); this crate proves the *fixes* right, in the spirit of
//! loom/shuttle but dependency-free: model replicas of the real
//! structures run on a cooperative scheduler that explores thread
//! interleavings — exhaustively within a preemption bound, or randomly
//! from a printed seed — and checks exact invariants after every
//! schedule.
//!
//! Three guarantees the harness gives:
//! 1. **Determinism** — a schedule is a recorded sequence of decisions
//!    `(choice, width)`; replaying the sequence reproduces the run
//!    exactly. Violations ship with their schedule and (for random
//!    exploration) the master seed.
//! 2. **Exhaustiveness** — small models are explored completely within
//!    the preemption bound; [`Report::complete`] says so.
//! 3. **Sensitivity** — each model has a pre-fix variant reproducing
//!    the bug this PR fixed; CI asserts the checker still catches it,
//!    so a regressed checker cannot silently pass the fixed code.
//!
//! See `crates/lint/src/sync.rs` for the static side and DESIGN.md
//! ("Memory-model analysis") for how the two fit together.

pub mod models;
pub mod sched;

pub use sched::{
    explore, Config, Decision, Report, Sim, Strategy, VCell, VGuard, VMutex, Violation, Vt,
};
