//! Panic-path pass: forbids `unwrap()`, `expect(...)`, panicking macros
//! and slice/array indexing in non-test code of the crates that sit on a
//! network-reachable or endorsement path.
//!
//! Rationale (paper §4–5): system contracts and the relay must *fail
//! closed* — a panic mid-endorsement aborts the peer's chaincode
//! container, a panic in the relay drops every multiplexed request on the
//! connection. Code that has a genuine invariant (or is demo fixture
//! wiring) opts out per-site with `// lint:allow(panic: "why")`; the
//! justification string is mandatory.

use crate::diag::Diagnostic;
use crate::lexer::{lex, strip_test_items, Lexed, Tok, Token};
use crate::workspace::SourceFile;

const PASS: &str = "panic";

/// Macros that panic unconditionally when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the pass over one file, appending findings.
pub fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let lexed = lex(&file.text);
    let tokens = strip_test_items(&lexed.tokens);
    check_tokens(&tokens, &lexed, &file.rel_path, out);
}

fn check_tokens(tokens: &[Token], lexed: &Lexed, path: &str, out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        let finding = match &t.tok {
            Tok::Ident(name) if name == "unwrap" || name == "expect" => {
                let after_dot = i > 0 && tokens[i - 1].tok.is_punct(".");
                let called = tokens.get(i + 1).is_some_and(|n| n.tok.is_punct("("));
                if after_dot && called {
                    Some(format!(
                        "`.{name}()` can panic; return a typed error instead"
                    ))
                } else {
                    None
                }
            }
            Tok::Ident(name) if PANIC_MACROS.contains(&name.as_str()) => {
                if tokens.get(i + 1).is_some_and(|n| n.tok.is_punct("!")) {
                    Some(format!("`{name}!` aborts instead of failing closed"))
                } else {
                    None
                }
            }
            Tok::Punct("[") if is_index_expr(tokens, i) => {
                if full_range_index(tokens, i) {
                    None // `[..]` can never be out of bounds
                } else {
                    Some(
                        "slice/array index can panic; use `get`, `split_at` checks or iterators"
                            .to_owned(),
                    )
                }
            }
            _ => None,
        };
        let Some(message) = finding else { continue };
        match lexed.allowed(PASS, t.line) {
            Some(allow)
                if allow
                    .justification
                    .as_deref()
                    .is_some_and(|j| !j.is_empty()) => {}
            Some(_) => out.push(Diagnostic::new(
                PASS,
                path,
                t.line,
                "lint:allow(panic) requires a justification string: \
                 `// lint:allow(panic: \"why this cannot fire\")`",
            )),
            None => out.push(Diagnostic::new(PASS, path, t.line, message)),
        }
    }
}

/// True when the `[` at `i` indexes an expression (previous token is an
/// identifier, `)`, or `]`) rather than opening an array/slice literal,
/// attribute, or pattern.
fn is_index_expr(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) else {
        return false;
    };
    match &prev.tok {
        Tok::Ident(name) => !is_keyword(name),
        Tok::Punct(")") | Tok::Punct("]") => true,
        _ => false,
    }
}

/// True when the bracket group starting at `i` is exactly `[..]`.
fn full_range_index(tokens: &[Token], i: usize) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.tok.is_punct(".."))
        && tokens.get(i + 2).is_some_and(|t| t.tok.is_punct("]"))
}

fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "let"
            | "mut"
            | "in"
            | "return"
            | "if"
            | "else"
            | "match"
            | "ref"
            | "move"
            | "as"
            | "break"
            | "continue"
            | "where"
            | "impl"
            | "dyn"
            | "for"
            | "while"
            | "loop"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile {
            rel_path: "mem.rs".into(),
            crate_name: "mem".into(),
            text: src.into(),
        };
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let d = run("fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); }");
        assert_eq!(d.len(), 4, "{d:?}");
    }

    #[test]
    fn ignores_unwrap_or_family() {
        let d = run("fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.unwrap_or_default(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn flags_indexing_but_not_literals_attrs_or_full_range() {
        let src = r#"
            #[derive(Debug)]
            fn f(v: &[u8]) {
                let a = [0u8; 4];
                let b = v[0];
                let c = &v[..];
                let d = &v[..4];
                let e = g()[1];
            }
        "#;
        let d = run(src);
        assert_eq!(d.len(), 3, "{d:?}"); // v[0], v[..4], g()[1]
    }

    #[test]
    fn allow_requires_justification() {
        let justified = "fn f() { // lint:allow(panic: \"startup only\")\n a.unwrap(); }";
        assert!(run(justified).is_empty());
        let bare = "fn f() { // lint:allow(panic)\n a.unwrap(); }";
        let d = run(bare);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("justification"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            fn keep() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { x.unwrap(); y[0]; panic!(); }
            }
        "#;
        assert!(run(src).is_empty());
    }
}
