//! Workspace discovery and source loading.
//!
//! The analyzer walks `crates/*/src/**.rs` under the workspace root. Test
//! directories (`tests/`, `benches/`, `examples/`) and the lint crate's
//! own fixtures are never part of the analyzed tree; in-file test items
//! are stripped at the token level by [`crate::lexer::strip_test_items`].

use std::path::{Path, PathBuf};

/// A loaded source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (`crates/relay/src/service.rs`).
    pub rel_path: String,
    /// The crate directory name (`relay`, `crypto`, ...).
    pub crate_name: String,
    /// Full file text.
    pub text: String,
}

/// Finds the workspace root: the nearest ancestor of `start` containing a
/// `Cargo.toml` with a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Loads every `src/**/*.rs` of the given crates (by crate directory name).
pub fn load_crates(root: &Path, crates: &[&str]) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for name in crates {
        let src = root.join("crates").join(name).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk(&src, &mut files)?;
        files.sort();
        for path in files {
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                rel_path: rel,
                crate_name: (*name).to_owned(),
                text,
            });
        }
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
