//! Lock-order pass: builds an inter-procedural lock graph and fails on
//! cycles.
//!
//! Model:
//! * A *lock* is a struct field whose type mentions `Mutex<` or
//!   `RwLock<`, identified type-wide as `Struct::field` (instances are
//!   not distinguished — the analysis is conservative).
//! * An *acquisition* is `.lock()`, `.read()` or `.write()` whose
//!   receiver ends in a known lock field. `let g = ...lock();` guards
//!   live until `drop(g)` or the end of their block; temporary guards
//!   live to the end of the statement (or to the `{` of the block they
//!   head, matching temporary-drop semantics in `if` conditions).
//! * While a guard is held, every further acquisition adds an ordering
//!   edge, and every call adds edges to all locks the callee acquires
//!   transitively (computed by fixpoint over a name-resolved call graph).
//! * A cycle in the resulting graph is a potential deadlock; the
//!   diagnostic lists one file:line witness per edge.
//!
//! `// lint:allow(lock-order)` on an acquisition or call line suppresses
//! the edges created at that line.

use crate::diag::Diagnostic;
use crate::lexer::{lex, strip_test_items, Lexed, Tok, Token};
use crate::workspace::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

const PASS: &str = "lock-order";

/// One ordering edge witness.
#[derive(Debug, Clone)]
struct Witness {
    file: String,
    line: u32,
    note: String,
}

#[derive(Debug, Default)]
struct FnInfo {
    /// Locks acquired directly in this function body.
    direct: BTreeSet<String>,
    /// (held, acquired) edges observed directly, with witnesses.
    edges: Vec<(String, String, Witness)>,
    /// Calls made while holding locks: (held set, callee candidates, witness).
    held_calls: Vec<(Vec<String>, Vec<String>, Witness)>,
    /// Callee candidate names for the transitive-acquire fixpoint.
    calls: Vec<Vec<String>>,
}

/// Runs the pass over the whole file set at once (it is inter-procedural).
pub fn check(files: &[SourceFile], out: &mut Vec<Diagnostic>) {
    // Phase 1: lock fields per struct.
    let mut lexed_files: Vec<(Lexed, Vec<Token>)> = Vec::new();
    for f in files {
        let lexed = lex(&f.text);
        let tokens = strip_test_items(&lexed.tokens);
        lexed_files.push((lexed, tokens));
    }
    let mut field_owners: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (_, tokens) in &lexed_files {
        collect_lock_fields(tokens, &mut field_owners);
    }
    if field_owners.is_empty() {
        return;
    }

    // Phase 2: per-function acquisition sequences and calls.
    let mut fns: BTreeMap<String, FnInfo> = BTreeMap::new();
    for (i, f) in files.iter().enumerate() {
        let (lexed, tokens) = &lexed_files[i];
        collect_functions(tokens, lexed, &f.rel_path, &field_owners, &mut fns);
    }

    // Phase 3: transitive acquire sets by fixpoint.
    let resolver = Resolver::new(&fns);
    let mut trans: BTreeMap<String, BTreeSet<String>> = fns
        .iter()
        .map(|(name, info)| (name.clone(), info.direct.clone()))
        .collect();
    loop {
        let mut changed = false;
        let names: Vec<String> = trans.keys().cloned().collect();
        for name in &names {
            let mut add = BTreeSet::new();
            for candidates in &fns[name].calls {
                if let Some(callee) = resolver.resolve(candidates) {
                    if callee != *name {
                        add.extend(trans[&callee].iter().cloned());
                    }
                }
            }
            let set = trans.get_mut(name).expect("seeded above");
            let before = set.len();
            set.extend(add);
            changed |= set.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Phase 4: assemble the global edge set.
    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    for info in fns.values() {
        for (held, acq, w) in &info.edges {
            edges
                .entry((held.clone(), acq.clone()))
                .or_insert_with(|| w.clone());
        }
        for (held, candidates, w) in &info.held_calls {
            let Some(callee) = resolver.resolve(candidates) else {
                continue;
            };
            for acq in &trans[&callee] {
                for h in held {
                    edges
                        .entry((h.clone(), acq.clone()))
                        .or_insert_with(|| Witness {
                            file: w.file.clone(),
                            line: w.line,
                            note: format!("{} (via call to `{callee}`)", w.note),
                        });
                }
            }
        }
    }

    // Phase 5: cycle detection over the lock graph.
    report_cycles(&edges, out);
}

/// Resolves callee candidate names against the collected function set.
struct Resolver {
    known: BTreeSet<String>,
    /// method name -> qualified names having that method.
    by_method: BTreeMap<String, Vec<String>>,
}

impl Resolver {
    fn new(fns: &BTreeMap<String, FnInfo>) -> Self {
        let mut by_method: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for name in fns.keys() {
            let method = name.rsplit("::").next().unwrap_or(name).to_owned();
            by_method.entry(method).or_default().push(name.clone());
        }
        Resolver {
            known: fns.keys().cloned().collect(),
            by_method,
        }
    }

    /// Candidates are tried in order; a bare method name resolves only
    /// when unambiguous across the workspace.
    fn resolve(&self, candidates: &[String]) -> Option<String> {
        for c in candidates {
            if self.known.contains(c) {
                return Some(c.clone());
            }
        }
        for c in candidates {
            if let Some(owners) = self.by_method.get(c.as_str()) {
                if owners.len() == 1 {
                    return Some(owners[0].clone());
                }
            }
        }
        None
    }
}

/// Scans `struct Name { ... }` bodies for Mutex/RwLock fields.
fn collect_lock_fields(tokens: &[Token], out: &mut BTreeMap<String, BTreeSet<String>>) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok.is_ident("struct") {
            let Some(name) = tokens.get(i + 1).and_then(|t| t.tok.ident()) else {
                i += 1;
                continue;
            };
            let name = name.to_owned();
            // Find the body `{` (skip tuple/unit structs).
            let mut j = i + 2;
            while j < tokens.len()
                && !tokens[j].tok.is_punct("{")
                && !tokens[j].tok.is_punct(";")
                && !tokens[j].tok.is_punct("(")
            {
                j += 1;
            }
            if j >= tokens.len() || !tokens[j].tok.is_punct("{") {
                i = j + 1;
                continue;
            }
            // Fields: `ident :` at depth 1 inside the body.
            let mut depth = 0;
            let mut field: Option<String> = None;
            let mut field_is_lock = false;
            while j < tokens.len() {
                match &tokens[j].tok {
                    Tok::Punct("{") => depth += 1,
                    Tok::Punct("}") => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Punct(",") if depth == 1 => {
                        if let (Some(f), true) = (field.take(), field_is_lock) {
                            out.entry(f).or_default().insert(name.clone());
                        }
                        field = None;
                        field_is_lock = false;
                    }
                    Tok::Punct(":") if depth == 1 => {
                        // The ident just before the colon is the field name
                        // (path colons `::` are a distinct token).
                        if let Some(prev) = tokens.get(j - 1).and_then(|t| t.tok.ident()) {
                            field = Some(prev.to_owned());
                            field_is_lock = false;
                        }
                    }
                    Tok::Ident(id) if field.is_some() && (id == "Mutex" || id == "RwLock") => {
                        field_is_lock = true;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let (Some(f), true) = (field.take(), field_is_lock) {
                out.entry(f).or_default().insert(name.clone());
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// An active guard while scanning a function body.
struct Guard {
    lock: String,
    binding: Option<String>,
    /// Brace depth at which the guard scope ends (guard dies when depth
    /// drops below this).
    depth: i32,
    /// Temporary guards die at the next `;` (or block `{`) at `depth`.
    temporary: bool,
    line: u32,
}

/// Extracts impl blocks + free fns and analyzes each body.
fn collect_functions(
    tokens: &[Token],
    lexed: &Lexed,
    path: &str,
    fields: &BTreeMap<String, BTreeSet<String>>,
    out: &mut BTreeMap<String, FnInfo>,
) {
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].tok.ident() {
            Some("impl") => {
                let (self_ty, body_start) = parse_impl_header(tokens, i);
                let Some(body_start) = body_start else {
                    i += 1;
                    continue;
                };
                let body_end = match_brace(tokens, body_start);
                // Functions at depth 1 of the impl body.
                let mut j = body_start + 1;
                let mut depth = 1;
                while j < body_end {
                    match &tokens[j].tok {
                        Tok::Punct("{") => depth += 1,
                        Tok::Punct("}") => depth -= 1,
                        Tok::Ident(kw) if kw == "fn" && depth == 1 => {
                            if let Some((name, fstart, fend)) = fn_span(tokens, j) {
                                let qual = match &self_ty {
                                    Some(t) => format!("{t}::{name}"),
                                    None => name.clone(),
                                };
                                let info = analyze_body(
                                    &tokens[fstart..fend],
                                    lexed,
                                    path,
                                    self_ty.as_deref(),
                                    fields,
                                );
                                merge_fn(out, qual, info);
                                // Skip the whole balanced body: depth is
                                // unchanged across it.
                                j = fend;
                                continue;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = body_end;
            }
            Some("fn") => {
                if let Some((name, fstart, fend)) = fn_span(tokens, i) {
                    let info = analyze_body(&tokens[fstart..fend], lexed, path, None, fields);
                    merge_fn(out, name, info);
                    i = fend;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
}

fn merge_fn(out: &mut BTreeMap<String, FnInfo>, name: String, info: FnInfo) {
    let entry = out.entry(name).or_default();
    entry.direct.extend(info.direct);
    entry.edges.extend(info.edges);
    entry.held_calls.extend(info.held_calls);
    entry.calls.extend(info.calls);
}

/// Parses `impl<...> Type` / `impl<...> Trait for Type`, returning the
/// self type name and the index of the body `{`.
fn parse_impl_header(tokens: &[Token], i: usize) -> (Option<String>, Option<usize>) {
    let mut j = i + 1;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct("<") => {
                // Skip a balanced generic group (`>>` closes two).
                let mut angle = 1i32;
                j += 1;
                while j < tokens.len() && angle > 0 {
                    match &tokens[j].tok {
                        Tok::Punct("<") | Tok::Punct("<<") => angle += 1,
                        Tok::Punct(">") => angle -= 1,
                        Tok::Punct(">>") => angle -= 2,
                        Tok::Punct("{") | Tok::Punct(";") => break,
                        _ => {}
                    }
                    j += 1;
                }
                continue;
            }
            Tok::Punct("{") => {
                let ty = if saw_for { after_for } else { last_ident };
                return (ty, Some(j));
            }
            Tok::Punct(";") => return (None, None),
            Tok::Ident(kw) if kw == "for" => saw_for = true,
            Tok::Ident(kw) if kw == "where" => {
                // Type already seen; scan on to `{`.
                let ty = if saw_for {
                    after_for.clone()
                } else {
                    last_ident.clone()
                };
                while j < tokens.len() && !tokens[j].tok.is_punct("{") {
                    if tokens[j].tok.is_punct(";") {
                        return (None, None);
                    }
                    j += 1;
                }
                return (ty, (j < tokens.len()).then_some(j));
            }
            Tok::Ident(id) => {
                if saw_for {
                    after_for = Some(id.clone());
                    // keep updating: path segments — last one wins
                } else {
                    last_ident = Some(id.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (None, None)
}

/// From the `fn` keyword at `i`, returns (name, body_start, body_end_excl).
fn fn_span(tokens: &[Token], i: usize) -> Option<(String, usize, usize)> {
    let name = tokens.get(i + 1)?.tok.ident()?.to_owned();
    let mut j = i + 2;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct(";") => return None, // trait method signature
            Tok::Punct("{") => {
                let end = match_brace(tokens, j);
                return Some((name, j, end));
            }
            _ => j += 1,
        }
    }
    None
}

/// Index just past the brace group opening at `open`.
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0;
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct("{") => depth += 1,
            Tok::Punct("}") => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Scans one function body for acquisitions, guard lifetimes and calls.
fn analyze_body(
    body: &[Token],
    lexed: &Lexed,
    path: &str,
    self_ty: Option<&str>,
    fields: &BTreeMap<String, BTreeSet<String>>,
) -> FnInfo {
    let mut info = FnInfo::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    let mut i = 0;
    while i < body.len() {
        match &body[i].tok {
            Tok::Punct("{") => {
                depth += 1;
                // Condition-position temporaries die at the block brace.
                guards.retain(|g| !(g.temporary && g.depth == depth - 1));
            }
            Tok::Punct("}") => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Punct(";") => {
                guards.retain(|g| !(g.temporary && g.depth == depth));
            }
            Tok::Ident(kw)
                if kw == "drop"
                    && body.get(i + 1).is_some_and(|t| t.tok.is_punct("("))
                    && body.get(i + 3).is_some_and(|t| t.tok.is_punct(")")) =>
            {
                if let Some(name) = body.get(i + 2).and_then(|t| t.tok.ident()) {
                    guards.retain(|g| g.binding.as_deref() != Some(name));
                }
            }
            Tok::Ident(method)
                if matches!(method.as_str(), "lock" | "read" | "write")
                    && body.get(i + 1).is_some_and(|t| t.tok.is_punct("("))
                    && i > 0
                    && body[i - 1].tok.is_punct(".") =>
            {
                if let Some(lock) = resolve_lock(body, i, self_ty, fields) {
                    let line = body[i].line;
                    if lexed.allowed(PASS, line).is_none() {
                        for g in &guards {
                            info.edges.push((
                                g.lock.clone(),
                                lock.clone(),
                                Witness {
                                    file: path.to_owned(),
                                    line,
                                    note: format!(
                                        "`{}` acquired (line {line}) while `{}` held since line {}",
                                        lock, g.lock, g.line
                                    ),
                                },
                            ));
                        }
                        info.direct.insert(lock.clone());
                    }
                    let (binding, temporary) = guard_binding(body, i);
                    guards.push(Guard {
                        lock,
                        binding,
                        depth,
                        temporary,
                        line,
                    });
                }
            }
            Tok::Ident(name)
                if body.get(i + 1).is_some_and(|t| t.tok.is_punct("("))
                    && !is_expr_keyword(name)
                    && !receiver_is_guard(body, i, &guards) =>
            {
                let candidates = call_candidates(body, i, self_ty);
                if !candidates.is_empty() {
                    let line = body[i].line;
                    if !guards.is_empty() && lexed.allowed(PASS, line).is_none() {
                        let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                        info.held_calls.push((
                            held.clone(),
                            candidates.clone(),
                            Witness {
                                file: path.to_owned(),
                                line,
                                note: format!(
                                    "call to `{name}` at line {line} while `{}` held",
                                    held.join("`, `")
                                ),
                            },
                        ));
                    }
                    info.calls.push(candidates);
                }
            }
            _ => {}
        }
        i += 1;
    }
    info
}

/// Resolves the receiver of `.lock()/.read()/.write()` at `i` to a lock id.
///
/// The receiver's final field must be a known Mutex/RwLock field. `self.x`
/// binds to the impl type when it declares `x`; otherwise the owning
/// struct is used when unique, `?::x` when ambiguous.
fn resolve_lock(
    body: &[Token],
    i: usize,
    self_ty: Option<&str>,
    fields: &BTreeMap<String, BTreeSet<String>>,
) -> Option<String> {
    // Walk back over `.` to collect the receiver chain idents.
    let mut chain: Vec<&str> = Vec::new();
    let mut j = i - 1; // at the `.`
    loop {
        if !body.get(j)?.tok.is_punct(".") {
            break;
        }
        let Some(prev) = j.checked_sub(1) else { break };
        match &body[prev].tok {
            Tok::Ident(id) => {
                chain.push(id);
                match prev.checked_sub(1) {
                    Some(p) => j = p,
                    None => break,
                }
            }
            _ => break,
        }
    }
    let field = *chain.first()?;
    let owners = fields.get(field)?;
    let ty = match (chain.last(), self_ty) {
        (Some(&"self"), Some(t)) if owners.contains(t) => t.to_owned(),
        _ if owners.len() == 1 => owners.iter().next()?.clone(),
        (Some(&"self"), Some(t)) => t.to_owned(),
        _ => "?".to_owned(),
    };
    Some(format!("{ty}::{field}"))
}

/// Chained calls after `.lock()` that still yield the guard (std Mutex
/// poison handling), so `let g = m.lock().unwrap();` stays a bound guard.
const GUARD_PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Classifies the acquisition at `i` as let-bound (guard lives in the
/// block) or temporary (dies at statement end). Bound only when the
/// `let NAME = ...;` initializer ends with the lock call, optionally
/// chained through poison-handling calls that return the guard.
fn guard_binding(body: &[Token], i: usize) -> (Option<String>, bool) {
    // The call is `method ( )` — check what follows the closing paren.
    let mut after = i + 2; // index of `)` when the call has no args
    if !body.get(after).is_some_and(|t| t.tok.is_punct(")")) {
        return (None, true);
    }
    // Skip `.unwrap()` / `.expect(..)` / `.unwrap_or_else(..)` chains.
    while body.get(after + 1).is_some_and(|t| t.tok.is_punct(".")) {
        let is_preserving = body
            .get(after + 2)
            .and_then(|t| t.tok.ident())
            .is_some_and(|m| GUARD_PRESERVING.contains(&m));
        if !is_preserving || !body.get(after + 3).is_some_and(|t| t.tok.is_punct("(")) {
            return (None, true);
        }
        // Jump past the balanced argument list.
        let mut depth = 0;
        let mut k = after + 3;
        while k < body.len() {
            match &body[k].tok {
                Tok::Punct("(") => depth += 1,
                Tok::Punct(")") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        after = k;
    }
    if !body.get(after + 1).is_some_and(|t| t.tok.is_punct(";")) {
        return (None, true);
    }
    // Scan back to statement start for `let [mut] NAME =`.
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &body[j].tok {
            Tok::Punct(";") | Tok::Punct("{") | Tok::Punct("}") => break,
            Tok::Ident(kw) if kw == "let" => {
                let mut k = j + 1;
                if body.get(k).is_some_and(|t| t.tok.is_ident("mut")) {
                    k += 1;
                }
                let name = body.get(k).and_then(|t| t.tok.ident()).map(str::to_owned);
                return (name, false);
            }
            _ => {}
        }
    }
    (None, true)
}

/// True when the method call at `i` is invoked on (data behind) an active
/// guard binding: `guard.field.clear()` is a call on the locked value,
/// not on a lock-owning struct, so name-based resolution must not fire.
fn receiver_is_guard(body: &[Token], i: usize, guards: &[Guard]) -> bool {
    if i == 0 || !body[i - 1].tok.is_punct(".") {
        return false;
    }
    // Walk back over `ident . ident . ... .` to the chain root.
    let mut j = i - 1;
    let mut root: Option<&str> = None;
    loop {
        if !body[j].tok.is_punct(".") {
            break;
        }
        let Some(prev) = j.checked_sub(1) else { break };
        match &body[prev].tok {
            Tok::Ident(id) => {
                root = Some(id);
                match prev.checked_sub(1) {
                    Some(p) => j = p,
                    None => break,
                }
            }
            _ => break,
        }
    }
    let Some(root) = root else { return false };
    guards.iter().any(|g| g.binding.as_deref() == Some(root))
}

/// Callee candidates for the call at `i`, most-specific first.
fn call_candidates(body: &[Token], i: usize, self_ty: Option<&str>) -> Vec<String> {
    let name = match body[i].tok.ident() {
        Some(n) => n.to_owned(),
        None => return Vec::new(),
    };
    let mut out = Vec::new();
    if i >= 2 && body[i - 1].tok.is_punct(".") {
        // Method call: `self.name(...)` / `expr.name(...)`.
        if body[i - 2].tok.is_ident("self") {
            if let Some(t) = self_ty {
                out.push(format!("{t}::{name}"));
            }
        }
        out.push(name);
    } else if i >= 2 && body[i - 1].tok.is_punct("::") {
        if let Some(seg) = body[i - 2].tok.ident() {
            let seg = if seg == "Self" {
                self_ty.unwrap_or(seg)
            } else {
                seg
            };
            out.push(format!("{seg}::{name}"));
        }
        out.push(name);
    } else {
        out.push(name);
    }
    out
}

fn is_expr_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "let"
            | "fn"
            | "move"
            | "else"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "Box"
            | "Vec"
            | "Arc"
            | "Rc"
            | "String"
    )
}

/// DFS cycle detection; one diagnostic per distinct cycle found.
fn report_cycles(edges: &BTreeMap<(String, String), Witness>, out: &mut Vec<Diagnostic>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    // Self-cycles first: same type-level lock re-acquired while held.
    for ((from, to), w) in edges {
        if from == to {
            out.push(Diagnostic::new(
                PASS,
                w.file.clone(),
                w.line,
                format!("lock `{from}` re-acquired while already held: {}", w.note),
            ));
        }
    }
    // Proper cycles via DFS with a path stack.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in &nodes {
        if done.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        while let Some((node, next_idx)) = stack.last_mut() {
            let succs = adj.get(*node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *next_idx < succs.len() {
                let succ = succs[*next_idx];
                *next_idx += 1;
                if succ == *node {
                    continue; // self-cycles already reported
                }
                if on_path.contains(succ) {
                    // Found a cycle: path from succ..end + back-edge.
                    let pos = path.iter().position(|n| *n == succ).unwrap_or(0);
                    let cycle: Vec<String> = path[pos..].iter().map(|s| (*s).to_owned()).collect();
                    let mut canon = cycle.clone();
                    canon.sort();
                    if reported.insert(canon) {
                        report_one_cycle(&cycle, edges, out);
                    }
                } else if !done.contains(succ) {
                    stack.push((succ, 0));
                    path.push(succ);
                    on_path.insert(succ);
                }
            } else {
                done.insert(node);
                on_path.remove(*node);
                stack.pop();
                path.pop();
            }
        }
    }
}

fn report_one_cycle(
    cycle: &[String],
    edges: &BTreeMap<(String, String), Witness>,
    out: &mut Vec<Diagnostic>,
) {
    let mut lines = Vec::new();
    let mut anchor: Option<(&str, u32)> = None;
    for k in 0..cycle.len() {
        let from = &cycle[k];
        let to = &cycle[(k + 1) % cycle.len()];
        if let Some(w) = edges.get(&(from.clone(), to.clone())) {
            lines.push(format!(
                "  {from} -> {to}: {}:{} ({})",
                w.file, w.line, w.note
            ));
            if anchor.is_none() {
                anchor = Some((w.file.as_str(), w.line));
            }
        }
    }
    let (file, line) = anchor.unwrap_or(("", 0));
    out.push(Diagnostic::new(
        PASS,
        file,
        line,
        format!(
            "lock-order cycle {} -> {} (potential deadlock):\n{}",
            cycle.join(" -> "),
            cycle[0],
            lines.join("\n")
        ),
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(srcs: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, t)| SourceFile {
                rel_path: (*p).to_owned(),
                crate_name: "mem".into(),
                text: (*t).to_owned(),
            })
            .collect();
        let mut out = Vec::new();
        check(&files, &mut out);
        out
    }

    const TWO_LOCKS: &str = r#"
        pub struct A { x: Mutex<u32>, y: Mutex<u32> }
        impl A {
            fn ab(&self) {
                let gx = self.x.lock();
                let gy = self.y.lock();
                drop(gy);
                drop(gx);
            }
        }
    "#;

    #[test]
    fn consistent_order_is_clean() {
        let d = run(&[("a.rs", TWO_LOCKS)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn direct_cycle_detected() {
        let src = r#"
            pub struct A { x: Mutex<u32>, y: Mutex<u32> }
            impl A {
                fn ab(&self) { let g = self.x.lock(); self.y.lock().clone(); }
                fn ba(&self) { let g = self.y.lock(); self.x.lock().clone(); }
            }
        "#;
        let d = run(&[("a.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("cycle"), "{}", d[0].message);
        assert!(d[0].message.contains("A::x"));
        assert!(d[0].message.contains("A::y"));
    }

    #[test]
    fn interprocedural_cycle_detected() {
        let src = r#"
            pub struct A { x: Mutex<u32> }
            pub struct B { y: Mutex<u32> }
            impl A {
                fn outer(&self, b: &B) { let g = self.x.lock(); b.locked(); }
            }
            impl B {
                fn locked(&self) { let g = self.y.lock(); }
                fn other(&self, a: &A) { let g = self.y.lock(); a.grab(); }
            }
            impl A {
                fn grab(&self) { let g = self.x.lock(); }
            }
        "#;
        let d = run(&[("a.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("A::x"));
        assert!(d[0].message.contains("B::y"));
    }

    #[test]
    fn drop_releases_guard() {
        let src = r#"
            pub struct A { x: Mutex<u32>, y: Mutex<u32> }
            impl A {
                fn ab(&self) { let g = self.x.lock(); drop(g); let h = self.y.lock(); }
                fn ba(&self) { let g = self.y.lock(); drop(g); let h = self.x.lock(); }
            }
        "#;
        let d = run(&[("a.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = r#"
            pub struct A { x: Mutex<u32>, y: Mutex<u32> }
            impl A {
                fn ab(&self) { self.x.lock().clone(); self.y.lock().clone(); }
                fn ba(&self) { self.y.lock().clone(); self.x.lock().clone(); }
            }
        "#;
        let d = run(&[("a.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn self_deadlock_reported() {
        let src = r#"
            pub struct A { x: Mutex<u32> }
            impl A {
                fn re(&self) { let g = self.x.lock(); let h = self.x.lock(); }
            }
        "#;
        let d = run(&[("a.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("re-acquired"));
    }

    #[test]
    fn allow_suppresses_edge() {
        let src = r#"
            pub struct A { x: Mutex<u32>, y: Mutex<u32> }
            impl A {
                fn ab(&self) { let g = self.x.lock(); self.y.lock().clone(); }
                fn ba(&self) {
                    let g = self.y.lock();
                    // lint:allow(lock-order: "x is only tried, never blocked on")
                    self.x.lock().clone();
                }
            }
        "#;
        let d = run(&[("a.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }
}
