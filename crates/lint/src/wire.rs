//! Wire-compat pass: append-only evolution of the relay message schema.
//!
//! The encode bodies in `crates/wire/src/messages.rs` are the source of
//! truth for field tags: every `impl Message for X` writes fields as
//! `w.<method>(<tag>, <value>)`. This pass snapshots those (struct, tag,
//! method, descriptor) rows into `crates/lint/schema/wire.snapshot` and
//! fails when a snapshotted row disappears — which is what renumbering,
//! retyping or removing a tag looks like — or when one struct uses the
//! same tag with two different wire methods (tag reuse). Adding new rows
//! is allowed: that is the append-only guarantee PR 2's old-client test
//! relies on (proto3 zero-elision keeps legacy frames byte-identical).
//!
//! `cargo run -p lint -- bless` regenerates the snapshot after an
//! intentional, reviewed schema change.

use crate::diag::Diagnostic;
use crate::lexer::{lex, Tok, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

const PASS: &str = "wire";

/// One encoded field: `w.method(tag, descriptor)` inside a struct's
/// `encode`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FieldRow {
    pub strukt: String,
    pub tag: u64,
    pub method: String,
    /// Normalized second-argument text (field path or literal); struct
    /// field renames therefore require a bless, tag changes always fail.
    pub descriptor: String,
}

impl fmt::Display for FieldRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.strukt, self.tag, self.method, self.descriptor
        )
    }
}

/// Extracts every `impl Message for X { fn encode { w.m(tag, d); ... } }`
/// row from the messages source text.
pub fn extract_rows(messages_src: &str) -> Vec<FieldRow> {
    let lexed = lex(messages_src);
    let tokens = &lexed.tokens;
    let mut rows = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // `impl Message for X {`
        if tokens[i].tok.is_ident("impl")
            && tokens.get(i + 1).is_some_and(|t| t.tok.is_ident("Message"))
            && tokens.get(i + 2).is_some_and(|t| t.tok.is_ident("for"))
        {
            let Some(name) = tokens.get(i + 3).and_then(|t| t.tok.ident()) else {
                i += 1;
                continue;
            };
            let strukt = name.to_owned();
            let Some(open) = (i + 4..tokens.len()).find(|&j| tokens[j].tok.is_punct("{")) else {
                break;
            };
            let end = match_brace(tokens, open);
            extract_encode_rows(&tokens[open..end], &strukt, &mut rows);
            i = end;
        } else {
            i += 1;
        }
    }
    rows
}

fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0;
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct("{") => depth += 1,
            Tok::Punct("}") => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Finds the `fn encode` body within an impl block and parses its
/// `<writer>.<method>(<tag>, <rest>)` statements.
fn extract_encode_rows(impl_body: &[Token], strukt: &str, rows: &mut Vec<FieldRow>) {
    let Some(fn_idx) = impl_body
        .windows(2)
        .position(|w| w[0].tok.is_ident("fn") && w[1].tok.is_ident("encode"))
    else {
        return;
    };
    let Some(open) = (fn_idx..impl_body.len()).find(|&j| impl_body[j].tok.is_punct("{")) else {
        return;
    };
    let end = match_brace(impl_body, open);
    let body = &impl_body[open..end];
    let mut i = 0;
    while i + 4 < body.len() {
        // ident `.` method `(` Num ...
        let shape = body[i].tok.ident().is_some()
            && body[i + 1].tok.is_punct(".")
            && body[i + 2].tok.ident().is_some()
            && body[i + 3].tok.is_punct("(");
        if shape {
            if let Tok::Num(tag) = &body[i + 4].tok {
                if let Ok(tag) = tag.replace('_', "").parse::<u64>() {
                    let method = body[i + 2].tok.ident().unwrap_or_default().to_owned();
                    // Descriptor: tokens after the comma up to the
                    // balanced closing paren, normalized.
                    let mut depth = 1;
                    let mut j = i + 5;
                    let mut desc = String::new();
                    if body.get(j).is_some_and(|t| t.tok.is_punct(",")) {
                        j += 1;
                    }
                    while j < body.len() && depth > 0 {
                        match &body[j].tok {
                            Tok::Punct("(") => {
                                depth += 1;
                                desc.push('(');
                            }
                            Tok::Punct(")") => {
                                depth -= 1;
                                if depth > 0 {
                                    desc.push(')');
                                }
                            }
                            Tok::Punct("&") | Tok::Punct("*") => {}
                            Tok::Ident(s) if s == "self" => {}
                            Tok::Punct(".") if desc.is_empty() => {}
                            Tok::Ident(s) | Tok::Num(s) => {
                                desc.push_str(s);
                            }
                            Tok::Punct(p) => desc.push_str(p),
                            _ => {}
                        }
                        j += 1;
                    }
                    rows.push(FieldRow {
                        strukt: strukt.to_owned(),
                        tag,
                        method,
                        descriptor: desc,
                    });
                    i = j;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// Renders rows in the snapshot file format (deduplicated and sorted).
pub fn render_snapshot(rows: &[FieldRow]) -> String {
    let set: BTreeSet<String> = rows.iter().map(|r| r.to_string()).collect();
    let mut out = String::from(
        "# Wire-format field-tag snapshot (append-only schema evolution).\n\
         # One row per encoded field: <struct> <tag> <method> <descriptor>.\n\
         # Regenerate after an intentional schema change with:\n\
         #   cargo run -p lint --release -- bless\n",
    );
    for line in set {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

fn parse_snapshot(text: &str) -> Vec<FieldRow> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() >= 3 {
            if let Ok(tag) = parts[1].parse::<u64>() {
                out.push(FieldRow {
                    strukt: parts[0].to_owned(),
                    tag,
                    method: parts[2].to_owned(),
                    descriptor: parts.get(3).copied().unwrap_or("").to_owned(),
                });
            }
        }
    }
    out
}

/// Compares current encode rows against the snapshot.
pub fn check_against_snapshot(
    rows: &[FieldRow],
    snapshot_text: &str,
    messages_path: &str,
    snapshot_path: &str,
    out: &mut Vec<Diagnostic>,
) {
    let current: BTreeSet<String> = rows.iter().map(|r| r.to_string()).collect();
    let snapshot = parse_snapshot(snapshot_text);
    if snapshot.is_empty() {
        out.push(Diagnostic::new(
            PASS,
            snapshot_path,
            0,
            "wire snapshot is missing or empty; run `cargo run -p lint --release -- bless`",
        ));
        return;
    }
    // Tag reuse within a struct: one tag, two wire methods.
    let mut tag_methods: BTreeMap<(String, u64), BTreeSet<String>> = BTreeMap::new();
    for r in rows {
        tag_methods
            .entry((r.strukt.clone(), r.tag))
            .or_default()
            .insert(r.method.clone());
    }
    for ((strukt, tag), methods) in &tag_methods {
        if methods.len() > 1 {
            let list: Vec<&str> = methods.iter().map(String::as_str).collect();
            out.push(Diagnostic::new(
                PASS,
                messages_path,
                0,
                format!(
                    "`{strukt}` tag {tag} is reused with different wire methods ({}); \
                     a reader cannot distinguish the encodings",
                    list.join(", ")
                ),
            ));
        }
    }
    // Append-only: every snapshotted row must still exist verbatim.
    for row in &snapshot {
        if !current.contains(&row.to_string()) {
            let hint = rows
                .iter()
                .find(|r| r.strukt == row.strukt && r.descriptor == row.descriptor)
                .map(|r| {
                    format!(
                        " (found `{}` at tag {} via `{}` — tags are immutable once released)",
                        r.descriptor, r.tag, r.method
                    )
                })
                .unwrap_or_default();
            out.push(Diagnostic::new(
                PASS,
                messages_path,
                0,
                format!(
                    "`{}` no longer encodes tag {} as `{}({})`{hint}; wire evolution is \
                     append-only — restore the field or, for an intentional pre-release \
                     change, re-bless the snapshot",
                    row.strukt, row.tag, row.method, row.descriptor
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        impl Message for Ping {
            fn encode(&self, w: &mut Writer) {
                w.string(1, &self.id);
                w.bytes(2, &self.payload);
                w.u64(3, self.seq);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> { todo!() }
        }
    "#;

    #[test]
    fn extracts_rows() {
        let rows = extract_rows(SRC);
        assert_eq!(rows.len(), 3, "{rows:?}");
        assert_eq!(rows[0].strukt, "Ping");
        assert_eq!(rows[0].tag, 1);
        assert_eq!(rows[0].method, "string");
        assert_eq!(rows[0].descriptor, "id");
        assert_eq!(rows[2].descriptor, "seq");
    }

    #[test]
    fn clean_tree_matches_snapshot() {
        let rows = extract_rows(SRC);
        let snap = render_snapshot(&rows);
        let mut out = Vec::new();
        check_against_snapshot(&rows, &snap, "m.rs", "s", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn renumbered_tag_rejected() {
        let rows = extract_rows(SRC);
        let snap = render_snapshot(&rows);
        let renumbered = SRC.replace("w.bytes(2, &self.payload)", "w.bytes(7, &self.payload)");
        let new_rows = extract_rows(&renumbered);
        let mut out = Vec::new();
        check_against_snapshot(&new_rows, &snap, "m.rs", "s", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("tag 2"), "{}", out[0].message);
        assert!(out[0].message.contains("tag 7"), "{}", out[0].message);
    }

    #[test]
    fn removed_field_rejected_added_field_ok() {
        let rows = extract_rows(SRC);
        let snap = render_snapshot(&rows);
        let removed = SRC.replace("w.u64(3, self.seq);", "");
        let mut out = Vec::new();
        check_against_snapshot(&extract_rows(&removed), &snap, "m.rs", "s", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");

        let appended = SRC.replace(
            "w.u64(3, self.seq);",
            "w.u64(3, self.seq); w.u64(4, self.extra);",
        );
        let mut out = Vec::new();
        check_against_snapshot(&extract_rows(&appended), &snap, "m.rs", "s", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn tag_reuse_with_conflicting_methods_rejected() {
        let reused = SRC.replace(
            "w.u64(3, self.seq);",
            "w.u64(3, self.seq); w.string(3, &self.name);",
        );
        let rows = extract_rows(&reused);
        let snap = render_snapshot(&extract_rows(SRC));
        let mut out = Vec::new();
        check_against_snapshot(&rows, &snap, "m.rs", "s", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("reused"));
    }

    #[test]
    fn missing_snapshot_is_a_diagnostic() {
        let rows = extract_rows(SRC);
        let mut out = Vec::new();
        check_against_snapshot(&rows, "", "m.rs", "s", &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("bless"));
    }
}
