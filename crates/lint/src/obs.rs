//! Observability pass: fallible relay entry points must record span errors.
//!
//! Rationale (ISSUE 5): the span tree is the primary debugging artifact for
//! cross-network queries. A `pub fn` on the relay request path that returns
//! `Result<_, RelayError>` but never calls `record_err` produces spans that
//! look healthy while the query failed — worse than no span at all. Functions
//! that genuinely have nothing to record (constructors, thin delegates whose
//! callee records) opt out per-site with `// lint:allow(obs: "why")`; the
//! justification string is mandatory.
//!
//! ISSUE 10 widened the pass beyond the relay request path: the ledger's
//! durability entry points and the admission gate return `Result` types of
//! their own (`VfsError`, `LedgerError`, shed decisions), and a silent
//! failure there is *worse* than on the query path — it loses committed
//! data instead of one request. Those files are matched with
//! [`ErrorMatch::AnyResult`]: any fallible `pub fn` must record or carry a
//! justified allow.

use crate::diag::Diagnostic;
use crate::lexer::{lex, strip_test_items, Lexed, Tok, Token};
use crate::workspace::SourceFile;

const PASS: &str = "obs";

/// How the pass decides a `pub fn`'s return type is "fallible enough"
/// to demand error recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorMatch {
    /// Only `Result<_, RelayError>` (the relay request path; other
    /// `Result`s there are conversions and lookups).
    RelayError,
    /// Any `Result<_, _>` return (durability paths: every error is an
    /// incident in the making).
    AnyResult,
}

/// Files the pass inspects, each with its error-matching mode.
pub const OBS_FILES: &[(&str, ErrorMatch)] = &[
    ("crates/relay/src/service.rs", ErrorMatch::RelayError),
    ("crates/relay/src/redundancy.rs", ErrorMatch::RelayError),
    ("crates/relay/src/transport.rs", ErrorMatch::RelayError),
    ("crates/relay/src/admission.rs", ErrorMatch::AnyResult),
    ("crates/ledger/src/store.rs", ErrorMatch::AnyResult),
    ("crates/ledger/src/storage/file.rs", ErrorMatch::AnyResult),
    ("crates/ledger/src/storage/wal.rs", ErrorMatch::AnyResult),
];

/// Runs the pass over one file, appending findings. Files outside
/// [`OBS_FILES`] are skipped.
pub fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let Some((_, mode)) = OBS_FILES
        .iter()
        .find(|(path, _)| *path == file.rel_path.as_str())
    else {
        return;
    };
    let lexed = lex(&file.text);
    let tokens = strip_test_items(&lexed.tokens);
    check_tokens(&tokens, &lexed, &file.rel_path, *mode, out);
}

fn check_tokens(
    tokens: &[Token],
    lexed: &Lexed,
    path: &str,
    mode: ErrorMatch,
    out: &mut Vec<Diagnostic>,
) {
    let mut i = 0;
    while i < tokens.len() {
        let Some((fn_idx, next)) = pub_fn_at(tokens, i) else {
            i += 1;
            continue;
        };
        i = next;
        let fn_line = tokens[fn_idx].line;
        let name = tokens
            .get(fn_idx + 1)
            .and_then(|t| t.tok.ident())
            .unwrap_or("?")
            .to_owned();
        // Locate the body's opening brace: the first `{` at paren depth 0
        // after the fn keyword (return types and where clauses carry no
        // braces in this codebase).
        let Some(open) = body_open(tokens, fn_idx) else {
            continue;
        };
        if !returns_matching_result(&tokens[fn_idx..open], mode) {
            i = open;
            continue;
        }
        let close = matching_brace(tokens, open);
        let records = tokens[open..close]
            .iter()
            .any(|t| t.tok.is_ident("record_err"));
        if records {
            i = close;
            continue;
        }
        // Allow directives may sit on the line above the signature, on the
        // signature itself, or on the first line of the body.
        let first_body_line = tokens
            .get(open)
            .map(|t| t.line.saturating_add(1))
            .unwrap_or(fn_line);
        match allow_in_range(lexed, fn_line.saturating_sub(1), first_body_line) {
            AllowState::Justified => {}
            AllowState::Unjustified => out.push(Diagnostic::new(
                PASS,
                path,
                fn_line,
                "lint:allow(obs) requires a justification string: \
                 `// lint:allow(obs: \"why no span error is recorded\")`",
            )),
            AllowState::Absent => out.push(Diagnostic::new(
                PASS,
                path,
                fn_line,
                format!(
                    "`pub fn {name}` returns a fallible Result but never \
                     records an error status on its span (`record_err`)"
                ),
            )),
        }
        i = close;
    }
}

enum AllowState {
    Justified,
    Unjustified,
    Absent,
}

fn allow_in_range(lexed: &Lexed, lo: u32, hi: u32) -> AllowState {
    let mut found = false;
    for allow in &lexed.allows {
        if allow.pass != PASS || allow.line < lo || allow.line > hi {
            continue;
        }
        found = true;
        if allow
            .justification
            .as_deref()
            .is_some_and(|j| !j.is_empty())
        {
            return AllowState::Justified;
        }
    }
    if found {
        AllowState::Unjustified
    } else {
        AllowState::Absent
    }
}

/// When `i` starts a `pub fn` (or `pub(crate) fn` etc.), returns the index
/// of the `fn` keyword and the index to resume scanning from.
fn pub_fn_at(tokens: &[Token], i: usize) -> Option<(usize, usize)> {
    if !tokens[i].tok.is_ident("pub") {
        return None;
    }
    let mut j = i + 1;
    // Skip a visibility qualifier `(crate)` / `(super)` / `(in path)`.
    if tokens.get(j).is_some_and(|t| t.tok.is_punct("(")) {
        let mut depth = 0;
        while j < tokens.len() {
            match &tokens[j].tok {
                Tok::Punct("(") => depth += 1,
                Tok::Punct(")") => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    // Skip qualifiers between visibility and `fn`.
    while tokens.get(j).is_some_and(|t| {
        ["const", "unsafe", "async", "extern"]
            .iter()
            .any(|q| t.tok.is_ident(q))
    }) {
        j += 1;
    }
    if tokens.get(j).is_some_and(|t| t.tok.is_ident("fn")) {
        Some((j, j + 1))
    } else {
        None
    }
}

/// Index of the body's opening `{`: first `{` at paren/bracket depth 0
/// after the fn keyword at `fn_idx`. `None` for brace-less items (trait
/// method declarations).
fn body_open(tokens: &[Token], fn_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = fn_idx;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct("(") | Tok::Punct("[") => depth += 1,
            Tok::Punct(")") | Tok::Punct("]") => depth -= 1,
            Tok::Punct("{") if depth == 0 => return Some(j),
            Tok::Punct(";") if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index just past the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0;
    let mut j = open;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct("{") => depth += 1,
            Tok::Punct("}") => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// True when the signature slice (fn keyword up to the body brace) declares
/// a return type the file's [`ErrorMatch`] mode considers fallible.
fn returns_matching_result(sig: &[Token], mode: ErrorMatch) -> bool {
    let Some(arrow) = sig.iter().position(|t| t.tok.is_punct("->")) else {
        return false;
    };
    let ret = &sig[arrow..];
    if !ret.iter().any(|t| t.tok.is_ident("Result")) {
        return false;
    }
    match mode {
        ErrorMatch::RelayError => ret.iter().any(|t| t.tok.is_ident("RelayError")),
        ErrorMatch::AnyResult => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile {
            rel_path: "crates/relay/src/service.rs".into(),
            crate_name: "relay".into(),
            text: src.into(),
        };
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out
    }

    #[test]
    fn flags_fallible_pub_fn_without_record_err() {
        let src = r#"
            impl RelayService {
                pub fn relay_query(&self, q: &Q) -> Result<R, RelayError> {
                    self.inner(q)
                }
            }
        "#;
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("relay_query"));
    }

    #[test]
    fn record_err_in_body_satisfies_the_pass() {
        let src = r#"
            pub fn relay_query(&self, q: &Q) -> Result<R, RelayError> {
                let (mut span, _g) = obs_span::enter("relay.query");
                self.inner(q).record_err(&mut span)
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_with_justification_on_first_body_line() {
        let src = r#"
            pub fn relay_query(&self, q: &Q) -> Result<R, RelayError> {
                // lint:allow(obs: "delegates to a recording callee")
                self.inner(q)
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_rejected() {
        let src = r#"
            pub fn relay_query(&self, q: &Q) -> Result<R, RelayError> {
                // lint:allow(obs)
                self.inner(q)
            }
        "#;
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("justification"));
    }

    #[test]
    fn other_result_types_private_fns_and_other_files_are_exempt() {
        let src = r#"
            pub fn infallible(&self) -> u64 { 0 }
            pub fn other_error(&self) -> Result<R, WireError> { self.x() }
            fn private_fallible(&self) -> Result<R, RelayError> { self.x() }
        "#;
        assert!(run(src).is_empty());
        let elsewhere = SourceFile {
            rel_path: "crates/relay/src/retry.rs".into(),
            crate_name: "relay".into(),
            text: "pub fn f() -> Result<(), RelayError> { g() }".into(),
        };
        let mut out = Vec::new();
        check_file(&elsewhere, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn any_result_mode_flags_non_relay_error_types() {
        let file = SourceFile {
            rel_path: "crates/ledger/src/storage/wal.rs".into(),
            crate_name: "ledger".into(),
            text: r#"
                pub fn scan(&self) -> Result<WalScan, VfsError> { self.read_all() }
                pub fn infallible(&self) -> u64 { 0 }
            "#
            .into(),
        };
        let mut out = Vec::new();
        check_file(&file, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("scan"));
    }

    #[test]
    fn test_items_are_stripped() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                pub fn helper() -> Result<(), RelayError> { boom() }
            }
        "#;
        assert!(run(src).is_empty());
    }
}
