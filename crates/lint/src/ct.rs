//! Constant-time pass: in `crates/crypto`, flag `==`/`!=` on values that
//! name digest/MAC/signature material, early returns branching on
//! secret-derived booleans, and exponent-window table lookups.
//!
//! A variable-time comparison on a MAC tag or signature challenge leaks,
//! byte by byte, how much of a forgery is correct (paper §4's trust model
//! assumes relays are *untrusted*, so remote attackers get a timing
//! oracle). The blessed helper is `ct_eq` in `crypto::hmac`; its own body
//! is exempt, as are length comparisons (lengths are public).
//!
//! The table-lookup rule covers the Montgomery / fixed-base / multi-exp
//! hot paths: indexing a precomputed table by an exponent window digit
//! (`table[window]`, `tables[i][digit]`) has a cache footprint that
//! depends on the exponent. Every such site must carry a
//! `lint:allow(ct: ...)` justifying why its exponents are public.

use crate::diag::Diagnostic;
use crate::lexer::{lex, strip_test_items, Lexed, Tok, Token};
use crate::workspace::SourceFile;

const PASS: &str = "ct";

/// Identifier fragments that mark a value as secret/verification material.
const SECRET_FRAGMENTS: &[&str] = &[
    "mac",
    "tag",
    "digest",
    "sig",
    "hmac",
    "secret",
    "challenge",
    "e_prime",
];

/// Functions allowed to compare secret material non-constant-time: the
/// blessed helper itself.
const BLESSED_FNS: &[&str] = &["ct_eq"];

/// Identifier fragments that mark an index expression as derived from an
/// exponent window (the data-dependent part of a windowed exponentiation).
const WINDOW_FRAGMENTS: &[&str] = &["window", "digit"];

pub fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let lexed = lex(&file.text);
    let tokens = strip_test_items(&lexed.tokens);
    for f in functions(&tokens) {
        if BLESSED_FNS.contains(&f.name.as_str()) {
            continue;
        }
        check_function(
            &tokens[f.body_start..f.body_end],
            &lexed,
            &file.rel_path,
            out,
        );
    }
}

struct FnSpan {
    name: String,
    body_start: usize,
    body_end: usize,
}

/// Finds every `fn name ... { body }` span (including methods).
fn functions(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok.is_ident("fn") {
            let Some(name) = tokens.get(i + 1).and_then(|t| t.tok.ident()) else {
                i += 1;
                continue;
            };
            let name = name.to_owned();
            // Find the body `{`, skipping the signature (`;` = no body).
            let mut j = i + 2;
            let mut body = None;
            while j < tokens.len() {
                match &tokens[j].tok {
                    Tok::Punct(";") => break,
                    Tok::Punct("{") => {
                        body = Some(j);
                        break;
                    }
                    _ => j += 1,
                }
            }
            if let Some(start) = body {
                let mut depth = 0;
                let mut k = start;
                while k < tokens.len() {
                    match &tokens[k].tok {
                        Tok::Punct("{") => depth += 1,
                        Tok::Punct("}") => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                out.push(FnSpan {
                    name,
                    body_start: start,
                    body_end: (k + 1).min(tokens.len()),
                });
                i = start + 1; // nested fns re-found by the scan; fine
                continue;
            }
        }
        i += 1;
    }
    out
}

fn check_function(body: &[Token], lexed: &Lexed, path: &str, out: &mut Vec<Diagnostic>) {
    // Track local bools derived from secret comparisons so that
    // `let ok = tag == expected; if ok { ... }` is caught at the branch.
    let mut secret_bools: Vec<String> = Vec::new();

    for (i, t) in body.iter().enumerate() {
        match &t.tok {
            Tok::Punct(op @ ("==" | "!=")) => {
                let lhs = operand_left(body, i);
                let rhs = operand_right(body, i);
                if !is_secret_operand(&lhs) && !is_secret_operand(&rhs) {
                    continue;
                }
                if is_len_call(&lhs) && is_len_call(&rhs) {
                    continue; // lengths are public
                }
                if lexed.allowed(PASS, t.line).is_some() {
                    continue;
                }
                // Remember a derived bool: `let name = <secret> == ...;`
                if let Some(name) = binding_target(body, i) {
                    secret_bools.push(name);
                }
                out.push(Diagnostic::new(
                    PASS,
                    path,
                    t.line,
                    format!(
                        "variable-time `{op}` on secret material (`{}` {op} `{}`); \
                         use `crypto::hmac::ct_eq` on canonical encodings",
                        lhs.join(""),
                        rhs.join("")
                    ),
                ));
            }
            Tok::Punct("[") if i > 0 => {
                // `table[window]` / `tables[i][digit]`: a precomputed-table
                // lookup indexed by an exponent window digit. Walk left over
                // chained `[...]` groups to find the indexed identifier.
                let Some(name) = indexed_base_ident(body, i) else {
                    continue;
                };
                if !name.to_lowercase().contains("table") {
                    continue;
                }
                let mut depth = 1;
                let mut j = i + 1;
                let mut window_indexed = false;
                while j < body.len() && depth > 0 {
                    match &body[j].tok {
                        Tok::Punct("[") => depth += 1,
                        Tok::Punct("]") => depth -= 1,
                        Tok::Ident(id) => {
                            let lower = id.to_lowercase();
                            if WINDOW_FRAGMENTS.iter().any(|frag| lower.contains(frag)) {
                                window_indexed = true;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if window_indexed && lexed.allowed(PASS, t.line).is_none() {
                    out.push(Diagnostic::new(
                        PASS,
                        path,
                        t.line,
                        format!(
                            "table lookup `{name}[...]` indexed by an exponent window digit; \
                             the access pattern leaks the exponent through the cache — \
                             justify with lint:allow(ct: ...) if the exponent is public"
                        ),
                    ));
                }
            }
            Tok::Ident(kw) if kw == "if" || kw == "return" => {
                // `if secret_ok { return ... }` / `return secret_ok;`
                let mut j = i + 1;
                if body.get(j).is_some_and(|t| t.tok.is_punct("!")) {
                    j += 1;
                }
                let Some(name) = body.get(j).and_then(|t| t.tok.ident()) else {
                    continue;
                };
                let terminated = body
                    .get(j + 1)
                    .is_some_and(|t| t.tok.is_punct("{") || t.tok.is_punct(";"));
                if terminated
                    && secret_bools.iter().any(|b| b == name)
                    && lexed.allowed(PASS, t.line).is_none()
                {
                    out.push(Diagnostic::new(
                        PASS,
                        path,
                        t.line,
                        format!(
                            "early branch on secret-derived bool `{name}`; \
                             fold the comparison into `ct_eq` and branch once on its result"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// For a `[` at `i`, finds the identifier being indexed, skipping back over
/// chained `[...]` groups so `tables[i][digit]` resolves to `tables`.
fn indexed_base_ident(body: &[Token], i: usize) -> Option<String> {
    let mut p = i;
    loop {
        let prev = p.checked_sub(1)?;
        match &body[prev].tok {
            Tok::Punct("]") => {
                let mut depth = 1;
                let mut q = prev;
                while q > 0 && depth > 0 {
                    q -= 1;
                    match &body[q].tok {
                        Tok::Punct("]") => depth += 1,
                        Tok::Punct("[") => depth -= 1,
                        _ => {}
                    }
                }
                if depth > 0 {
                    return None;
                }
                p = q;
            }
            Tok::Ident(id) => return Some(id.clone()),
            _ => return None,
        }
    }
}

/// Walks left from the operator at `i`, collecting the operand expression
/// (identifiers, field paths, balanced call/index groups).
fn operand_left(body: &[Token], i: usize) -> Vec<String> {
    let mut parts = Vec::new();
    let mut j = i;
    let mut depth = 0;
    while j > 0 {
        j -= 1;
        match &body[j].tok {
            Tok::Punct(")") | Tok::Punct("]") => depth += 1,
            Tok::Punct("(") | Tok::Punct("[") => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            Tok::Punct(".") | Tok::Punct("::") | Tok::Punct("&") | Tok::Punct("*") => {}
            Tok::Ident(kw) if depth == 0 && is_stmt_keyword(kw) => break,
            Tok::Ident(_) | Tok::Num(_) => {}
            _ => {
                if depth == 0 {
                    break;
                }
            }
        }
        parts.push(render(&body[j].tok));
    }
    parts.reverse();
    parts
}

fn is_stmt_keyword(kw: &str) -> bool {
    matches!(
        kw,
        "if" | "let" | "return" | "else" | "match" | "while" | "mut"
    )
}

/// Walks right from the operator at `i`, collecting the operand.
fn operand_right(body: &[Token], i: usize) -> Vec<String> {
    let mut parts = Vec::new();
    let mut j = i + 1;
    let mut depth = 0;
    while j < body.len() {
        match &body[j].tok {
            Tok::Punct("(") | Tok::Punct("[") => depth += 1,
            Tok::Punct(")") | Tok::Punct("]") => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            Tok::Punct(".") | Tok::Punct("::") | Tok::Punct("&") | Tok::Punct("*") => {}
            Tok::Ident(kw) if depth == 0 && is_stmt_keyword(kw) => break,
            Tok::Ident(_) | Tok::Num(_) => {}
            _ => {
                if depth == 0 {
                    break;
                }
            }
        }
        parts.push(render(&body[j].tok));
        j += 1;
    }
    parts
}

fn render(t: &Tok) -> String {
    match t {
        Tok::Ident(s) | Tok::Num(s) => s.clone(),
        Tok::Punct(p) => (*p).to_owned(),
        _ => String::new(),
    }
}

/// True when any identifier in the operand matches a secret fragment.
fn is_secret_operand(parts: &[String]) -> bool {
    parts.iter().any(|p| {
        let lower = p.to_lowercase();
        SECRET_FRAGMENTS.iter().any(|frag| {
            // `sig` must match `sig`/`signature`/`sig_bytes` but not
            // `design`: require the fragment at a word boundary.
            lower == *frag
                || lower.starts_with(&format!("{frag}_"))
                || lower.ends_with(&format!("_{frag}"))
                || lower.contains(&format!("_{frag}_"))
                || (*frag == "sig" && lower.starts_with("signature"))
                || (*frag == "hmac" && lower.contains("hmac"))
        })
    })
}

fn is_len_call(parts: &[String]) -> bool {
    parts.len() >= 3 && parts[parts.len() - 3..] == ["len".to_owned(), "(".into(), ")".into()][..]
        || parts.last().is_some_and(|p| p == ")") && parts.iter().any(|p| p == "len")
}

/// If the comparison at `i` is the RHS of `let NAME = ...`, returns NAME.
fn binding_target(body: &[Token], i: usize) -> Option<String> {
    // Scan back to the statement start and look for `let NAME =`.
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &body[j].tok {
            Tok::Punct(";") | Tok::Punct("{") | Tok::Punct("}") => return None,
            Tok::Ident(kw) if kw == "let" => {
                return body
                    .get(j + 1)
                    .and_then(|t| t.tok.ident())
                    .map(str::to_owned);
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile {
            rel_path: "mem.rs".into(),
            crate_name: "crypto".into(),
            text: src.into(),
        };
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out
    }

    #[test]
    fn flags_direct_secret_compare() {
        let d = run("fn verify(tag: &[u8], expected_tag: &[u8]) -> bool { tag == expected_tag }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("ct_eq"));
    }

    #[test]
    fn flags_challenge_compare() {
        let d = run("fn verify() { if e_prime == e { return; } }");
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn length_comparison_is_public() {
        let d = run("fn f(sig: &[u8], other_sig: &[u8]) { if sig.len() != other_sig.len() {} }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn blessed_helper_is_exempt() {
        let d = run("pub fn ct_eq(a: &[u8], b: &[u8]) -> bool { let mut diff = 0; diff == 0 }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_secret_compares_are_fine() {
        let d = run("fn f(a: usize) { if a == 0 {} if self.issuer != root.subject {} }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn early_return_on_derived_bool() {
        let src = "fn verify(tag: &[u8], want: &[u8]) { let tags_equal = tag == want; if tags_equal { return; } }";
        let d = run(src);
        assert_eq!(d.len(), 2, "{d:?}"); // the compare and the branch
        assert!(d[1].message.contains("secret-derived bool"));
    }

    #[test]
    fn allow_suppresses() {
        let src = "fn f(tag: &[u8], w: &[u8]) { // lint:allow(ct: \"public commitment\")\n let _ = tag == w; }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn flags_window_indexed_table() {
        let d = run("fn modexp(&self) { let x = self.mont_mul(&acc, &table[window]); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("exponent window"));
    }

    #[test]
    fn flags_chained_table_index_by_digit() {
        let d = run("fn multi_exp(&self) { acc = mul(&acc, &tables[i][digit]); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("tables"));
    }

    #[test]
    fn table_index_allow_suppresses() {
        let src =
            "fn modexp(&self) { // lint:allow(ct: \"public exponent\")\n let x = &table[window]; }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn loop_counter_table_index_is_fine() {
        let d = run("fn build(&self) { for i in 2..16 { table.push(mul(&table[i - 1], base)); } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn non_table_window_index_is_fine() {
        let d = run("fn f(&self) { let x = bits[window]; }");
        assert!(d.is_empty(), "{d:?}");
    }
}
