//! `lint` — the workspace's own static analyzer.
//!
//! Five passes guard invariants the compiler cannot see (ISSUE 3 and 5;
//! paper §4–5 trust model):
//!
//! | pass         | scope                              | invariant                         |
//! |--------------|------------------------------------|-----------------------------------|
//! | `lock-order` | relay, crypto, core, fabric        | no lock-graph cycles (deadlocks)  |
//! | `panic`      | relay, core, fabric, contracts     | fail closed, never panic          |
//! | `ct`         | crypto                             | constant-time secret comparisons  |
//! | `wire`       | wire message schema                | append-only field-tag evolution   |
//! | `obs`        | relay request path                 | fallible entry points record span errors |
//!
//! Run as `cargo run -p lint --release -- check`; CI fails on any
//! diagnostic. Opt-outs are per-site comments: `// lint:allow(<pass>)`,
//! with a mandatory justification for `panic`
//! (`// lint:allow(panic: "why this cannot fire")`).
//!
//! The analyzer is deliberately dependency-free: a small hand-written
//! lexer ([`lexer`]) feeds token-level passes; no rustc internals, no
//! syn. That keeps it consistent with the workspace's vendored-stub
//! policy and fast enough to run on every PR.

pub mod ct;
pub mod diag;
pub mod lexer;
pub mod locks;
pub mod obs;
pub mod panics;
pub mod wire;
pub mod workspace;

use diag::Diagnostic;
use std::path::Path;

/// Crates scanned by the lock-order pass.
pub const LOCK_ORDER_CRATES: &[&str] = &["relay", "crypto", "core", "fabric"];
/// Crates where panicking is forbidden outside tests.
pub const PANIC_CRATES: &[&str] = &["relay", "core", "fabric", "contracts"];
/// Crates scanned for non-constant-time comparisons.
pub const CT_CRATES: &[&str] = &["crypto"];
/// The wire schema source, relative to the workspace root.
pub const MESSAGES_PATH: &str = "crates/wire/src/messages.rs";
/// The blessed tag snapshot, relative to the workspace root.
pub const SNAPSHOT_PATH: &str = "crates/lint/schema/wire.snapshot";

/// Runs all four passes against the workspace at `root`.
pub fn run_all(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();

    let lock_files = workspace::load_crates(root, LOCK_ORDER_CRATES)?;
    locks::check(&lock_files, &mut out);

    for file in workspace::load_crates(root, PANIC_CRATES)? {
        panics::check_file(&file, &mut out);
    }

    for file in workspace::load_crates(root, CT_CRATES)? {
        ct::check_file(&file, &mut out);
    }

    for file in workspace::load_crates(root, &["relay"])? {
        obs::check_file(&file, &mut out);
    }

    let messages = std::fs::read_to_string(root.join(MESSAGES_PATH))?;
    let rows = wire::extract_rows(&messages);
    let snapshot = std::fs::read_to_string(root.join(SNAPSHOT_PATH)).unwrap_or_default();
    wire::check_against_snapshot(&rows, &snapshot, MESSAGES_PATH, SNAPSHOT_PATH, &mut out);

    Ok(out)
}

/// Regenerates the wire snapshot from the current schema.
pub fn bless(root: &Path) -> std::io::Result<()> {
    let messages = std::fs::read_to_string(root.join(MESSAGES_PATH))?;
    let rows = wire::extract_rows(&messages);
    std::fs::write(root.join(SNAPSHOT_PATH), wire::render_snapshot(&rows))
}
