//! `lint` — the workspace's own static analyzer.
//!
//! Six passes guard invariants the compiler cannot see (ISSUE 3, 5,
//! and 8; paper §4–5 trust model):
//!
//! | pass         | scope                              | invariant                         |
//! |--------------|------------------------------------|-----------------------------------|
//! | `lock-order` | relay, crypto, core, fabric        | no lock-graph cycles (deadlocks)  |
//! | `panic`      | relay, core, fabric, contracts, ledger, obs, bench | fail closed, never panic |
//! | `ct`         | crypto                             | constant-time secret comparisons  |
//! | `wire`       | wire message schema                | append-only field-tag evolution   |
//! | `obs`        | relay request path, admission gate, ledger durability | fallible entry points record span errors |
//! | `sync`       | relay, obs, crypto, core, fabric   | atomics: no racy RMW, no Relaxed sync edges, no lock bypass |
//!
//! Run as `cargo run -p lint --release -- check`; CI fails on any
//! diagnostic. Opt-outs are per-site comments: `// lint:allow(<pass>)`,
//! with a mandatory justification for `panic` and `sync`
//! (`// lint:allow(panic: "why this cannot fire")`). The shared-state
//! inventory behind the `sync` pass is browsable via
//! `cargo run -p lint --release -- sync-inventory`.
//!
//! The analyzer is deliberately dependency-free: a small hand-written
//! lexer ([`lexer`]) feeds token-level passes; no rustc internals, no
//! syn. That keeps it consistent with the workspace's vendored-stub
//! policy and fast enough to run on every PR.

pub mod ct;
pub mod diag;
pub mod lexer;
pub mod locks;
pub mod obs;
pub mod panics;
pub mod sync;
pub mod wire;
pub mod workspace;

use diag::Diagnostic;
use std::path::Path;

/// Crates scanned by the lock-order pass.
pub const LOCK_ORDER_CRATES: &[&str] = &["relay", "crypto", "core", "fabric"];
/// Crates where panicking is forbidden outside tests.
pub const PANIC_CRATES: &[&str] = &[
    "relay",
    "core",
    "fabric",
    "contracts",
    "ledger",
    "obs",
    "bench",
];
/// Crates scanned for non-constant-time comparisons.
pub const CT_CRATES: &[&str] = &["crypto"];
/// Crates scanned by the memory-model (`sync`) pass.
pub const SYNC_CRATES: &[&str] = &["relay", "obs", "crypto", "core", "fabric", "ledger"];
/// Crates scanned by the observability (`obs`) pass; per-file scope and
/// error matching live in [`obs::OBS_FILES`].
pub const OBS_CRATES: &[&str] = &["relay", "ledger"];
/// The wire schema source, relative to the workspace root.
pub const MESSAGES_PATH: &str = "crates/wire/src/messages.rs";
/// The blessed tag snapshot, relative to the workspace root.
pub const SNAPSHOT_PATH: &str = "crates/lint/schema/wire.snapshot";

/// Runs all six passes against the workspace at `root`.
pub fn run_all(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();

    let lock_files = workspace::load_crates(root, LOCK_ORDER_CRATES)?;
    locks::check(&lock_files, &mut out);

    for file in workspace::load_crates(root, PANIC_CRATES)? {
        panics::check_file(&file, &mut out);
    }

    for file in workspace::load_crates(root, CT_CRATES)? {
        ct::check_file(&file, &mut out);
    }

    for file in workspace::load_crates(root, OBS_CRATES)? {
        obs::check_file(&file, &mut out);
    }

    for file in workspace::load_crates(root, SYNC_CRATES)? {
        sync::check_file(&file, &mut out);
    }

    let messages = std::fs::read_to_string(root.join(MESSAGES_PATH))?;
    let rows = wire::extract_rows(&messages);
    let snapshot = std::fs::read_to_string(root.join(SNAPSHOT_PATH)).unwrap_or_default();
    wire::check_against_snapshot(&rows, &snapshot, MESSAGES_PATH, SNAPSHOT_PATH, &mut out);

    Ok(out)
}

/// Builds the shared-state inventory the `sync` pass analyzes.
pub fn sync_inventory(root: &Path) -> std::io::Result<sync::Inventory> {
    let files = workspace::load_crates(root, SYNC_CRATES)?;
    Ok(sync::inventory(&files))
}

/// Regenerates the wire snapshot from the current schema.
pub fn bless(root: &Path) -> std::io::Result<()> {
    let messages = std::fs::read_to_string(root.join(MESSAGES_PATH))?;
    let rows = wire::extract_rows(&messages);
    std::fs::write(root.join(SNAPSHOT_PATH), wire::render_snapshot(&rows))
}
