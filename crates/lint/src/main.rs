//! CLI entry point: `cargo run -p lint --release -- check|bless|sync-inventory`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("check");

    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let Some(root) = lint::workspace::find_root(&start) else {
        eprintln!("lint: no workspace root (Cargo.toml with [workspace]) above {start:?}");
        return ExitCode::from(2);
    };

    match cmd {
        "check" => match lint::run_all(&root) {
            Ok(diags) if diags.is_empty() => {
                println!("lint: clean (lock-order, panic, ct, wire, obs, sync)");
                ExitCode::SUCCESS
            }
            Ok(diags) => {
                for d in &diags {
                    eprintln!("{d}");
                }
                eprintln!("lint: {} diagnostic(s)", diags.len());
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("lint: i/o error: {e}");
                ExitCode::from(2)
            }
        },
        "bless" => match lint::bless(&root) {
            Ok(()) => {
                println!("lint: wire snapshot regenerated at {}", lint::SNAPSHOT_PATH);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("lint: bless failed: {e}");
                ExitCode::from(2)
            }
        },
        "sync-inventory" => match lint::sync_inventory(&root) {
            Ok(inv) => {
                print!("{}", inv.render());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("lint: i/o error: {e}");
                ExitCode::from(2)
            }
        },
        other => {
            eprintln!(
                "lint: unknown command `{other}` (expected `check`, `bless`, or `sync-inventory`)"
            );
            ExitCode::from(2)
        }
    }
}
