//! Memory-model pass: atomics, orderings, and lock discipline.
//!
//! The relay's hot paths went aggressively concurrent across PRs 1–7
//! (worker pools, circuit breakers, EWMA admission, lock-free stat
//! bags, epoch-invalidated caches), leaving ~190 `Ordering::Relaxed`
//! sites that no pass examined. Relaxed is correct for a *pure
//! statistic* — a counter nobody synchronizes on — and subtly wrong the
//! moment the atomic becomes a **synchronization edge**: a publication
//! flag, an epoch, a state word whose readers go on to touch data the
//! writer prepared. This pass separates the two mechanically:
//!
//! 1. **Inventory** ([`inventory`]): every atomic field/static and every
//!    `Mutex`/`RwLock`-guarded field, per crate, with declaration sites.
//! 2. **Non-atomic read-modify-write**: `x.load(); … x.store(…)` on the
//!    same atomic inside one function loses updates under contention;
//!    `fetch_*`, `compare_exchange`, or `fetch_update` is required.
//! 3. **Relaxed on synchronization edges**: an atomic that is stored in
//!    one function and loaded in another is a cross-thread edge unless
//!    inference proves it a pure statistic. Inference rules:
//!    * *counter/accumulator*: every write is a `fetch_*` /
//!      `compare_exchange` / `fetch_update` RMW and the field name does
//!      not mark it as an epoch/generation — value-consistent by
//!      construction, Relaxed allowed;
//!    * *gauge*: plain stores are allowed when every load is
//!      reporting-only (a getter-shaped function or a `fmt` impl) —
//!      last-write-wins values nobody branches on;
//!    * everything else — every `AtomicBool`, every `epoch`/
//!      `generation`/`version`-named field, every stored-and-decided
//!      value — must use Release/Acquire (or an `AcqRel` fetch-op), or
//!      carry a justified `// lint:allow(sync: "why Relaxed is safe")`.
//! 4. **Lock bypass**: `get_mut()` / `into_inner()` on a lock-guarded
//!    field sidesteps the acquisition the rest of the code relies on;
//!    each use must justify its exclusive access.
//!
//! The pass is token-level like its siblings: receivers are matched by
//! field *name* within a file, so two same-named fields in one file
//! share a classification, and accesses through rebound locals
//! (`let b = &self.buckets[i]; b.fetch_add(…)`) are not attributed.
//! Both are documented trade-offs of the dependency-free lexer design;
//! the interleaving checker in `crates/interleave` covers the semantic
//! gap for the structures that matter most.

use crate::diag::Diagnostic;
use crate::lexer::{lex, strip_test_items, Lexed, Tok, Token};
use crate::workspace::SourceFile;
use std::collections::BTreeMap;

const PASS: &str = "sync";

/// Atomic method names the pass recognizes, split by write shape.
const LOAD_OPS: &[&str] = &["load"];
const STORE_OPS: &[&str] = &["store", "swap"];
const RMW_OPS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];
const BYPASS_OPS: &[&str] = &["get_mut", "into_inner"];

/// Field names that are synchronization edges regardless of write shape:
/// an epoch/generation counter orders *other* data (cache contents, table
/// versions), so even a fetch-op on it publishes.
const EPOCH_NAMES: &[&str] = &["epoch", "generation", "version", "gen"];

/// What kind of shared state a declaration introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedKind {
    /// `AtomicBool` — a flag by construction.
    AtomicBool,
    /// Any other `Atomic*` integer/pointer.
    AtomicInt,
    /// `Mutex<…>` or `RwLock<…>`-guarded data.
    Guarded,
}

/// One inventoried shared field or static.
#[derive(Debug, Clone)]
pub struct SharedDecl {
    /// Field or static name (`"0"`, `"1"`, … for tuple fields).
    pub name: String,
    pub kind: SharedKind,
    /// Workspace-relative declaring file.
    pub file: String,
    pub line: u32,
    /// True for a `static`, false for a struct field.
    pub is_static: bool,
}

/// Per-crate inventory of shared state, the substrate for the checks and
/// for `cargo run -p lint -- sync-inventory`.
#[derive(Debug, Default)]
pub struct Inventory {
    /// crate name → declarations, in file/line order.
    pub by_crate: BTreeMap<String, Vec<SharedDecl>>,
}

impl Inventory {
    /// Renders the inventory as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (crate_name, decls) in &self.by_crate {
            let atomics = decls
                .iter()
                .filter(|d| d.kind != SharedKind::Guarded)
                .count();
            let guarded = decls.len() - atomics;
            out.push_str(&format!(
                "crate {crate_name}: {atomics} atomic, {guarded} lock-guarded\n"
            ));
            for d in decls {
                let kind = match d.kind {
                    SharedKind::AtomicBool => "atomic-bool",
                    SharedKind::AtomicInt => "atomic",
                    SharedKind::Guarded => "guarded",
                };
                let scope = if d.is_static { "static" } else { "field" };
                out.push_str(&format!(
                    "  {kind:<11} {scope:<6} {:<28} {}:{}\n",
                    d.name, d.file, d.line
                ));
            }
        }
        out
    }
}

/// Builds the shared-state inventory over `files`.
pub fn inventory(files: &[SourceFile]) -> Inventory {
    let mut inv = Inventory::default();
    for file in files {
        let lexed = lex(&file.text);
        let tokens = strip_test_items(&lexed.tokens);
        let decls = collect_decls(&tokens, &file.rel_path);
        inv.by_crate
            .entry(file.crate_name.clone())
            .or_default()
            .extend(decls);
    }
    inv
}

/// Runs the sync checks over one file, appending findings.
pub fn check_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let lexed = lex(&file.text);
    let tokens = strip_test_items(&lexed.tokens);
    let decls = collect_decls(&tokens, &file.rel_path);
    let fns = collect_fns(&tokens);
    let sites = collect_sites(&tokens, &decls, &fns);
    check_rmw(&sites, &lexed, &file.rel_path, out);
    check_relaxed_edges(&decls, &sites, &fns, &tokens, &lexed, &file.rel_path, out);
    check_lock_bypass(&sites, &lexed, &file.rel_path, out);
}

/// A span of tokens forming one `fn` body, with its name.
#[derive(Debug)]
struct FnSpan {
    name: String,
    /// Token index of the body `{` (exclusive) and its matching `}`.
    body: (usize, usize),
}

/// The shape of one atomic/guard access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessOp {
    Load,
    Store,
    Rmw,
    Bypass,
}

/// One attributed access site.
#[derive(Debug)]
struct Site {
    field: String,
    op: AccessOp,
    /// The first (success) ordering named in the call, if any.
    relaxed: bool,
    line: u32,
    /// Index into the fn table, if inside a function body.
    fn_idx: Option<usize>,
    /// True when the access targets a lock-guarded (not atomic) field.
    guarded: bool,
}

fn collect_decls(tokens: &[Token], rel_path: &str) -> Vec<SharedDecl> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Ident(kw) if kw == "struct" => {
                i = collect_struct_fields(tokens, i, rel_path, &mut out);
            }
            Tok::Ident(kw) if kw == "static" => {
                // `static NAME: AtomicU64 = …;`
                let name = tokens.get(i + 1).and_then(|t| t.tok.ident());
                let ty = tokens.get(i + 3).and_then(|t| t.tok.ident());
                if let (Some(name), Some(ty)) = (name, ty) {
                    if let Some(kind) = atomic_kind(ty) {
                        out.push(SharedDecl {
                            name: name.to_owned(),
                            kind,
                            file: rel_path.to_owned(),
                            line: tokens[i].line,
                            is_static: true,
                        });
                    }
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses the fields of the struct whose `struct` keyword sits at `i`.
/// Returns the index just past the struct item.
fn collect_struct_fields(
    tokens: &[Token],
    i: usize,
    rel_path: &str,
    out: &mut Vec<SharedDecl>,
) -> usize {
    // Find the body start: `{` (named fields), `(` (tuple), or `;`.
    // `>>` lexes as one shift token, so closing nested generics costs 2.
    let mut j = i + 1;
    let mut angle = 0i32;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct("<") => angle += 1,
            Tok::Punct(">") => angle -= 1,
            Tok::Punct(">>") => angle -= 2,
            Tok::Punct("{") if angle <= 0 => break,
            Tok::Punct("(") if angle <= 0 => break,
            Tok::Punct(";") if angle <= 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    let Some(open) = tokens.get(j) else {
        return j;
    };
    let tuple = open.tok.is_punct("(");
    let (open_p, close_p) = if tuple { ("(", ")") } else { ("{", "}") };
    let mut depth = 0usize;
    let mut angle = 0i32;
    let mut field_start = j + 1;
    let mut tuple_index = 0usize;
    let mut k = j;
    while k < tokens.len() {
        match &tokens[k].tok {
            Tok::Punct("<") => angle += 1,
            Tok::Punct(">") => angle -= 1,
            Tok::Punct(">>") => angle -= 2,
            Tok::Punct(p) if *p == open_p => depth += 1,
            Tok::Punct(p) if *p == close_p => {
                depth -= 1;
                if depth == 0 {
                    scan_field(
                        &tokens[field_start..k],
                        tuple.then_some(tuple_index),
                        rel_path,
                        out,
                    );
                    return k + 1;
                }
            }
            // Commas inside generic args (`HashMap<K, V>`) are not field
            // separators.
            Tok::Punct(",") if depth == 1 && angle <= 0 => {
                scan_field(
                    &tokens[field_start..k],
                    tuple.then_some(tuple_index),
                    rel_path,
                    out,
                );
                tuple_index += 1;
                field_start = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    k
}

/// Inspects one field's token run (`[pub] name : Type…` or a tuple
/// field's bare type) and records it when the type is shared state.
fn scan_field(
    field: &[Token],
    tuple_index: Option<usize>,
    rel_path: &str,
    out: &mut Vec<SharedDecl>,
) {
    if field.is_empty() {
        return;
    }
    let kind = field.iter().find_map(|t| match &t.tok {
        Tok::Ident(name) => atomic_kind(name)
            .or_else(|| (name == "Mutex" || name == "RwLock").then_some(SharedKind::Guarded)),
        _ => None,
    });
    let Some(kind) = kind else { return };
    let (name, line) = match tuple_index {
        Some(idx) => (idx.to_string(), field[0].line),
        None => {
            // Named field: the identifier directly before the first `:`.
            let colon = field.iter().position(|t| t.tok.is_punct(":"));
            let Some(colon) = colon else { return };
            let Some(name) = colon
                .checked_sub(1)
                .and_then(|p| field.get(p))
                .and_then(|t| t.tok.ident())
            else {
                return;
            };
            (name.to_owned(), field[colon].line)
        }
    };
    out.push(SharedDecl {
        name,
        kind,
        file: rel_path.to_owned(),
        line,
        is_static: false,
    });
}

fn atomic_kind(ty: &str) -> Option<SharedKind> {
    match ty {
        "AtomicBool" => Some(SharedKind::AtomicBool),
        "AtomicU8" | "AtomicU16" | "AtomicU32" | "AtomicU64" | "AtomicUsize" | "AtomicI8"
        | "AtomicI16" | "AtomicI32" | "AtomicI64" | "AtomicIsize" | "AtomicPtr" => {
            Some(SharedKind::AtomicInt)
        }
        _ => None,
    }
}

/// Finds every `fn` body span with its name.
fn collect_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok.is_ident("fn") {
            let Some(name) = tokens.get(i + 1).and_then(|t| t.tok.ident()) else {
                i += 1;
                continue;
            };
            // Scan to the body `{` or a trait-decl `;` at bracket depth 0.
            let mut j = i + 2;
            let mut paren = 0i32;
            let mut angle_guard = 0i32;
            let mut body = None;
            while j < tokens.len() {
                match &tokens[j].tok {
                    Tok::Punct("(") | Tok::Punct("[") => paren += 1,
                    Tok::Punct(")") | Tok::Punct("]") => paren -= 1,
                    Tok::Punct("<") => angle_guard += 1,
                    Tok::Punct(">") => angle_guard -= 1,
                    Tok::Punct(">>") => angle_guard -= 2,
                    Tok::Punct(";") if paren == 0 => break,
                    Tok::Punct("{") if paren == 0 && angle_guard <= 0 => {
                        body = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body {
                let close = matching_brace(tokens, open);
                out.push(FnSpan {
                    name: name.to_owned(),
                    body: (open, close),
                });
                // Do not skip the body: nested fns get their own spans
                // (innermost span wins at attribution time).
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct("{") => depth += 1,
            Tok::Punct("}") => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// The innermost fn span containing token index `at`.
fn enclosing_fn(fns: &[FnSpan], at: usize) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| f.body.0 < at && at < f.body.1)
        .min_by_key(|(_, f)| f.body.1 - f.body.0)
        .map(|(idx, _)| idx)
}

/// Collects every attributed access to an inventoried field or static.
fn collect_sites(tokens: &[Token], decls: &[SharedDecl], fns: &[FnSpan]) -> Vec<Site> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        // `recv.op(` — op and any tuple-field receiver may be glued into
        // one numeric token by the lexer (`self.0.load` → Num("0.load")).
        let (op_name, field_override) = match &t.tok {
            Tok::Ident(name) => (name.as_str(), None),
            Tok::Num(text) if text.contains('.') => {
                let mut parts = text.split('.');
                let first = parts.next().unwrap_or_default();
                let last = text.rsplit('.').next().unwrap_or_default();
                (last, Some(first.to_owned()))
            }
            _ => continue,
        };
        let op = if LOAD_OPS.contains(&op_name) {
            AccessOp::Load
        } else if STORE_OPS.contains(&op_name) {
            AccessOp::Store
        } else if RMW_OPS.contains(&op_name) {
            AccessOp::Rmw
        } else if BYPASS_OPS.contains(&op_name) {
            AccessOp::Bypass
        } else {
            continue;
        };
        if !tokens.get(i + 1).is_some_and(|n| n.tok.is_punct("(")) {
            continue;
        }
        // Resolve the receiver's final field segment.
        let field = match field_override {
            Some(f) => {
                // Glued form: require a `.` before the Num token.
                if !i
                    .checked_sub(1)
                    .and_then(|p| tokens.get(p))
                    .is_some_and(|t| t.tok.is_punct("."))
                {
                    continue;
                }
                f
            }
            None => {
                if !i
                    .checked_sub(1)
                    .and_then(|p| tokens.get(p))
                    .is_some_and(|t| t.tok.is_punct("."))
                {
                    continue;
                }
                match i.checked_sub(2).and_then(|p| tokens.get(p)).map(|t| &t.tok) {
                    Some(Tok::Ident(name)) => name.clone(),
                    Some(Tok::Num(text)) => text.rsplit('.').next().unwrap_or_default().to_owned(),
                    _ => continue,
                }
            }
        };
        let Some(decl) = decls.iter().find(|d| d.name == field) else {
            continue;
        };
        if decl.kind == SharedKind::Guarded && op != AccessOp::Bypass {
            continue; // lock()/read()/write() are the sanctioned paths
        }
        if op == AccessOp::Bypass {
            // A bypass reaches the guarded field through its owner
            // (`self.field.get_mut()`); a same-named *guard local*
            // (`let mut field = self.field.lock(); field.get_mut(…)`) is
            // the sanctioned path, not a bypass.
            let owner_is_self = match field_is_glued(&tokens[i].tok) {
                // `self . 0.get_mut` — owner two tokens back.
                true => i >= 2 && tokens[i - 2].tok.is_ident("self"),
                // `self . field . get_mut` — owner four tokens back.
                false => {
                    i >= 4 && tokens[i - 3].tok.is_punct(".") && tokens[i - 4].tok.is_ident("self")
                }
            };
            if !owner_is_self && !decl.is_static {
                continue;
            }
        }
        if decl.kind != SharedKind::Guarded && op == AccessOp::Bypass {
            // Atomics have get_mut too; exclusive access to an atomic is
            // unremarkable.
            continue;
        }
        out.push(Site {
            field,
            op,
            relaxed: first_ordering_is_relaxed(tokens, i + 1),
            line: t.line,
            fn_idx: enclosing_fn(fns, i),
            guarded: decl.kind == SharedKind::Guarded,
        });
    }
    out
}

/// True when the access token glues receiver and method into one numeric
/// token (`self.0.load` lexes as `Num("0.load")`).
fn field_is_glued(tok: &Tok) -> bool {
    matches!(tok, Tok::Num(_))
}

/// True when the first `Ordering::X` inside the call parens is `Relaxed`.
fn first_ordering_is_relaxed(tokens: &[Token], open: usize) -> bool {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct("(") => depth += 1,
            Tok::Punct(")") => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            Tok::Ident(name)
                if name == "Ordering"
                    && tokens.get(i + 1).is_some_and(|t| t.tok.is_punct("::")) =>
            {
                return tokens.get(i + 2).is_some_and(|t| t.tok.is_ident("Relaxed"));
            }
            Tok::Ident(name) if name == "Relaxed" => return true,
            Tok::Ident(name)
                if matches!(name.as_str(), "Acquire" | "Release" | "AcqRel" | "SeqCst") =>
            {
                return false;
            }
            _ => {}
        }
        i += 1;
    }
    false
}

/// Check 2: a `load` followed by a plain `store` of the same field in the
/// same function is a lost-update window.
fn check_rmw(sites: &[Site], lexed: &Lexed, path: &str, out: &mut Vec<Diagnostic>) {
    for store in sites.iter().filter(|s| s.op == AccessOp::Store) {
        let Some(fn_idx) = store.fn_idx else { continue };
        let Some(load) = sites.iter().find(|s| {
            s.op == AccessOp::Load
                && s.fn_idx == Some(fn_idx)
                && s.field == store.field
                && s.line <= store.line
        }) else {
            continue;
        };
        let message = format!(
            "non-atomic read-modify-write on `{}`: load at line {} feeds the store at line {}; \
             a concurrent writer between them is silently lost — use `fetch_*`, \
             `compare_exchange`, or `fetch_update`",
            store.field, load.line, store.line
        );
        push_unless_allowed(lexed, path, store.line, message, out);
    }
}

/// Check 3: Relaxed orderings on fields that act as synchronization edges.
#[allow(clippy::too_many_arguments)]
fn check_relaxed_edges(
    decls: &[SharedDecl],
    sites: &[Site],
    fns: &[FnSpan],
    tokens: &[Token],
    lexed: &Lexed,
    path: &str,
    out: &mut Vec<Diagnostic>,
) {
    // Lines already reported as RMW races: don't double-report.
    let rmw_lines: Vec<u32> = out
        .iter()
        .filter(|d| d.pass == PASS && d.message.contains("read-modify-write"))
        .map(|d| d.line)
        .collect();
    // Two tuple structs in one file both declare a field `0`; merge
    // same-named declarations and keep the strictest kind so each name is
    // classified (and reported) once.
    let mut merged: Vec<&SharedDecl> = Vec::new();
    for decl in decls {
        match merged.iter_mut().find(|d| d.name == decl.name) {
            Some(prev) => {
                if decl.kind == SharedKind::AtomicBool {
                    *prev = decl;
                }
            }
            None => merged.push(decl),
        }
    }
    for decl in merged {
        if decl.kind == SharedKind::Guarded {
            continue;
        }
        let field_sites: Vec<&Site> = sites.iter().filter(|s| s.field == decl.name).collect();
        let has_write = field_sites
            .iter()
            .any(|s| matches!(s.op, AccessOp::Store | AccessOp::Rmw));
        let has_load = field_sites.iter().any(|s| s.op == AccessOp::Load);
        if !has_write || !has_load {
            continue; // no observable cross-thread edge in this file
        }
        let has_plain_store = field_sites.iter().any(|s| s.op == AccessOp::Store);
        let epoch_named = EPOCH_NAMES
            .iter()
            .any(|n| decl.name == *n || decl.name.to_lowercase().contains(n));
        let is_sync_edge = match decl.kind {
            SharedKind::AtomicBool => true,
            _ if epoch_named => true,
            _ if has_plain_store => {
                // Gauge inference: stores are fine when nobody does more
                // than report the value.
                !field_sites
                    .iter()
                    .filter(|s| s.op == AccessOp::Load)
                    .all(|s| is_reporting_load(s, fns, tokens))
            }
            // Pure counter/accumulator: RMW-only writes.
            _ => false,
        };
        if !is_sync_edge {
            continue;
        }
        for site in field_sites {
            if !site.relaxed || rmw_lines.contains(&site.line) {
                continue;
            }
            // Getter-shaped loads are exempt only for gauge-like fields;
            // a flag or epoch load is the decision even when it is the
            // whole function body.
            if is_reporting_load(site, fns, tokens)
                && decl.kind != SharedKind::AtomicBool
                && !epoch_named
            {
                continue;
            }
            if site.op == AccessOp::Load && in_fmt_fn(site, fns) {
                continue; // Debug/Display rendering observes, never decides
            }
            let role = match site.op {
                AccessOp::Load => "load wants Ordering::Acquire",
                AccessOp::Store => "store wants Ordering::Release",
                AccessOp::Rmw => "read-modify-write wants Ordering::AcqRel",
                AccessOp::Bypass => continue,
            };
            let why = if decl.kind == SharedKind::AtomicBool {
                "an AtomicBool is a flag other threads act on"
            } else if epoch_named {
                "an epoch/generation orders the data it versions"
            } else {
                "it is stored in one function and decided on in another"
            };
            let message = format!(
                "`Ordering::Relaxed` on synchronization field `{}` ({why}): {role}, \
                 or justify with `// lint:allow(sync: \"…\")`",
                decl.name
            );
            push_unless_allowed(lexed, path, site.line, message, out);
        }
    }
}

/// Check 4: lock bypasses on guarded fields.
fn check_lock_bypass(sites: &[Site], lexed: &Lexed, path: &str, out: &mut Vec<Diagnostic>) {
    for site in sites
        .iter()
        .filter(|s| s.guarded && s.op == AccessOp::Bypass)
    {
        let message = format!(
            "`{}` is accessed both under its lock and directly: `get_mut()`/`into_inner()` \
             bypass the acquisition other threads rely on — justify the exclusive access \
             with `// lint:allow(sync: \"…\")`",
            site.field
        );
        push_unless_allowed(lexed, path, site.line, message, out);
    }
}

/// True when the load sits in a getter-shaped function or a `fmt` impl:
/// the value is reported, not decided on.
fn is_reporting_load(site: &Site, fns: &[FnSpan], tokens: &[Token]) -> bool {
    if site.op != AccessOp::Load {
        return false;
    }
    let Some(f) = site.fn_idx.and_then(|i| fns.get(i)) else {
        return false;
    };
    if f.name == "fmt" {
        return true;
    }
    let body = &tokens[f.body.0 + 1..f.body.1];
    let branches = body.iter().any(|t| {
        matches!(&t.tok, Tok::Ident(k) if matches!(k.as_str(), "if" | "while" | "match" | "for" | "loop"))
    });
    !branches && body.len() <= 24
}

fn in_fmt_fn(site: &Site, fns: &[FnSpan]) -> bool {
    site.fn_idx
        .and_then(|i| fns.get(i))
        .is_some_and(|f| f.name == "fmt")
}

fn push_unless_allowed(
    lexed: &Lexed,
    path: &str,
    line: u32,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    match lexed.allowed(PASS, line) {
        Some(allow)
            if allow
                .justification
                .as_deref()
                .is_some_and(|j| !j.is_empty()) => {}
        Some(_) => out.push(Diagnostic::new(
            PASS,
            path,
            line,
            "lint:allow(sync) requires a justification string: \
             `// lint:allow(sync: \"why Relaxed/bypass is safe here\")`",
        )),
        None => out.push(Diagnostic::new(PASS, path, line, message)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile {
            rel_path: "mem.rs".into(),
            crate_name: "mem".into(),
            text: src.into(),
        };
        let mut out = Vec::new();
        check_file(&file, &mut out);
        out
    }

    const EWMA: &str = r#"
        struct G { est: AtomicU64 }
        impl G {
            fn observe(&self, sample: u64) {
                let cur = self.est.load(Ordering::Relaxed);
                self.est.store((cur + sample) / 2, Ordering::Relaxed);
            }
            fn read(&self) -> u64 { self.est.load(Ordering::Relaxed) }
        }
    "#;

    #[test]
    fn flags_load_then_store_rmw() {
        let d = run(EWMA);
        assert!(
            d.iter().any(|d| d.message.contains("read-modify-write")),
            "{d:?}"
        );
    }

    #[test]
    fn rmw_allow_needs_justification() {
        let allowed = EWMA.replace(
            "self.est.store(",
            "// lint:allow(sync: \"single-writer estimator\")\n self.est.store(",
        );
        let d = run(&allowed);
        assert!(
            !d.iter().any(|d| d.message.contains("read-modify-write")),
            "{d:?}"
        );
        let bare = EWMA.replace("self.est.store(", "// lint:allow(sync)\n self.est.store(");
        let d = run(&bare);
        assert!(
            d.iter().any(|d| d.message.contains("justification")),
            "{d:?}"
        );
    }

    #[test]
    fn flags_relaxed_bool_flag_but_not_counter() {
        let src = r#"
            struct S { ready: AtomicBool, hits: AtomicU64 }
            impl S {
                fn publish(&self) { self.ready.store(true, Ordering::Relaxed); }
                fn consume(&self) -> bool {
                    if self.ready.load(Ordering::Relaxed) { return true; }
                    false
                }
                fn hit(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }
                fn hits(&self) -> u64 { self.hits.load(Ordering::Relaxed) }
            }
        "#;
        let d = run(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.message.contains("`ready`")), "{d:?}");
    }

    #[test]
    fn epoch_named_counter_is_a_sync_edge() {
        let src = r#"
            struct C { epoch: AtomicU64, misses: AtomicU64 }
            impl C {
                fn bump(&self) -> u64 { self.epoch.fetch_add(1, Ordering::Relaxed) }
                fn check(&self, seen: u64) -> bool {
                    self.epoch.load(Ordering::Relaxed) == seen
                }
                fn miss(&self) { self.misses.fetch_add(1, Ordering::Relaxed); }
                fn misses(&self) -> u64 { self.misses.load(Ordering::Relaxed) }
            }
        "#;
        let d = run(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|d| d.message.contains("`epoch`")), "{d:?}");
    }

    #[test]
    fn gauge_with_reporting_loads_is_allowed() {
        let src = r#"
            struct Gauge(AtomicU64);
            impl Gauge {
                fn set(&self, v: u64) { self.0.store(v, Ordering::Relaxed); }
                fn get(&self) -> u64 { self.0.load(Ordering::Relaxed) }
            }
        "#;
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn stored_and_decided_value_is_flagged() {
        let src = r#"
            struct S { limit: AtomicU64 }
            impl S {
                fn set(&self, v: u64) { self.limit.store(v, Ordering::Relaxed); }
                fn over(&self, used: u64) -> bool {
                    if used > self.limit.load(Ordering::Relaxed) { return true; }
                    false
                }
            }
        "#;
        let d = run(src);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn flags_lock_bypass_on_guarded_field() {
        let src = r#"
            struct S { items: Mutex<Vec<u8>> }
            impl S {
                fn push(&self, v: u8) { self.items.lock().push(v); }
                fn drain(&mut self) -> Vec<u8> {
                    std::mem::take(self.items.get_mut())
                }
            }
        "#;
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("bypass"), "{d:?}");
    }

    #[test]
    fn release_acquire_pairs_are_clean() {
        let src = r#"
            struct S { ready: AtomicBool }
            impl S {
                fn publish(&self) { self.ready.store(true, Ordering::Release); }
                fn consume(&self) -> bool {
                    if self.ready.load(Ordering::Acquire) { return true; }
                    false
                }
            }
        "#;
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            struct S { ready: AtomicBool }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let s = S { ready: AtomicBool::new(false) };
                    s.ready.store(true, Ordering::Relaxed);
                    assert!(s.ready.load(Ordering::Relaxed));
                }
            }
        "#;
        let d = run(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn inventory_lists_atomics_and_guards() {
        let file = SourceFile {
            rel_path: "mem.rs".into(),
            crate_name: "mem".into(),
            text: r#"
                static TOTAL: AtomicU64 = AtomicU64::new(0);
                struct S { flag: AtomicBool, table: Mutex<Vec<u8>>, n: usize }
                struct T(AtomicUsize);
            "#
            .into(),
        };
        let inv = inventory(&[file]);
        let decls = &inv.by_crate["mem"];
        let names: Vec<&str> = decls.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["TOTAL", "flag", "table", "0"], "{decls:?}");
        assert!(decls[0].is_static);
        assert_eq!(decls[1].kind, SharedKind::AtomicBool);
        assert_eq!(decls[2].kind, SharedKind::Guarded);
        assert_eq!(decls[3].kind, SharedKind::AtomicInt);
        assert!(inv.render().contains("crate mem"));
    }
}
