//! A small Rust lexer: just enough tokenization for the lint passes.
//!
//! The lexer understands line/block comments (including nesting), string,
//! raw-string, byte-string and char literals, lifetimes, identifiers,
//! numbers and multi-character operators, and records the 1-based source
//! line of every token. It also collects `// lint:allow(...)` directives
//! from comments so passes can honour suppressions.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Lifetime such as `'a` (without the quote).
    Lifetime(String),
    /// Numeric literal, verbatim.
    Num(String),
    /// String literal (any flavour); payload is the raw content.
    Str(String),
    /// Char or byte literal.
    Char,
    /// Punctuation; multi-character operators are joined (`::`, `==`, ...).
    Punct(&'static str),
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Tok::Punct(q) if *q == p)
    }

    /// True when the token is the given identifier/keyword.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == name)
    }
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A `// lint:allow(pass)` or `// lint:allow(pass: "why")` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    pub line: u32,
    pub pass: String,
    pub justification: Option<String>,
}

/// Lexer output: the token stream and any allow directives found.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

impl Lexed {
    /// True when `line` (or the line directly above it) carries an allow
    /// directive for `pass`. Directives therefore work both trailing the
    /// flagged expression and as a comment on the preceding line.
    pub fn allowed(&self, pass: &str, line: u32) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.pass == pass && (a.line == line || a.line + 1 == line))
    }
}

const MULTI_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

const SINGLE_OPS: &str = "{}()[]<>;,.:=#!?&|+-*/%^@$~";

fn punct_str(op: &str) -> Option<&'static str> {
    MULTI_OPS.iter().find(|m| **m == op).copied().or_else(|| {
        SINGLE_OPS
            .find(op.chars().next()?)
            .map(|i| &SINGLE_OPS[i..i + 1])
    })
}

/// Tokenizes `src`, collecting `lint:allow` directives along the way.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                scan_allow(&text, line, &mut out.allows);
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                let text: String = b[start..i.min(b.len())].iter().collect();
                scan_allow(&text, line, &mut out.allows);
            }
            '"' => {
                let (content, consumed, newlines) = lex_string(&b[i..]);
                out.tokens.push(Token {
                    tok: Tok::Str(content),
                    line,
                });
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let (content, consumed, newlines) = lex_prefixed_string(&b[i..]);
                out.tokens.push(Token {
                    tok: Tok::Str(content),
                    line,
                });
                line += newlines;
                i += consumed;
            }
            '\'' => {
                // Lifetime or char literal.
                if is_lifetime(&b, i) {
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Lifetime(b[start..j].iter().collect()),
                        line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    if b.get(j) == Some(&'\\') {
                        j += 2; // skip the escaped char
                        while j < b.len() && b[j] != '\'' {
                            j += 1; // \u{...} and friends
                        }
                    } else if j < b.len() {
                        j += 1;
                    }
                    if b.get(j) == Some(&'\'') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(b[start..i].iter().collect()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len()
                    && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.')
                    && !(b[i] == '.' && b.get(i + 1) == Some(&'.'))
                {
                    // Stop the dot-greed at `..` so ranges stay operators.
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Num(b[start..i].iter().collect()),
                    line,
                });
            }
            _ => {
                // Longest-match multi-char operator, else single char.
                let mut matched = false;
                for len in [3usize, 2] {
                    if i + len <= b.len() {
                        let op: String = b[i..i + len].iter().collect();
                        if let Some(p) = punct_str(&op) {
                            if p.len() == len {
                                out.tokens.push(Token {
                                    tok: Tok::Punct(p),
                                    line,
                                });
                                i += len;
                                matched = true;
                                break;
                            }
                        }
                    }
                }
                if !matched {
                    let op: String = b[i..i + 1].iter().collect();
                    if let Some(p) = punct_str(&op) {
                        out.tokens.push(Token {
                            tok: Tok::Punct(p),
                            line,
                        });
                    }
                    i += 1;
                }
            }
        }
    }
    out
}

fn is_lifetime(b: &[char], i: usize) -> bool {
    // 'ident not followed by a closing quote (otherwise it's 'x' the char).
    let mut j = i + 1;
    if j >= b.len() || !(b[j].is_alphabetic() || b[j] == '_') {
        return false;
    }
    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    b.get(j) != Some(&'\'')
}

fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    // r"..."  r#"..."#  b"..."  br"..."  br#"..."#  rb variants don't exist.
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
    }
    b.get(j) == Some(&'"') && j > i
}

/// Lexes a plain `"..."` starting at `b[0]`. Returns (content, consumed, newlines).
fn lex_string(b: &[char]) -> (String, usize, u32) {
    let mut i = 1;
    let mut newlines = 0;
    let mut content = String::new();
    while i < b.len() {
        match b[i] {
            '\\' => {
                if let Some(c) = b.get(i + 1) {
                    content.push(*c);
                }
                i += 2;
            }
            '"' => {
                i += 1;
                break;
            }
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                content.push(c);
                i += 1;
            }
        }
    }
    (content, i, newlines)
}

/// Lexes `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` starting at `b[0]`.
fn lex_prefixed_string(b: &[char]) -> (String, usize, u32) {
    let mut i = 0;
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
    }
    if b.get(i) == Some(&'r') {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&'"'));
    if !raw {
        let (content, consumed, newlines) = lex_string(&b[i..]);
        return (content, i + consumed, newlines);
    }
    i += 1;
    let start = i;
    let mut newlines = 0;
    while i < b.len() {
        if b[i] == '"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|c| **c == '#')
                .count()
                == hashes
        {
            let content: String = b[start..i].iter().collect();
            return (content, i + 1 + hashes, newlines);
        }
        if b[i] == '\n' {
            newlines += 1;
        }
        i += 1;
    }
    (b[start..].iter().collect(), b.len(), newlines)
}

/// Extracts `lint:allow(pass)` / `lint:allow(pass: "why")` from a comment.
fn scan_allow(comment: &str, line: u32, out: &mut Vec<Allow>) {
    let Some(pos) = comment.find("lint:allow(") else {
        return;
    };
    let rest = &comment[pos + "lint:allow(".len()..];
    let Some(end) = rest.find(')') else {
        return;
    };
    let inner = &rest[..end];
    let (pass, justification) = match inner.split_once(':') {
        Some((p, j)) => {
            let j = j.trim();
            let j = j.strip_prefix('"').and_then(|s| s.strip_suffix('"'));
            (p.trim(), j.map(str::to_owned))
        }
        None => (inner.trim(), None),
    };
    out.push(Allow {
        line,
        pass: pass.to_owned(),
        justification,
    });
}

/// Strips test-only items from a token stream: any item annotated
/// `#[cfg(test)]` or `#[test]` is removed wholesale (attributes included),
/// by skipping to the end of the annotated item's balanced braces (or
/// trailing semicolon for brace-less items).
pub fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].tok.is_punct("#") && is_test_attr(tokens, i) {
            // Back out any attributes already copied for this item: they
            // belong to the skipped item only if directly adjacent, which
            // copy order already handles (attributes before this one were
            // copied; fine — they are inert without their item? They are
            // not: conservatively also strip directly preceding attribute
            // groups from `out`.)
            strip_trailing_attrs(&mut out);
            i = skip_item(tokens, i);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// True when the `#` at `i` begins `#[test]`, `#[cfg(test)]`, or
/// `#[cfg(any(test, ...))]`-style attributes mentioning a bare `test`.
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    if !tokens.get(i + 1).is_some_and(|t| t.tok.is_punct("[")) {
        return false;
    }
    // Find the matching `]` and look for the `test` / `cfg(test)` shape.
    let mut depth = 0;
    let mut j = i + 1;
    let mut idents: Vec<&str> = Vec::new();
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct("[") => depth += 1,
            Tok::Punct("]") => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(s) => idents.push(s),
            _ => {}
        }
        j += 1;
    }
    match idents.as_slice() {
        ["test"] => true,
        ["cfg", rest @ ..] => rest.contains(&"test"),
        _ => false,
    }
}

/// Removes attribute groups (`# [ ... ]`) sitting at the end of `out`.
fn strip_trailing_attrs(out: &mut Vec<Token>) {
    loop {
        // Find a trailing `# [ ... ]` group.
        let Some(last) = out.last() else { return };
        if !last.tok.is_punct("]") {
            return;
        }
        let mut depth = 0;
        let mut k = out.len();
        while k > 0 {
            k -= 1;
            match &out[k].tok {
                Tok::Punct("]") => depth += 1,
                Tok::Punct("[") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if k > 0 && out[k - 1].tok.is_punct("#") {
            out.truncate(k - 1);
        } else {
            return;
        }
    }
}

/// Skips one attributed item starting at the `#` of its first attribute.
/// Returns the index just past the item.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Skip attribute groups.
    while i < tokens.len() && tokens[i].tok.is_punct("#") {
        let mut depth = 0;
        i += 1; // at `[`
        while i < tokens.len() {
            match &tokens[i].tok {
                Tok::Punct("[") => depth += 1,
                Tok::Punct("]") => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Scan to the item body `{...}` or a `;` at depth 0 (whichever first).
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct(";") => return i + 1,
            Tok::Punct("{") => {
                let mut depth = 0;
                while i < tokens.len() {
                    match &tokens[i].tok {
                        Tok::Punct("{") => depth += 1,
                        Tok::Punct("}") => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<String> {
        l.tokens
            .iter()
            .filter_map(|t| t.tok.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn lexes_idents_and_ops() {
        let l = lex("fn foo(a: &str) -> bool { a == \"x\" }");
        assert_eq!(idents(&l), ["fn", "foo", "a", "str", "bool", "a"]);
        assert!(l.tokens.iter().any(|t| t.tok.is_punct("==")));
        assert!(l.tokens.iter().any(|t| t.tok.is_punct("->")));
    }

    #[test]
    fn tracks_lines_through_comments_and_strings() {
        let src = "a\n/* multi\nline */\nb\n\"str\nwith newline\"\nc";
        let l = lex(src);
        let lines: Vec<(String, u32)> = l
            .tokens
            .iter()
            .filter_map(|t| t.tok.ident().map(|s| (s.to_owned(), t.line)))
            .collect();
        assert_eq!(
            lines,
            [("a".into(), 1), ("b".into(), 4), ("c".into(), 7)],
            "{lines:?}"
        );
    }

    #[test]
    fn distinguishes_lifetimes_from_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .count();
        let chars = l
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Char))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_strings_and_nested_comments() {
        let l = lex("let s = r#\"quote \" inside\"#; /* outer /* inner */ still */ x");
        assert!(l.tokens.iter().any(|t| t.tok.is_ident("x")));
        assert!(l
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s.contains("quote"))));
    }

    #[test]
    fn collects_allow_directives() {
        let src = "x // lint:allow(panic: \"startup only\")\ny // lint:allow(ct)\n";
        let l = lex(src);
        assert_eq!(l.allows.len(), 2);
        assert_eq!(l.allows[0].pass, "panic");
        assert_eq!(l.allows[0].justification.as_deref(), Some("startup only"));
        assert_eq!(l.allows[1].pass, "ct");
        assert!(l.allows[1].justification.is_none());
        assert!(l.allowed("panic", 1).is_some());
        assert!(l.allowed("panic", 2).is_some(), "applies to next line too");
        assert!(l.allowed("panic", 3).is_none());
    }

    #[test]
    fn strips_cfg_test_modules_and_test_fns() {
        let src = r#"
            fn keep() { a.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { b.unwrap(); }
            }
            #[test]
            fn solo() { c.unwrap(); }
            fn also_keep() {}
        "#;
        let l = lex(src);
        let stripped = strip_test_items(&l.tokens);
        let names: Vec<&str> = stripped.iter().filter_map(|t| t.tok.ident()).collect();
        assert!(names.contains(&"keep"));
        assert!(names.contains(&"also_keep"));
        assert!(!names.contains(&"tests"));
        assert!(!names.contains(&"solo"));
        assert!(!names.contains(&"b"));
        assert!(!names.contains(&"c"));
    }
}
