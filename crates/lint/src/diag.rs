//! Diagnostics shared by all passes.

use std::fmt;

/// A single finding, anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Pass that produced the finding (`lock-order`, `panic`, `ct`, `wire`).
    pub pass: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line; 0 when the finding is not line-anchored.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        pass: &'static str,
        file: impl Into<String>,
        line: u32,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            pass,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "[{}] {}: {}", self.pass, self.file, self.message)
        } else {
            write!(
                f,
                "[{}] {}:{}: {}",
                self.pass, self.file, self.line, self.message
            )
        }
    }
}
