//! End-to-end checks for the analyzer: every pass must flag its seeded
//! fixture under `tests/fixtures/`, and the real workspace tree must be
//! clean (the fixtures live outside `src/` so `run_all` never sees them).

use lint::workspace::SourceFile;
use std::path::{Path, PathBuf};

fn fixture(name: &str, crate_name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    SourceFile {
        rel_path: format!("crates/lint/tests/fixtures/{name}"),
        crate_name: crate_name.to_owned(),
        text: std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}")),
    }
}

fn workspace_root() -> PathBuf {
    lint::workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint crate lives inside the workspace")
}

#[test]
fn lock_order_flags_seeded_deadlock() {
    let mut out = Vec::new();
    lint::locks::check(&[fixture("deadlock.rs", "relay")], &mut out);
    assert_eq!(out.len(), 1, "expected exactly one cycle report: {out:?}");
    let d = &out[0];
    assert_eq!(d.pass, "lock-order");
    assert!(d.message.contains("cycle"), "{}", d.message);
    assert!(d.message.contains("Ledger::accounts"), "{}", d.message);
    assert!(d.message.contains("Ledger::audit"), "{}", d.message);
    // Witnesses must carry file:line for both edges.
    assert!(
        d.message.contains("fixtures/deadlock.rs:"),
        "cycle report lacks file:line witnesses: {}",
        d.message
    );
}

#[test]
fn panic_pass_flags_seeded_unwrap_but_not_test_code() {
    let mut out = Vec::new();
    lint::panics::check_file(&fixture("seeded_unwrap.rs", "relay"), &mut out);
    // One line carries both seeds: the slice index and the unwrap. The
    // identical constructs inside #[cfg(test)] must not be reported.
    assert_eq!(out.len(), 2, "{out:?}");
    assert!(out.iter().all(|d| d.pass == "panic"));
    assert!(out.iter().any(|d| d.message.contains("unwrap")), "{out:?}");
    assert!(out.iter().any(|d| d.message.contains("index")), "{out:?}");
    assert!(out.iter().all(|d| d.line == out[0].line), "{out:?}");
}

#[test]
fn ct_pass_flags_seeded_compare_and_secret_branch() {
    let mut out = Vec::new();
    lint::ct::check_file(&fixture("non_ct.rs", "crypto"), &mut out);
    assert_eq!(out.len(), 4, "{out:?}");
    assert!(out.iter().all(|d| d.pass == "ct"));
    assert!(
        out.iter()
            .filter(|d| d.message.contains("variable-time `==`"))
            .count()
            == 2,
        "{out:?}"
    );
    assert!(
        out.iter()
            .any(|d| d.message.contains("secret-derived bool `mac_ok`")),
        "{out:?}"
    );
    assert!(
        out.iter()
            .any(|d| d.message.contains("table lookup `table[...]`")),
        "{out:?}"
    );
}

#[test]
fn wire_pass_rejects_renumbered_fixture_tag() {
    let baseline = lint::wire::extract_rows(&fixture("wire_baseline.rs", "wire").text);
    assert_eq!(baseline.len(), 3, "{baseline:?}");
    let snapshot = lint::wire::render_snapshot(&baseline);

    // The baseline is clean against its own snapshot.
    let mut out = Vec::new();
    lint::wire::check_against_snapshot(&baseline, &snapshot, "wire_baseline.rs", "snap", &mut out);
    assert!(out.is_empty(), "{out:?}");

    // The renumbered variant (nonce: tag 2 -> 4) is rejected.
    let renumbered = lint::wire::extract_rows(&fixture("wire_renumbered.rs", "wire").text);
    let mut out = Vec::new();
    lint::wire::check_against_snapshot(
        &renumbered,
        &snapshot,
        "wire_renumbered.rs",
        "snap",
        &mut out,
    );
    assert!(!out.is_empty(), "renumbered tag not flagged");
    assert!(
        out.iter()
            .any(|d| d.pass == "wire" && d.message.contains("nonce")),
        "{out:?}"
    );
}

#[test]
fn real_wire_schema_rejects_deliberate_renumber() {
    let root = workspace_root();
    let messages = std::fs::read_to_string(root.join(lint::MESSAGES_PATH)).expect("messages.rs");
    let snapshot = std::fs::read_to_string(root.join(lint::SNAPSHOT_PATH)).expect("snapshot");

    // Renumber AuthInfo.network_id (tag 1) to an unused tag.
    let tampered = messages.replacen(
        "w.string(1, &self.network_id);",
        "w.string(31, &self.network_id);",
        1,
    );
    assert_ne!(tampered, messages, "renumber target not found");

    let rows = lint::wire::extract_rows(&tampered);
    let mut out = Vec::new();
    lint::wire::check_against_snapshot(
        &rows,
        &snapshot,
        lint::MESSAGES_PATH,
        lint::SNAPSHOT_PATH,
        &mut out,
    );
    assert!(!out.is_empty(), "deliberate renumber not rejected");
    assert!(
        out.iter()
            .any(|d| d.pass == "wire" && d.message.contains("network_id")),
        "{out:?}"
    );
}

#[test]
fn sync_pass_flags_seeded_rmw_and_bare_allow() {
    let mut out = Vec::new();
    lint::sync::check_file(&fixture("sync_rmw.rs", "relay"), &mut out);
    assert_eq!(out.len(), 2, "{out:?}");
    assert!(out.iter().all(|d| d.pass == "sync"));
    assert!(
        out.iter()
            .any(|d| d.message.contains("read-modify-write") && d.message.contains("`estimate`")),
        "{out:?}"
    );
    // The justified allow suppresses its site; the bare allow is itself
    // a finding.
    assert!(
        out.iter().any(|d| d.message.contains("justification")),
        "{out:?}"
    );
}

#[test]
fn sync_pass_flags_relaxed_flag_and_epoch_but_not_counter() {
    let mut out = Vec::new();
    lint::sync::check_file(&fixture("sync_flag.rs", "relay"), &mut out);
    assert_eq!(out.len(), 4, "{out:?}");
    assert!(out.iter().all(|d| d.pass == "sync"));
    assert_eq!(
        out.iter().filter(|d| d.message.contains("`ready`")).count(),
        2,
        "flag store + load: {out:?}"
    );
    assert_eq!(
        out.iter().filter(|d| d.message.contains("`epoch`")).count(),
        2,
        "epoch RMW + load: {out:?}"
    );
    assert!(
        !out.iter().any(|d| d.message.contains("`hits`")),
        "pure counter must pass inference: {out:?}"
    );
}

#[test]
fn sync_pass_flags_lock_bypass_but_not_guard_local() {
    let mut out = Vec::new();
    lint::sync::check_file(&fixture("sync_bypass.rs", "relay"), &mut out);
    assert_eq!(out.len(), 1, "{out:?}");
    assert_eq!(out[0].pass, "sync");
    assert!(out[0].message.contains("bypass"), "{out:?}");
    assert!(out[0].message.contains("`pending`"), "{out:?}");
}

#[test]
fn sync_inventory_covers_real_tree() {
    let inv = lint::sync_inventory(&workspace_root()).expect("workspace readable");
    let relay = inv
        .by_crate
        .get("relay")
        .expect("relay crate inventoried: {inv:?}");
    // The breaker's trip counter and the service shutdown flag are
    // long-lived shared state the inventory must surface.
    assert!(
        relay.iter().any(|d| d.name == "trips"),
        "breaker counters missing: {relay:?}"
    );
    assert!(
        relay
            .iter()
            .any(|d| d.kind == lint::sync::SharedKind::Guarded),
        "lock-guarded fields missing: {relay:?}"
    );
    assert!(inv.render().contains("crate relay"));
}

#[test]
fn clean_tree_produces_no_diagnostics() {
    let out = lint::run_all(&workspace_root()).expect("workspace readable");
    assert!(out.is_empty(), "real tree must be lint-clean: {out:#?}");
}
