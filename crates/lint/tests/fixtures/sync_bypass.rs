//! Seeded fixture: lock bypass on a guarded field.
//!
//! `drain` reaches the Mutex-guarded `pending` through `get_mut()`,
//! sidestepping the acquisition `push` relies on. `requeue` shows the
//! sanctioned pattern: `get_mut` on a *guard local* obtained via
//! `lock()` is not a bypass.

use parking_lot::Mutex;

pub struct Outbox {
    pending: Mutex<Vec<u64>>,
}

impl Outbox {
    pub fn push(&self, v: u64) {
        self.pending.lock().push(v);
    }

    /// Sanctioned: `pending` here is the guard local, not the field.
    pub fn requeue(&self, v: u64) {
        let mut pending = self.pending.lock();
        pending.push(v);
        if let Some(first) = pending.get_mut(0) {
            *first += v;
        }
    }

    /// Bypass: exclusive access that skips the lock.
    pub fn drain(&mut self) -> Vec<u64> {
        std::mem::take(self.pending.get_mut())
    }
}
