//! Seeded fixture: `Ordering::Relaxed` on synchronization edges.
//!
//! `ready` is an AtomicBool publication flag and `epoch` versions other
//! data — both must be flagged at every Relaxed site. `hits` is a pure
//! statistic (RMW-only writes, reporting-only reads) that the
//! inference must leave alone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Publisher {
    ready: AtomicBool,
    epoch: AtomicU64,
    hits: AtomicU64,
}

impl Publisher {
    pub fn publish(&self) {
        self.ready.store(true, Ordering::Relaxed);
    }

    pub fn consume(&self) -> bool {
        if self.ready.load(Ordering::Relaxed) {
            return true;
        }
        false
    }

    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub fn epoch_current(&self, seen: u64) -> bool {
        self.epoch.load(Ordering::Relaxed) == seen
    }

    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}
