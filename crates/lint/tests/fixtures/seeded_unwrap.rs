//! Seeded panic-path violations: an `unwrap()` and a slice index, both
//! reachable from untrusted input. The identical constructs inside the
//! `#[cfg(test)]` module must stay exempt.

pub fn parse_frame(input: &[u8]) -> u64 {
    let header: [u8; 8] = input[..8].try_into().unwrap();
    u64::from_be_bytes(header)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = vec![0u8; 8];
        let _ = v[0];
        let _ = super::parse_frame(&v);
        std::str::from_utf8(&v).unwrap();
    }
}
