//! `wire_baseline.rs` with the `nonce` field renumbered from tag 2 to
//! tag 4 — a wire-compat break the pass must flag.

impl Message for Handshake {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.peer_id);
        w.bytes(4, &self.nonce);
        w.u64(3, self.version);
    }
}
