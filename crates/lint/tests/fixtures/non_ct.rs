//! Seeded constant-time violations: a direct `==` on MAC material, an
//! early branch on a secret-derived bool, and a table lookup indexed by
//! an exponent window digit.

pub fn verify_tag(expected_tag: &[u8], received_tag: &[u8]) -> bool {
    expected_tag == received_tag
}

pub fn accept(mac: &[u8], candidate: &[u8]) -> bool {
    let mac_ok = mac == candidate;
    if mac_ok {
        return true;
    }
    false
}

pub fn window_lookup(table: &[u64], window: usize) -> u64 {
    table[window]
}
