//! Seeded constant-time violations: a direct `==` on MAC material, and an
//! early branch on a secret-derived bool.

pub fn verify_tag(expected_tag: &[u8], received_tag: &[u8]) -> bool {
    expected_tag == received_tag
}

pub fn accept(mac: &[u8], candidate: &[u8]) -> bool {
    let mac_ok = mac == candidate;
    if mac_ok {
        return true;
    }
    false
}
