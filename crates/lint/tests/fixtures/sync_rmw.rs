//! Seeded fixture: non-atomic read-modify-write windows.
//!
//! `observe` carries the lost-update window the sync pass must flag;
//! `observe_single_writer` carries the same shape with a justified
//! allow; `observe_bare_allow` shows an allow without a justification,
//! which is itself a finding. Orderings are Acquire/Release so the
//! RMW check is exercised in isolation from the Relaxed-edge check.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Ewma {
    estimate: AtomicU64,
}

impl Ewma {
    /// Lost-update window: the load feeds the store, so a concurrent
    /// observer between the two is silently discarded.
    pub fn observe(&self, sample: u64) {
        let current = self.estimate.load(Ordering::Acquire);
        self.estimate.store((current + sample) / 2, Ordering::Release);
    }

    /// Same shape, justified per-site: not reported.
    pub fn observe_single_writer(&self, sample: u64) {
        let current = self.estimate.load(Ordering::Acquire);
        // lint:allow(sync: "single-writer estimator owned by the collector thread")
        self.estimate.store(current + sample, Ordering::Release);
    }

    /// Bare allow without a justification string: reported as such.
    pub fn observe_bare_allow(&self, sample: u64) {
        let current = self.estimate.load(Ordering::Acquire);
        // lint:allow(sync)
        self.estimate.store(current ^ sample, Ordering::Release);
    }
}
