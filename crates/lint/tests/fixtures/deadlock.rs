//! Seeded lock-order violation: `transfer` acquires `accounts` before
//! `audit`, while `reconcile` acquires them in the opposite order. The
//! lock-order pass must report the `Ledger::accounts` / `Ledger::audit`
//! cycle with a witness for each edge.

use std::sync::Mutex;

pub struct Ledger {
    accounts: Mutex<Vec<u64>>,
    audit: Mutex<Vec<String>>,
}

impl Ledger {
    pub fn transfer(&self) {
        let accounts = self.accounts.lock().unwrap();
        let audit = self.audit.lock().unwrap();
        drop(audit);
        drop(accounts);
    }

    pub fn reconcile(&self) {
        let audit = self.audit.lock().unwrap();
        let accounts = self.accounts.lock().unwrap();
        drop(accounts);
        drop(audit);
    }
}
