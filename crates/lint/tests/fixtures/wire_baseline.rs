//! Baseline wire schema for the wire-compat fixture pair: `Handshake`
//! with tags 1..=3. `wire_renumbered.rs` is the same struct with the
//! `nonce` tag moved from 2 to 4, which the pass must reject.

impl Message for Handshake {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.peer_id);
        w.bytes(2, &self.nonce);
        w.u64(3, self.version);
    }
}
