//! Binary Merkle trees with inclusion proofs.
//!
//! Block data hashes are Merkle roots over the block's transactions, so a
//! light verifier can check that a transaction is included in a block
//! without the full payload. Leaves and interior nodes are domain-separated
//! to prevent second-preimage splicing attacks.

use crate::error::LedgerError;
use tdt_crypto::sha256::sha256_concat;

/// A 32-byte Merkle node hash.
pub type Hash = [u8; 32];

fn leaf_hash(data: &[u8]) -> Hash {
    sha256_concat(&[b"\x00leaf", data])
}

fn node_hash(left: &Hash, right: &Hash) -> Hash {
    sha256_concat(&[b"\x01node", left, right])
}

/// Computes the Merkle root of `leaves`.
///
/// The empty tree has the all-zero root. Odd nodes are promoted (not
/// duplicated), so the tree is resistant to CVE-2012-2459-style mutation.
pub fn merkle_root<T: AsRef<[u8]>>(leaves: &[T]) -> Hash {
    if leaves.is_empty() {
        return [0u8; 32];
    }
    let mut level: Vec<Hash> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [l, r] => next.push(node_hash(l, r)),
                // chunks(2) yields 1- or 2-element slices only; carry an
                // odd tail up unchanged.
                _ => next.extend(pair.first().copied()),
            }
        }
        level = next;
    }
    level.first().copied().unwrap_or([0u8; 32])
}

/// One step of a Merkle inclusion proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStep {
    /// Sibling hash to combine with.
    pub sibling: Hash,
    /// True if the sibling is on the right of the running hash.
    pub sibling_on_right: bool,
}

/// A Merkle inclusion proof for one leaf.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MerkleProof {
    steps: Vec<ProofStep>,
}

impl MerkleProof {
    /// Reconstructs a proof from its steps (e.g. after wire transfer).
    pub fn from_steps(steps: Vec<ProofStep>) -> Self {
        MerkleProof { steps }
    }

    /// The proof's path steps, leaf-side first.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// The number of hashes in the proof path.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for a single-leaf tree's (empty) proof.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Verifies that `leaf_data` is included under `root`.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::InvalidMerkleProof`] when the recomputed root
    /// differs.
    pub fn verify(&self, leaf_data: &[u8], root: &Hash) -> Result<(), LedgerError> {
        let mut running = leaf_hash(leaf_data);
        for step in &self.steps {
            running = if step.sibling_on_right {
                node_hash(&running, &step.sibling)
            } else {
                node_hash(&step.sibling, &running)
            };
        }
        if &running == root {
            Ok(())
        } else {
            Err(LedgerError::InvalidMerkleProof)
        }
    }
}

/// Builds an inclusion proof for `leaves[index]`.
///
/// # Errors
///
/// Returns [`LedgerError::LeafOutOfRange`] if `index` is out of bounds.
pub fn merkle_proof<T: AsRef<[u8]>>(
    leaves: &[T],
    index: usize,
) -> Result<MerkleProof, LedgerError> {
    if index >= leaves.len() {
        return Err(LedgerError::LeafOutOfRange {
            index,
            leaves: leaves.len(),
        });
    }
    let mut level: Vec<Hash> = leaves.iter().map(|l| leaf_hash(l.as_ref())).collect();
    let mut idx = index;
    let mut steps = Vec::new();
    while level.len() > 1 {
        let sibling_idx = if idx.is_multiple_of(2) {
            idx + 1
        } else {
            idx - 1
        };
        if let Some(sibling) = level.get(sibling_idx) {
            steps.push(ProofStep {
                sibling: *sibling,
                sibling_on_right: sibling_idx > idx,
            });
        }
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            match pair {
                [l, r] => next.push(node_hash(l, r)),
                _ => next.extend(pair.first().copied()),
            }
        }
        idx /= 2;
        level = next;
    }
    Ok(MerkleProof { steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_tree_root_is_zero() {
        let leaves: Vec<Vec<u8>> = Vec::new();
        assert_eq!(merkle_root(&leaves), [0u8; 32]);
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let root = merkle_root(&[b"tx0"]);
        assert_eq!(root, leaf_hash(b"tx0"));
        let proof = merkle_proof(&[b"tx0"], 0).unwrap();
        assert!(proof.is_empty());
        assert!(proof.verify(b"tx0", &root).is_ok());
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let a = merkle_root(&[b"t0".as_slice(), b"t1", b"t2"]);
        let b = merkle_root(&[b"t0".as_slice(), b"tX", b"t2"]);
        assert_ne!(a, b);
    }

    #[test]
    fn proofs_verify_for_all_leaves() {
        for n in 1..=17usize {
            let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("tx-{i}").into_bytes()).collect();
            let root = merkle_root(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                let proof = merkle_proof(&leaves, i).unwrap();
                proof
                    .verify(leaf, &root)
                    .unwrap_or_else(|_| panic!("leaf {i} of {n} failed"));
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf() {
        let leaves = [b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()];
        let root = merkle_root(&leaves);
        let proof = merkle_proof(&leaves, 1).unwrap();
        assert_eq!(
            proof.verify(b"not-b", &root),
            Err(LedgerError::InvalidMerkleProof)
        );
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let leaves = [b"a".to_vec(), b"b".to_vec()];
        let proof = merkle_proof(&leaves, 0).unwrap();
        assert_eq!(
            proof.verify(b"a", &[9u8; 32]),
            Err(LedgerError::InvalidMerkleProof)
        );
    }

    #[test]
    fn out_of_range_leaf() {
        let leaves = [b"a".to_vec()];
        assert_eq!(
            merkle_proof(&leaves, 1).unwrap_err(),
            LedgerError::LeafOutOfRange {
                index: 1,
                leaves: 1
            }
        );
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A leaf containing what looks like two concatenated hashes must not
        // collide with the interior node of those hashes.
        let h1 = leaf_hash(b"x");
        let h2 = leaf_hash(b"y");
        let mut spliced = Vec::new();
        spliced.extend_from_slice(&h1);
        spliced.extend_from_slice(&h2);
        assert_ne!(leaf_hash(&spliced), node_hash(&h1, &h2));
    }

    proptest! {
        #[test]
        fn prop_all_proofs_verify(
            leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..32),
            seed in any::<usize>(),
        ) {
            let idx = seed % leaves.len();
            let root = merkle_root(&leaves);
            let proof = merkle_proof(&leaves, idx).unwrap();
            prop_assert!(proof.verify(&leaves[idx], &root).is_ok());
        }
    }
}
