//! Hash-chained blocks.
//!
//! A block's header commits to its number, the previous block's header hash,
//! and the Merkle root of its transaction payloads — the immutability
//! anchor for everything above.

use crate::merkle::{merkle_root, Hash};
use serde::{Deserialize, Serialize};
use tdt_crypto::sha256::sha256_concat;

/// The validation outcome of a transaction, recorded in block metadata by
/// committing peers (Fabric's validation flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxValidationCode {
    /// The transaction committed.
    Valid,
    /// Rejected: a read version was stale at commit time.
    MvccConflict,
    /// Rejected: the endorsement policy was not satisfied.
    EndorsementPolicyFailure,
    /// Rejected: an endorsement signature failed verification.
    BadEndorsementSignature,
    /// Rejected: malformed transaction payload.
    BadPayload,
}

impl TxValidationCode {
    /// True if the transaction committed successfully.
    pub fn is_valid(self) -> bool {
        matches!(self, TxValidationCode::Valid)
    }
}

/// Block header: the hash-chained part.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Height of this block (genesis is 0).
    pub number: u64,
    /// Hash of the previous block's header ([0; 32] for genesis).
    pub prev_hash: Hash,
    /// Merkle root of the block's transaction payloads.
    pub data_hash: Hash,
}

impl BlockHeader {
    /// The header hash that the next block links to.
    pub fn hash(&self) -> Hash {
        sha256_concat(&[
            b"tdt-block-header",
            &self.number.to_be_bytes(),
            &self.prev_hash,
            &self.data_hash,
        ])
    }
}

/// Per-block metadata filled in by committing peers.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BlockMetadata {
    /// Validation code for each transaction, parallel to the payload list.
    pub tx_validation: Vec<TxValidationCode>,
}

/// A block: header, opaque transaction payloads, and commit metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// The hash-chained header.
    pub header: BlockHeader,
    /// Opaque transaction payloads (serialized envelopes).
    pub transactions: Vec<Vec<u8>>,
    /// Validation flags (empty until a committer validates the block).
    pub metadata: BlockMetadata,
}

impl Block {
    /// Builds the genesis block from initial (config) transactions.
    pub fn genesis(transactions: Vec<Vec<u8>>) -> Self {
        let data_hash = merkle_root(&transactions);
        Block {
            header: BlockHeader {
                number: 0,
                prev_hash: [0u8; 32],
                data_hash,
            },
            transactions,
            metadata: BlockMetadata::default(),
        }
    }

    /// Builds the successor of `prev` containing `transactions`.
    pub fn next(prev: &BlockHeader, transactions: Vec<Vec<u8>>) -> Self {
        let data_hash = merkle_root(&transactions);
        Block {
            header: BlockHeader {
                number: prev.number + 1,
                prev_hash: prev.hash(),
                data_hash,
            },
            transactions,
            metadata: BlockMetadata::default(),
        }
    }

    /// Recomputes the data hash and compares with the header.
    pub fn data_hash_valid(&self) -> bool {
        merkle_root(&self.transactions) == self.header.data_hash
    }

    /// Header hash shorthand.
    pub fn hash(&self) -> Hash {
        self.header.hash()
    }

    /// Number of transactions in the block.
    pub fn tx_count(&self) -> usize {
        self.transactions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_links_to_zero() {
        let g = Block::genesis(vec![b"cfg".to_vec()]);
        assert_eq!(g.header.number, 0);
        assert_eq!(g.header.prev_hash, [0u8; 32]);
        assert!(g.data_hash_valid());
    }

    #[test]
    fn next_links_to_previous() {
        let g = Block::genesis(vec![]);
        let b1 = Block::next(&g.header, vec![b"tx1".to_vec()]);
        assert_eq!(b1.header.number, 1);
        assert_eq!(b1.header.prev_hash, g.hash());
        assert!(b1.data_hash_valid());
    }

    #[test]
    fn tampered_tx_breaks_data_hash() {
        let mut b = Block::genesis(vec![b"tx".to_vec()]);
        b.transactions[0] = b"forged".to_vec();
        assert!(!b.data_hash_valid());
    }

    #[test]
    fn header_hash_depends_on_all_fields() {
        let g = Block::genesis(vec![b"tx".to_vec()]);
        let mut h2 = g.header.clone();
        h2.number = 5;
        assert_ne!(g.header.hash(), h2.hash());
        let mut h3 = g.header.clone();
        h3.data_hash = [1u8; 32];
        assert_ne!(g.header.hash(), h3.hash());
        let mut h4 = g.header.clone();
        h4.prev_hash = [2u8; 32];
        assert_ne!(g.header.hash(), h4.hash());
    }

    #[test]
    fn validation_codes() {
        assert!(TxValidationCode::Valid.is_valid());
        assert!(!TxValidationCode::MvccConflict.is_valid());
        assert!(!TxValidationCode::EndorsementPolicyFailure.is_valid());
    }

    #[test]
    fn empty_block_is_consistent() {
        let b = Block::genesis(vec![]);
        assert!(b.data_hash_valid());
        assert_eq!(b.tx_count(), 0);
    }
}
