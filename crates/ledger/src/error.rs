//! Ledger substrate error type.

use std::error::Error;
use std::fmt;

/// Errors raised by ledger data structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// A block's number did not continue the chain.
    NonContiguousBlock {
        /// The height the chain expected next.
        expected: u64,
        /// The number the block carried.
        got: u64,
    },
    /// A block's previous-hash link did not match the chain tip.
    BrokenHashChain {
        /// The offending block number.
        block: u64,
    },
    /// A block's data hash did not match its transactions.
    DataHashMismatch {
        /// The offending block number.
        block: u64,
    },
    /// A requested block does not exist.
    BlockNotFound(u64),
    /// A requested transaction id does not exist.
    TxNotFound(String),
    /// A Merkle proof failed verification.
    InvalidMerkleProof,
    /// A Merkle proof was requested for an out-of-range leaf.
    LeafOutOfRange {
        /// The requested leaf index.
        index: usize,
        /// How many leaves the tree has.
        leaves: usize,
    },
    /// A transaction id was already indexed (first write wins; the
    /// existing mapping is authoritative).
    DuplicateTxId(String),
    /// The durable storage backend failed.
    Storage(crate::storage::StorageError),
}

impl From<crate::storage::StorageError> for LedgerError {
    fn from(e: crate::storage::StorageError) -> Self {
        LedgerError::Storage(e)
    }
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::NonContiguousBlock { expected, got } => {
                write!(f, "expected block number {expected}, got {got}")
            }
            LedgerError::BrokenHashChain { block } => {
                write!(f, "block {block} does not link to the previous block hash")
            }
            LedgerError::DataHashMismatch { block } => {
                write!(f, "block {block} data hash does not match its transactions")
            }
            LedgerError::BlockNotFound(n) => write!(f, "block {n} not found"),
            LedgerError::TxNotFound(id) => write!(f, "transaction {id:?} not found"),
            LedgerError::InvalidMerkleProof => write!(f, "merkle proof verification failed"),
            LedgerError::LeafOutOfRange { index, leaves } => {
                write!(f, "leaf index {index} out of range for {leaves} leaves")
            }
            LedgerError::DuplicateTxId(id) => {
                write!(
                    f,
                    "transaction id {id:?} already indexed (first write wins)"
                )
            }
            LedgerError::Storage(e) => write!(f, "storage backend: {e}"),
        }
    }
}

impl Error for LedgerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            LedgerError::NonContiguousBlock {
                expected: 1,
                got: 3,
            },
            LedgerError::BrokenHashChain { block: 2 },
            LedgerError::DataHashMismatch { block: 2 },
            LedgerError::BlockNotFound(9),
            LedgerError::TxNotFound("tx".into()),
            LedgerError::InvalidMerkleProof,
            LedgerError::LeafOutOfRange {
                index: 5,
                leaves: 2,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
