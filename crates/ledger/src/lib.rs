#![warn(missing_docs)]

//! Ledger substrate: the data structures every permissioned blockchain in
//! this workspace is built on.
//!
//! * [`block`] — hash-chained blocks with Merkle data hashes.
//! * [`merkle`] — binary Merkle trees with inclusion proofs.
//! * [`rwset`] — transaction read/write sets (the unit of Fabric-style
//!   execute-order-validate processing).
//! * [`state`] — a versioned key-value world state with MVCC validation.
//! * [`store`] — the append-only block store with integrity checking.
//! * [`history`] — per-key value history for provenance queries.
//! * [`storage`] — durable persistence: a pluggable backend seam with a
//!   WAL + snapshot file backend, crash recovery, and seeded disk-fault
//!   injection.
//!
//! # Example
//!
//! ```
//! use tdt_ledger::block::Block;
//! use tdt_ledger::store::BlockStore;
//!
//! let mut store = BlockStore::new();
//! let genesis = Block::genesis(vec![b"config-tx".to_vec()]);
//! store.append(genesis)?;
//! assert_eq!(store.height(), 1);
//! # Ok::<(), tdt_ledger::LedgerError>(())
//! ```

pub mod block;
pub mod error;
pub mod history;
pub mod merkle;
pub mod rwset;
pub mod state;
pub mod storage;
pub mod store;

pub use error::LedgerError;
