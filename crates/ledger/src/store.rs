//! Append-only block store with chain-integrity checking.

use crate::block::{Block, BlockHeader};
use crate::error::LedgerError;
use crate::merkle::Hash;
use std::collections::HashMap;

/// An append-only store of blocks plus a transaction-id index.
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    blocks: Vec<Block>,
    // txid -> (block number, tx index)
    tx_index: HashMap<String, (u64, usize)>,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Chain height (number of blocks; genesis makes height 1).
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Header of the newest block, if any.
    pub fn tip(&self) -> Option<&BlockHeader> {
        self.blocks.last().map(|b| &b.header)
    }

    /// Appends a block after verifying number, hash link, and data hash.
    ///
    /// # Errors
    ///
    /// * [`LedgerError::NonContiguousBlock`] on a gap or replay.
    /// * [`LedgerError::BrokenHashChain`] on a bad previous-hash link.
    /// * [`LedgerError::DataHashMismatch`] when transactions don't match the
    ///   header commitment.
    // lint:allow(obs: "in-memory validation with no span of its own; the durable caller, FileBackend::append_block or the recovery.replay span in Peer::with_backend, records the error")
    pub fn append(&mut self, block: Block) -> Result<(), LedgerError> {
        let expected = self.height();
        if block.header.number != expected {
            return Err(LedgerError::NonContiguousBlock {
                expected,
                got: block.header.number,
            });
        }
        if let Some(tip) = self.tip() {
            if block.header.prev_hash != tip.hash() {
                return Err(LedgerError::BrokenHashChain {
                    block: block.header.number,
                });
            }
        } else if block.header.prev_hash != [0u8; 32] {
            return Err(LedgerError::BrokenHashChain { block: 0 });
        }
        if !block.data_hash_valid() {
            return Err(LedgerError::DataHashMismatch {
                block: block.header.number,
            });
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Registers a transaction id for lookup via [`BlockStore::find_tx`].
    ///
    /// Duplicates are **first-write-wins**: the chain position a txid was
    /// first committed at is authoritative, and a later colliding id must
    /// not silently redirect [`BlockStore::find_tx`] to a newer payload.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::DuplicateTxId`] when `txid` is already
    /// indexed; the existing mapping is left untouched.
    // lint:allow(obs: "DuplicateTxId is a normal idempotency outcome; the replaying caller decides whether it is an error and records it on its own span")
    pub fn index_tx(
        &mut self,
        txid: impl Into<String>,
        block: u64,
        tx_index: usize,
    ) -> Result<(), LedgerError> {
        match self.tx_index.entry(txid.into()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                Err(LedgerError::DuplicateTxId(e.key().clone()))
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((block, tx_index));
                Ok(())
            }
        }
    }

    /// Fetches a block by number.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::BlockNotFound`] when out of range.
    // lint:allow(obs: "NotFound on a lookup is a normal query outcome, not an incident; the query span in the fabric layer records genuine failures")
    pub fn block(&self, number: u64) -> Result<&Block, LedgerError> {
        self.blocks
            .get(number as usize)
            .ok_or(LedgerError::BlockNotFound(number))
    }

    /// Looks up a transaction payload by id.
    ///
    /// # Errors
    ///
    /// Returns [`LedgerError::TxNotFound`] for unknown ids.
    // lint:allow(obs: "NotFound on a lookup is a normal query outcome, not an incident; the query span in the fabric layer records genuine failures")
    pub fn find_tx(&self, txid: &str) -> Result<&[u8], LedgerError> {
        let (block, idx) = self
            .tx_index
            .get(txid)
            .ok_or_else(|| LedgerError::TxNotFound(txid.to_string()))?;
        let block = self.block(*block)?;
        block
            .transactions
            .get(*idx)
            .map(Vec::as_slice)
            .ok_or_else(|| LedgerError::TxNotFound(txid.to_string()))
    }

    /// Iterates blocks in order.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Verifies the whole chain: links, numbers, and data hashes.
    ///
    /// # Errors
    ///
    /// Returns the first integrity violation found.
    // lint:allow(obs: "pure audit over in-memory state; callers run it under their own recovery.verify or test span and record the violation there")
    pub fn verify_chain(&self) -> Result<(), LedgerError> {
        let mut prev: Option<Hash> = None;
        for (i, block) in self.blocks.iter().enumerate() {
            if block.header.number != i as u64 {
                return Err(LedgerError::NonContiguousBlock {
                    expected: i as u64,
                    got: block.header.number,
                });
            }
            let expected_prev = prev.unwrap_or([0u8; 32]);
            if block.header.prev_hash != expected_prev {
                return Err(LedgerError::BrokenHashChain {
                    block: block.header.number,
                });
            }
            if !block.data_hash_valid() {
                return Err(LedgerError::DataHashMismatch {
                    block: block.header.number,
                });
            }
            prev = Some(block.hash());
        }
        Ok(())
    }

    /// Total number of transactions across all blocks.
    pub fn total_txs(&self) -> usize {
        self.blocks.iter().map(Block::tx_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> BlockStore {
        let mut store = BlockStore::new();
        store.append(Block::genesis(vec![b"cfg".to_vec()])).unwrap();
        for i in 1..n {
            let tip = store.tip().unwrap().clone();
            store
                .append(Block::next(&tip, vec![format!("tx-{i}").into_bytes()]))
                .unwrap();
        }
        store
    }

    #[test]
    fn append_and_height() {
        let store = chain(5);
        assert_eq!(store.height(), 5);
        assert_eq!(store.total_txs(), 5);
        assert!(store.verify_chain().is_ok());
    }

    #[test]
    fn rejects_wrong_number() {
        let mut store = chain(2);
        let tip = store.tip().unwrap().clone();
        let mut block = Block::next(&tip, vec![]);
        block.header.number = 7;
        assert!(matches!(
            store.append(block),
            Err(LedgerError::NonContiguousBlock {
                expected: 2,
                got: 7
            })
        ));
    }

    #[test]
    fn rejects_broken_link() {
        let mut store = chain(2);
        let tip = store.tip().unwrap().clone();
        let mut block = Block::next(&tip, vec![]);
        block.header.prev_hash = [9u8; 32];
        assert!(matches!(
            store.append(block),
            Err(LedgerError::BrokenHashChain { block: 2 })
        ));
    }

    #[test]
    fn rejects_bad_genesis_link() {
        let mut store = BlockStore::new();
        let mut g = Block::genesis(vec![]);
        g.header.prev_hash = [1u8; 32];
        assert!(store.append(g).is_err());
    }

    #[test]
    fn rejects_tampered_data() {
        let mut store = chain(1);
        let tip = store.tip().unwrap().clone();
        let mut block = Block::next(&tip, vec![b"tx".to_vec()]);
        block.transactions[0] = b"changed".to_vec();
        assert!(matches!(
            store.append(block),
            Err(LedgerError::DataHashMismatch { block: 1 })
        ));
    }

    #[test]
    fn block_lookup() {
        let store = chain(3);
        assert_eq!(store.block(0).unwrap().header.number, 0);
        assert_eq!(store.block(2).unwrap().header.number, 2);
        assert_eq!(store.block(3).unwrap_err(), LedgerError::BlockNotFound(3));
    }

    #[test]
    fn tx_index_lookup() {
        let mut store = chain(3);
        store.index_tx("tx-1", 1, 0).unwrap();
        assert_eq!(store.find_tx("tx-1").unwrap(), b"tx-1");
        assert_eq!(
            store.find_tx("missing").unwrap_err(),
            LedgerError::TxNotFound("missing".into())
        );
    }

    #[test]
    fn duplicate_txid_is_first_write_wins() {
        let mut store = chain(3);
        store.index_tx("tx-1", 1, 0).unwrap();
        // A later block smuggling the same txid must not redirect lookup.
        assert_eq!(
            store.index_tx("tx-1", 2, 0),
            Err(LedgerError::DuplicateTxId("tx-1".into()))
        );
        assert_eq!(store.find_tx("tx-1").unwrap(), b"tx-1");
    }

    #[test]
    fn verify_chain_detects_retroactive_tampering() {
        let mut store = chain(4);
        // Tamper with a middle block's payload directly.
        store.blocks[2].transactions[0] = b"forged".to_vec();
        assert!(matches!(
            store.verify_chain(),
            Err(LedgerError::DataHashMismatch { block: 2 })
        ));
    }

    #[test]
    fn iter_in_order() {
        let store = chain(3);
        let numbers: Vec<u64> = store.iter().map(|b| b.header.number).collect();
        assert_eq!(numbers, vec![0, 1, 2]);
    }
}
