//! Dependency-free binary codec for persisted ledger records.
//!
//! Every on-disk structure (WAL block records, snapshots) is encoded with
//! this fixed, versioned format: big-endian fixed-width integers and
//! `u32` length prefixes — no reflection, no external crates, and a
//! decoder that treats *every* malformed input as [`DecodeError`] rather
//! than panicking (the corruption proptests hold it to that).

use crate::block::{Block, BlockHeader, BlockMetadata, TxValidationCode};
use crate::history::{HistoryEntry, HistoryIndex};
use crate::rwset::Version;
use crate::state::{VersionedValue, WorldState};
use std::fmt;

/// Decoding failed: the input is truncated, oversized, or malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Hard cap on any single length prefix (64 MiB): a corrupt length must
/// not translate into an allocation bomb.
const MAX_LEN: usize = 64 * 1024 * 1024;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3), table-driven
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // lint:allow(panic: "const-time table build; i < 256 by loop bound")
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// IEEE CRC32 of `bytes` — the frame checksum for WAL records and
/// snapshots.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        // lint:allow(panic: "index masked with & 0xff, always < 256")
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Primitive writers / reader
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Big-endian fold of up to 8 bytes into a `u64` (index-free).
pub(crate) fn be_fold(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0u64, |acc, &b| (acc << 8) | u64::from(b))
}

/// A bounds-checked cursor over encoded bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| DecodeError("length overflow".to_string()))?;
        match self.buf.get(self.pos..end) {
            Some(slice) => {
                self.pos = end;
                Ok(slice)
            }
            None => Err(DecodeError(format!(
                "need {n} bytes, have {}",
                self.remaining()
            ))),
        }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(be_fold(self.take(4)?) as u32)
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(be_fold(self.take(8)?))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.u32()? as usize;
        if len > MAX_LEN {
            return Err(DecodeError(format!("length {len} exceeds cap {MAX_LEN}")));
        }
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.bytes()?).map_err(|e| DecodeError(format!("invalid utf-8: {e}")))
    }

    fn hash(&mut self) -> Result<[u8; 32], DecodeError> {
        let b = self.take(32)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(b);
        Ok(out)
    }

    /// A bounded count prefix: corrupt counts must not become allocation
    /// or spin bombs.
    fn count(&mut self, max: usize, what: &str) -> Result<usize, DecodeError> {
        let n = self.u64()? as usize;
        if n > max {
            return Err(DecodeError(format!("{what} count {n} exceeds cap {max}")));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Block
// ---------------------------------------------------------------------------

fn code_to_u8(code: TxValidationCode) -> u8 {
    match code {
        TxValidationCode::Valid => 0,
        TxValidationCode::MvccConflict => 1,
        TxValidationCode::EndorsementPolicyFailure => 2,
        TxValidationCode::BadEndorsementSignature => 3,
        TxValidationCode::BadPayload => 4,
    }
}

fn code_from_u8(v: u8) -> Result<TxValidationCode, DecodeError> {
    Ok(match v {
        0 => TxValidationCode::Valid,
        1 => TxValidationCode::MvccConflict,
        2 => TxValidationCode::EndorsementPolicyFailure,
        3 => TxValidationCode::BadEndorsementSignature,
        4 => TxValidationCode::BadPayload,
        other => return Err(DecodeError(format!("unknown validation code {other}"))),
    })
}

/// Encodes a block (header, payloads, validation metadata) for the WAL.
pub fn encode_block(block: &Block) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + block.transactions.iter().map(Vec::len).sum::<usize>());
    put_u64(&mut out, block.header.number);
    out.extend_from_slice(&block.header.prev_hash);
    out.extend_from_slice(&block.header.data_hash);
    put_u64(&mut out, block.transactions.len() as u64);
    for tx in &block.transactions {
        put_bytes(&mut out, tx);
    }
    put_u64(&mut out, block.metadata.tx_validation.len() as u64);
    for code in &block.metadata.tx_validation {
        out.push(code_to_u8(*code));
    }
    out
}

/// Decodes one block; the whole input must be consumed.
pub fn decode_block(bytes: &[u8]) -> Result<Block, DecodeError> {
    let mut r = Reader::new(bytes);
    let number = r.u64()?;
    let prev_hash = r.hash()?;
    let data_hash = r.hash()?;
    let ntx = r.count(1 << 24, "tx")?;
    let mut transactions = Vec::with_capacity(ntx.min(1024));
    for _ in 0..ntx {
        transactions.push(r.bytes()?);
    }
    let nmeta = r.count(1 << 24, "validation-code")?;
    let mut tx_validation = Vec::with_capacity(nmeta.min(1024));
    for _ in 0..nmeta {
        tx_validation.push(code_from_u8(r.u8()?)?);
    }
    if r.remaining() != 0 {
        return Err(DecodeError(format!(
            "{} trailing bytes after block",
            r.remaining()
        )));
    }
    Ok(Block {
        header: BlockHeader {
            number,
            prev_hash,
            data_hash,
        },
        transactions,
        metadata: BlockMetadata { tx_validation },
    })
}

// ---------------------------------------------------------------------------
// Snapshot payload: world state + history index
// ---------------------------------------------------------------------------

fn put_version(out: &mut Vec<u8>, v: Version) {
    put_u64(out, v.block);
    put_u64(out, v.tx);
}

fn read_version(r: &mut Reader<'_>) -> Result<Version, DecodeError> {
    Ok(Version::new(r.u64()?, r.u64()?))
}

/// Encodes the world state: sorted `(namespace, key, version, value)`
/// entries (BTreeMap order, so byte-deterministic across replicas).
pub fn encode_world_state(state: &WorldState) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, state.len() as u64);
    for ((namespace, key), entry) in state.iter_entries() {
        put_str(&mut out, namespace);
        put_str(&mut out, key);
        put_version(&mut out, entry.version);
        put_bytes(&mut out, &entry.value);
    }
    out
}

/// Decodes a world state from `r`.
pub fn decode_world_state(r: &mut Reader<'_>) -> Result<WorldState, DecodeError> {
    let n = r.count(1 << 28, "state entry")?;
    let mut state = WorldState::new();
    for _ in 0..n {
        let namespace = r.string()?;
        let key = r.string()?;
        let version = read_version(r)?;
        let value = r.bytes()?;
        state.insert_recovered(namespace, key, VersionedValue { value, version });
    }
    Ok(state)
}

/// Encodes the history index: entries sorted by `(namespace, key)` so the
/// encoding is deterministic even though the index is a `HashMap`.
pub fn encode_history(history: &HistoryIndex) -> Vec<u8> {
    let mut keys: Vec<(&(String, String), &Vec<HistoryEntry>)> = history.iter_entries().collect();
    keys.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = Vec::new();
    put_u64(&mut out, keys.len() as u64);
    for ((namespace, key), entries) in keys {
        put_str(&mut out, namespace);
        put_str(&mut out, key);
        put_u64(&mut out, entries.len() as u64);
        for e in entries {
            put_version(&mut out, e.version);
            match &e.value {
                Some(v) => {
                    out.push(1);
                    put_bytes(&mut out, v);
                }
                None => out.push(0),
            }
        }
    }
    out
}

/// Decodes a history index from `r`.
pub fn decode_history(r: &mut Reader<'_>) -> Result<HistoryIndex, DecodeError> {
    let nkeys = r.count(1 << 28, "history key")?;
    let mut history = HistoryIndex::new();
    for _ in 0..nkeys {
        let namespace = r.string()?;
        let key = r.string()?;
        let nentries = r.count(1 << 28, "history entry")?;
        let mut entries = Vec::with_capacity(nentries.min(1024));
        for _ in 0..nentries {
            let version = read_version(r)?;
            let value = match r.u8()? {
                0 => None,
                1 => Some(r.bytes()?),
                other => return Err(DecodeError(format!("bad history value tag {other}"))),
            };
            entries.push(HistoryEntry { version, value });
        }
        history.insert_recovered(namespace, key, entries);
    }
    Ok(history)
}

/// Encodes a full snapshot payload (height, state hash, state, history).
pub fn encode_snapshot_payload(
    height: u64,
    state_hash: &[u8; 32],
    state: &WorldState,
    history: &HistoryIndex,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, height);
    out.extend_from_slice(state_hash);
    let state_bytes = encode_world_state(state);
    put_u32(&mut out, state_bytes.len() as u32);
    out.extend_from_slice(&state_bytes);
    let history_bytes = encode_history(history);
    put_u32(&mut out, history_bytes.len() as u32);
    out.extend_from_slice(&history_bytes);
    out
}

/// The decoded snapshot payload.
pub struct SnapshotPayload {
    /// Chain height the snapshot was taken at (number of blocks applied).
    pub height: u64,
    /// `WorldState::state_hash()` recorded by the writer.
    pub state_hash: [u8; 32],
    /// The world state at `height`.
    pub state: WorldState,
    /// The history index at `height`.
    pub history: HistoryIndex,
}

/// Decodes a snapshot payload; the whole input must be consumed.
pub fn decode_snapshot_payload(bytes: &[u8]) -> Result<SnapshotPayload, DecodeError> {
    let mut r = Reader::new(bytes);
    let height = r.u64()?;
    let state_hash = r.hash()?;
    let state_len = r.u32()? as usize;
    if state_len > r.remaining() {
        return Err(DecodeError("state section truncated".to_string()));
    }
    let state = decode_world_state(&mut r)?;
    let _history_len = r.u32()? as usize;
    let history = decode_history(&mut r)?;
    if r.remaining() != 0 {
        return Err(DecodeError(format!(
            "{} trailing bytes after snapshot",
            r.remaining()
        )));
    }
    Ok(SnapshotPayload {
        height,
        state_hash,
        state,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwset::TxRwSet;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    #[test]
    fn block_roundtrip() {
        let mut block = Block::genesis(vec![b"cfg".to_vec(), Vec::new(), vec![0u8; 300]]);
        block.metadata.tx_validation = vec![
            TxValidationCode::Valid,
            TxValidationCode::MvccConflict,
            TxValidationCode::BadPayload,
        ];
        let encoded = encode_block(&block);
        assert_eq!(decode_block(&encoded).unwrap(), block);
    }

    #[test]
    fn block_decode_rejects_truncation_everywhere() {
        let block = Block::genesis(vec![b"tx-payload".to_vec()]);
        let encoded = encode_block(&block);
        for cut in 0..encoded.len() {
            assert!(
                decode_block(&encoded[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn block_decode_rejects_trailing_garbage() {
        let block = Block::genesis(vec![]);
        let mut encoded = encode_block(&block);
        encoded.push(0);
        assert!(decode_block(&encoded).is_err());
    }

    #[test]
    fn block_decode_rejects_bad_code() {
        let mut block = Block::genesis(vec![b"t".to_vec()]);
        block.metadata.tx_validation = vec![TxValidationCode::Valid];
        let mut encoded = encode_block(&block);
        let last = encoded.len() - 1;
        encoded[last] = 99;
        assert!(decode_block(&encoded).is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocating() {
        let mut bytes = Vec::new();
        put_u64(&mut bytes, 1); // number
        bytes.extend_from_slice(&[0u8; 64]); // hashes
        put_u64(&mut bytes, u64::MAX); // tx count bomb
        assert!(decode_block(&bytes).is_err());
    }

    fn sample_state_history() -> (WorldState, HistoryIndex) {
        let mut state = WorldState::new();
        let mut history = HistoryIndex::new();
        for i in 0..20u64 {
            let mut rw = TxRwSet::new();
            rw.record_write("cc", &format!("k{i:02}"), Some(vec![i as u8; 8]));
            if i % 5 == 0 {
                rw.record_write("other", "shared", Some(vec![i as u8]));
            }
            let version = Version::new(i / 4 + 1, i % 4);
            state.apply(&rw, version);
            history.record(&rw, version);
        }
        (state, history)
    }

    #[test]
    fn snapshot_payload_roundtrip() {
        let (state, history) = sample_state_history();
        let hash = state.state_hash();
        let bytes = encode_snapshot_payload(21, &hash, &state, &history);
        let decoded = decode_snapshot_payload(&bytes).unwrap();
        assert_eq!(decoded.height, 21);
        assert_eq!(decoded.state_hash, hash);
        assert_eq!(decoded.state.state_hash(), hash);
        assert_eq!(decoded.state.len(), state.len());
        assert_eq!(decoded.history.key_count(), history.key_count());
        assert_eq!(
            decoded.history.history("other", "shared"),
            history.history("other", "shared")
        );
    }

    #[test]
    fn snapshot_encoding_is_deterministic() {
        let (state, history) = sample_state_history();
        let hash = state.state_hash();
        let a = encode_snapshot_payload(5, &hash, &state, &history);
        let b = encode_snapshot_payload(5, &hash, &state, &history);
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_truncation_always_errors() {
        let (state, history) = sample_state_history();
        let hash = state.state_hash();
        let bytes = encode_snapshot_payload(9, &hash, &state, &history);
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot_payload(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }
}
