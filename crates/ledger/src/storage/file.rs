//! The file-backed [`StorageBackend`]: append-only WAL + periodic
//! snapshots + crash recovery, all over the [`Vfs`] seam.
//!
//! # Files
//!
//! ```text
//! wal.log                 CRC-framed block records (wal.rs)
//! snap-<height-20d>.snap  "TDTSNAP1" + payload + crc32(payload)
//! snap-<height-20d>.tmp   in-flight snapshot (removed by recovery)
//! ```
//!
//! # Recovery algorithm
//!
//! 1. Scan the WAL front-to-back; trust ends at the first bad frame.
//! 2. Chain-verify the scanned blocks (numbers, hash links, Merkle data
//!    hashes); trust ends at the first violation.
//! 3. Physically truncate the WAL to the trusted region.
//! 4. Walk snapshots newest-first; the first one that parses, passes its
//!    CRC, recomputes to its recorded `state_hash`, and is not ahead of
//!    the truncated chain wins. Everything else is a counted fallback.
//! 5. Hand the caller the verified chain + snapshot; the caller replays
//!    blocks past the snapshot height to rebuild derived state.
//!
//! # Fail-stop contract
//!
//! Any failed append poisons the backend: the WAL tail is in an unknown
//! state, and appending after garbage would strand durable blocks behind
//! an undecodable frame. Reopening (a fresh backend + [`FileBackend::load`])
//! truncates the bad tail and resumes — the same discipline a real peer
//! applies by restarting after an fsync error (the fsyncgate lesson).

use super::codec;
use super::vfs::{Vfs, VfsError};
use super::wal::{Wal, WalScan, WAL_MAGIC};
use super::{
    recovery_phase, Recovered, RecoveryReport, Snapshot, StorageBackend, StorageError, StorageStats,
};
use crate::block::Block;
use std::sync::Arc;
use std::time::Instant;
use tdt_obs::span::{self as obs_span, RecordErr};
use tdt_obs::TraceContext;

/// The WAL file name inside the backend's directory/namespace.
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file prefix.
pub const SNAP_PREFIX: &str = "snap-";
/// Snapshot file suffix.
pub const SNAP_SUFFIX: &str = ".snap";
/// In-flight snapshot suffix (atomically renamed to `.snap`).
pub const SNAP_TMP_SUFFIX: &str = ".tmp";
/// Snapshot file magic + version.
pub const SNAP_MAGIC: &[u8; 8] = b"TDTSNAP1";

/// Tuning knobs for the file backend.
#[derive(Debug, Clone)]
pub struct FileConfig {
    /// Write a snapshot every N blocks (0 disables snapshots).
    pub snapshot_interval: u64,
    /// How many verified snapshots to keep on disk.
    pub keep_snapshots: usize,
}

impl Default for FileConfig {
    fn default() -> Self {
        FileConfig {
            snapshot_interval: 64,
            keep_snapshots: 2,
        }
    }
}

fn snap_name(height: u64) -> String {
    // Zero-padded so lexical order == numeric order for Vfs::list.
    format!("{SNAP_PREFIX}{height:020}{SNAP_SUFFIX}")
}

fn snap_height(name: &str) -> Option<u64> {
    name.strip_prefix(SNAP_PREFIX)?
        .strip_suffix(SNAP_SUFFIX)?
        .parse()
        .ok()
}

/// The durable file backend. One instance owns one VFS namespace; drop
/// it and reopen (with [`FileBackend::load`]) to run recovery.
#[derive(Debug)]
pub struct FileBackend {
    vfs: Arc<dyn Vfs>,
    config: FileConfig,
    stats: Arc<StorageStats>,
    /// Next block number the WAL expects (== recovered chain height).
    expected_next: u64,
    /// Hash of the chain tip (zeroes before genesis).
    prev_hash: [u8; 32],
    /// Current WAL length, maintained incrementally after load.
    wal_bytes: u64,
    /// Set by any failed append; cleared only by reopening.
    poisoned: bool,
    loaded: bool,
}

impl FileBackend {
    /// A backend over `vfs` with `config`. Call
    /// [`StorageBackend::load`] before appending.
    pub fn new(vfs: Arc<dyn Vfs>, config: FileConfig) -> FileBackend {
        FileBackend {
            vfs,
            config,
            stats: Arc::new(StorageStats::new()),
            expected_next: 0,
            prev_hash: [0u8; 32],
            wal_bytes: 0,
            poisoned: false,
            loaded: false,
        }
    }

    /// Chain-verifies scanned blocks; returns how many form a valid
    /// prefix (numbers contiguous from 0, hash links intact, Merkle data
    /// hashes matching).
    fn verified_prefix(blocks: &[Block]) -> usize {
        let mut prev = [0u8; 32];
        for (i, block) in blocks.iter().enumerate() {
            if block.header.number != i as u64
                || block.header.prev_hash != prev
                || !block.data_hash_valid()
            {
                return i;
            }
            prev = block.hash();
        }
        blocks.len()
    }

    /// Reads and fully verifies one snapshot file; any defect is an `Err`
    /// so the caller can fall back to an older snapshot.
    fn read_snapshot(&self, name: &str) -> Result<Snapshot, String> {
        let bytes = self.vfs.read(name).map_err(|e| e.to_string())?;
        if !bytes.starts_with(SNAP_MAGIC) {
            return Err("bad snapshot magic".to_string());
        }
        if bytes.len() < SNAP_MAGIC.len() + 4 {
            return Err("snapshot too short".to_string());
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let payload = body.get(SNAP_MAGIC.len()..).unwrap_or(&[]);
        if codec::crc32(payload) != codec::be_fold(crc_bytes) as u32 {
            return Err("snapshot crc mismatch".to_string());
        }
        let decoded = codec::decode_snapshot_payload(payload).map_err(|e| e.to_string())?;
        if decoded.state.state_hash() != decoded.state_hash {
            return Err("snapshot state hash mismatch".to_string());
        }
        Ok(Snapshot {
            height: decoded.height,
            state_hash: decoded.state_hash,
            state: decoded.state,
            history: decoded.history,
        })
    }

    /// Picks the newest usable snapshot for a chain of `chain_height`
    /// blocks, counting every rejected candidate as a fallback.
    fn load_snapshot(&self, chain_height: u64, fallbacks: &mut u64) -> Option<Snapshot> {
        let names = self.vfs.list(SNAP_PREFIX).unwrap_or_default();
        for name in names.iter().rev() {
            if name.ends_with(SNAP_TMP_SUFFIX) {
                // An in-flight snapshot that never got renamed: garbage.
                let _ = self.vfs.remove(name);
                continue;
            }
            let Some(height) = snap_height(name) else {
                *fallbacks += 1;
                continue;
            };
            if height > chain_height {
                // The WAL was truncated below this snapshot; replay
                // cannot reach it, so it is unusable.
                *fallbacks += 1;
                continue;
            }
            match self.read_snapshot(name) {
                Ok(snapshot) if snapshot.height == height => return Some(snapshot),
                _ => *fallbacks += 1,
            }
        }
        None
    }

    /// Deletes all but the newest `keep_snapshots` snapshot files
    /// (best-effort; GC failure never fails a commit).
    fn gc_snapshots(&self) {
        let Ok(names) = self.vfs.list(SNAP_PREFIX) else {
            return;
        };
        let snaps: Vec<&String> = names.iter().filter(|n| n.ends_with(SNAP_SUFFIX)).collect();
        let keep = self.config.keep_snapshots.max(1);
        let excess = snaps.len().saturating_sub(keep);
        for name in snaps.iter().take(excess) {
            let _ = self.vfs.remove(name);
        }
    }
}

impl StorageBackend for FileBackend {
    fn load(&mut self) -> Result<Recovered, StorageError> {
        let start = Instant::now();
        // Recovery runs at process startup, before any trace exists:
        // mint a root context so its per-phase spans actually record
        // (they are the only forensic trail for a recovery that hangs
        // or truncates data). No-op when the caller already has one.
        let _trace_guard = match TraceContext::current() {
            Some(_) => tdt_obs::ContextGuard::noop(),
            None => TraceContext::root().install(),
        };
        let (mut load_span, _load_guard) = obs_span::enter("recovery.load");

        self.stats
            .set_recovery_phase(recovery_phase::SCAN, self.wal_bytes);
        let scan_outcome = {
            tdt_obs::profile_scope!("recovery.scan");
            let (mut span, _guard) = obs_span::enter("recovery.scan");
            let wal = Wal::new(&*self.vfs, WAL_FILE);
            wal.scan().record_err(&mut span)
        };
        let WalScan {
            mut blocks,
            offsets,
            mut valid_len,
            file_len,
            tail,
        } = match scan_outcome {
            Ok(scan) => scan,
            Err(e) => {
                self.stats.set_recovery_phase(recovery_phase::IDLE, 0);
                load_span.fail(&e.to_string());
                return Err(e.into());
            }
        };
        self.stats.set_recovery_blocks_scanned(blocks.len() as u64);
        let mut tail_reason = tail.map(|t| t.to_string());

        // Frames can be CRC-clean yet chain-broken (a writer bug or a
        // surgically flipped bit that CRC32 happens to collide on): the
        // Merkle/link verification is the final authority.
        self.stats
            .set_recovery_phase(recovery_phase::VERIFY, blocks.len() as u64);
        let keep = {
            let (mut span, _guard) = obs_span::enter("recovery.verify");
            let keep = Self::verified_prefix(&blocks);
            if keep < blocks.len() {
                span.fail(&format!("chain verification failed at block {keep}"));
            }
            keep
        };
        if keep < blocks.len() {
            tail_reason = Some(format!("chain verification failed at block {keep}"));
            blocks.truncate(keep);
            valid_len = match keep.checked_sub(1).and_then(|i| offsets.get(i)) {
                Some(end) => *end,
                None => WAL_MAGIC.len() as u64,
            };
        }

        let truncated = file_len.saturating_sub(valid_len);
        if truncated > 0 || tail_reason.is_some() {
            self.stats
                .set_recovery_phase(recovery_phase::TRUNCATE, truncated);
            let (mut span, _guard) = obs_span::enter("recovery.truncate");
            let wal = Wal::new(&*self.vfs, WAL_FILE);
            if let Err(e) = wal.truncate_to(valid_len).record_err(&mut span) {
                self.stats.set_recovery_phase(recovery_phase::IDLE, 0);
                load_span.fail(&e.to_string());
                return Err(e.into());
            }
            self.stats.note_wal_truncation(truncated);
        }

        let chain_height = blocks.len() as u64;
        self.stats
            .set_recovery_phase(recovery_phase::SNAPSHOT, chain_height);
        let mut fallbacks = 0u64;
        let snapshot = {
            let (mut span, _guard) = obs_span::enter("recovery.snapshot");
            let snapshot = self.load_snapshot(chain_height, &mut fallbacks);
            if snapshot.is_none() && fallbacks > 0 {
                span.fail(&format!("all {fallbacks} snapshot candidates rejected"));
            }
            snapshot
        };
        for _ in 0..fallbacks {
            self.stats.note_snapshot_fallback();
        }
        let snapshot_height = snapshot.as_ref().map(|s| s.height);

        self.expected_next = chain_height;
        self.prev_hash = blocks.last().map_or([0u8; 32], Block::hash);
        // A repaired all-garbage file is recreated as a bare header.
        self.wal_bytes = if valid_len >= WAL_MAGIC.len() as u64 {
            valid_len
        } else if self.vfs.exists(WAL_FILE) {
            WAL_MAGIC.len() as u64
        } else {
            0
        };
        self.poisoned = false;
        self.loaded = true;

        let report = RecoveryReport {
            chain_height,
            wal_bytes: self.wal_bytes,
            truncated_bytes: truncated,
            tail: tail_reason,
            snapshot_height,
            snapshot_fallbacks: fallbacks,
            replayed_blocks: chain_height - snapshot_height.unwrap_or(0),
            duration_ns: start.elapsed().as_nanos() as u64,
        };
        self.stats.note_recovery(&report);
        // Replay of blocks past the snapshot is the *caller's* phase
        // (see `tdt_fabric::Peer::with_backend`); storage-level recovery
        // is done here.
        self.stats
            .set_recovery_phase(recovery_phase::IDLE, chain_height);
        Ok(Recovered {
            blocks,
            snapshot,
            report,
        })
    }

    fn append_block(&mut self, block: &Block) -> Result<(), StorageError> {
        if self.poisoned || !self.loaded {
            return Err(StorageError::Poisoned);
        }
        if block.header.number != self.expected_next || block.header.prev_hash != self.prev_hash {
            return Err(StorageError::NotNextBlock {
                expected: self.expected_next,
                got: block.header.number,
            });
        }
        tdt_obs::profile_scope!("wal.append");
        match Wal::new(&*self.vfs, WAL_FILE).append_block(block) {
            Ok(frame_len) => {
                if self.wal_bytes == 0 {
                    self.wal_bytes = WAL_MAGIC.len() as u64;
                }
                self.wal_bytes += frame_len;
                self.expected_next += 1;
                self.prev_hash = block.hash();
                self.stats.note_wal_append(self.wal_bytes);
                self.stats.set_chain_height(self.expected_next);
                tdt_obs::flight::record(
                    tdt_obs::FlightKind::WalAppend,
                    0,
                    block.header.number,
                    frame_len,
                );
                Ok(())
            }
            Err(e) => {
                // The WAL tail is now suspect (possibly a torn frame):
                // fail stop until a reopen truncates it.
                self.poisoned = true;
                Err(StorageError::Vfs(e))
            }
        }
    }

    fn snapshot_due(&self, height: u64) -> bool {
        !self.poisoned
            && self.config.snapshot_interval > 0
            && height > 0
            && height.is_multiple_of(self.config.snapshot_interval)
    }

    fn write_snapshot(&mut self, snapshot: &Snapshot) -> Result<(), StorageError> {
        if self.poisoned || !self.loaded {
            return Err(StorageError::Poisoned);
        }
        let payload = codec::encode_snapshot_payload(
            snapshot.height,
            &snapshot.state_hash,
            &snapshot.state,
            &snapshot.history,
        );
        let mut bytes = SNAP_MAGIC.to_vec();
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&codec::crc32(&payload).to_be_bytes());
        let tmp = format!("{SNAP_PREFIX}{:020}{SNAP_TMP_SUFFIX}", snapshot.height);
        let result = self
            .vfs
            .create(&tmp, &bytes)
            .and_then(|()| self.vfs.sync(&tmp))
            .and_then(|()| self.vfs.rename(&tmp, &snap_name(snapshot.height)));
        match result {
            Ok(()) => {
                self.stats.note_snapshot_written(snapshot.height);
                self.gc_snapshots();
                Ok(())
            }
            Err(e) => {
                self.stats.note_snapshot_failure();
                if matches!(e, VfsError::Crashed { .. }) {
                    // The process is "dead"; the next append will fail
                    // anyway, but poisoning makes the state explicit.
                    self.poisoned = true;
                } else {
                    // A lost fsync during the snapshot may have dropped
                    // the whole page cache; WAL appends are fsynced per
                    // record, so committed blocks are safe — but the
                    // half-written temp file is garbage.
                    let _ = self.vfs.remove(&tmp);
                }
                Err(StorageError::Vfs(e))
            }
        }
    }

    fn stats(&self) -> Arc<StorageStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::super::vfs::MemVfs;
    use super::*;
    use crate::block::Block;
    use crate::history::HistoryIndex;
    use crate::rwset::{TxRwSet, Version};
    use crate::state::WorldState;

    fn chain(n: usize) -> Vec<Block> {
        let mut blocks = vec![Block::genesis(vec![b"cfg".to_vec()])];
        for i in 1..n {
            let prev = blocks[i - 1].header.clone();
            blocks.push(Block::next(&prev, vec![format!("tx-{i}").into_bytes()]));
        }
        blocks
    }

    fn open(vfs: &Arc<MemVfs>) -> (FileBackend, Recovered) {
        let mut backend = FileBackend::new(
            Arc::clone(vfs) as Arc<dyn Vfs>,
            FileConfig {
                snapshot_interval: 4,
                keep_snapshots: 2,
            },
        );
        let recovered = backend.load().unwrap();
        (backend, recovered)
    }

    #[test]
    fn append_reopen_recovers_everything() {
        let vfs = Arc::new(MemVfs::new());
        let blocks = chain(6);
        {
            let (mut backend, recovered) = open(&vfs);
            assert_eq!(recovered.report.chain_height, 0);
            for b in &blocks {
                backend.append_block(b).unwrap();
            }
        }
        let (_backend, recovered) = open(&vfs);
        assert_eq!(recovered.blocks, blocks);
        assert_eq!(recovered.report.chain_height, 6);
        assert_eq!(recovered.report.truncated_bytes, 0);
    }

    #[test]
    fn unsynced_suffix_lost_on_crash_but_prefix_survives() {
        let vfs = Arc::new(MemVfs::new());
        let blocks = chain(4);
        let (mut backend, _) = open(&vfs);
        for b in &blocks {
            backend.append_block(b).unwrap();
        }
        // Torn garbage after the last record, never synced.
        vfs.append(WAL_FILE, b"half-a-frame").unwrap();
        vfs.crash();
        let (_backend, recovered) = open(&vfs);
        assert_eq!(recovered.blocks, blocks);
    }

    #[test]
    fn append_requires_chain_extension() {
        let vfs = Arc::new(MemVfs::new());
        let blocks = chain(3);
        let (mut backend, _) = open(&vfs);
        backend.append_block(&blocks[0]).unwrap();
        // Skipping block 1 is rejected.
        assert!(matches!(
            backend.append_block(&blocks[2]),
            Err(StorageError::NotNextBlock {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn snapshot_roundtrip_and_gc() {
        let vfs = Arc::new(MemVfs::new());
        let (mut backend, _) = open(&vfs);
        let blocks = chain(9);
        let mut state = WorldState::new();
        let history = HistoryIndex::new();
        for (i, b) in blocks.iter().enumerate() {
            backend.append_block(b).unwrap();
            let mut rw = TxRwSet::new();
            rw.record_write("cc", &format!("k{i}"), Some(vec![i as u8]));
            state.apply(&rw, Version::new(i as u64, 0));
            let height = i as u64 + 1;
            if backend.snapshot_due(height) {
                backend
                    .write_snapshot(&Snapshot::capture(height, &state, &history))
                    .unwrap();
            }
        }
        // interval=4, 9 blocks -> snapshots at 4 and 8; keep=2 keeps both.
        let snaps = vfs.list(SNAP_PREFIX).unwrap();
        assert_eq!(snaps, vec![snap_name(4), snap_name(8)]);
        let (_backend, recovered) = open(&vfs);
        assert_eq!(recovered.report.snapshot_height, Some(8));
        assert_eq!(recovered.report.replayed_blocks, 1);
        let snap = recovered.snapshot.unwrap();
        assert_eq!(snap.state.state_hash(), snap.state_hash);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous() {
        let vfs = Arc::new(MemVfs::new());
        let (mut backend, _) = open(&vfs);
        let blocks = chain(9);
        let state = WorldState::new();
        let history = HistoryIndex::new();
        for (i, b) in blocks.iter().enumerate() {
            backend.append_block(b).unwrap();
            let height = i as u64 + 1;
            if backend.snapshot_due(height) {
                backend
                    .write_snapshot(&Snapshot::capture(height, &state, &history))
                    .unwrap();
            }
        }
        // Rot a byte in the newest snapshot's payload.
        vfs.corrupt(&snap_name(8), SNAP_MAGIC.len() + 3, 0xff)
            .unwrap();
        let (_backend, recovered) = open(&vfs);
        assert_eq!(recovered.report.snapshot_height, Some(4));
        assert!(recovered.report.snapshot_fallbacks >= 1);
        // Losing every snapshot still loses no blocks.
        vfs.corrupt(&snap_name(4), SNAP_MAGIC.len() + 3, 0xff)
            .unwrap();
        let (_backend, recovered) = open(&vfs);
        assert_eq!(recovered.report.snapshot_height, None);
        assert_eq!(recovered.blocks.len(), 9);
    }

    #[test]
    fn chain_violation_inside_crc_clean_wal_is_cut() {
        let vfs = Arc::new(MemVfs::new());
        let (mut backend, _) = open(&vfs);
        for b in chain(3) {
            backend.append_block(&b).unwrap();
        }
        // Hand-append a CRC-valid frame whose block doesn't link.
        let rogue = Block::genesis(vec![b"rogue".to_vec()]);
        let frame = Wal::encode_frame(&codec::encode_block(&rogue));
        vfs.append(WAL_FILE, &frame).unwrap();
        vfs.sync(WAL_FILE).unwrap();
        let (_backend, recovered) = open(&vfs);
        assert_eq!(recovered.blocks.len(), 3);
        assert!(recovered
            .report
            .tail
            .as_deref()
            .is_some_and(|t| t.contains("chain verification")));
        // The rogue frame was physically truncated.
        let (_backend, again) = open(&vfs);
        assert_eq!(again.report.truncated_bytes, 0);
    }

    #[test]
    fn poisoned_after_failed_append_until_reopen() {
        let vfs = Arc::new(MemVfs::new());
        let (mut backend, _) = open(&vfs);
        backend.append_block(&chain(1)[0]).unwrap();
        backend.poisoned = true;
        assert!(matches!(
            backend.append_block(&chain(2)[1]),
            Err(StorageError::Poisoned)
        ));
        let (mut backend, recovered) = open(&vfs);
        assert_eq!(recovered.blocks.len(), 1);
        backend.append_block(&chain(2)[1]).unwrap();
    }

    #[test]
    fn append_before_load_is_rejected() {
        let vfs = Arc::new(MemVfs::new());
        let mut backend = FileBackend::new(Arc::clone(&vfs) as Arc<dyn Vfs>, FileConfig::default());
        assert!(matches!(
            backend.append_block(&chain(1)[0]),
            Err(StorageError::Poisoned)
        ));
    }

    #[test]
    fn leftover_tmp_snapshot_is_cleaned_up() {
        let vfs = Arc::new(MemVfs::new());
        vfs.create("snap-00000000000000000004.tmp", b"partial")
            .unwrap();
        let (_backend, recovered) = open(&vfs);
        assert_eq!(recovered.report.snapshot_height, None);
        assert!(!vfs.exists("snap-00000000000000000004.tmp"));
    }
}
