//! Durable storage for the ledger: a pluggable [`StorageBackend`] seam
//! with an in-memory backend (the pre-durability behaviour) and a
//! dependency-free file backend (WAL + snapshots + crash recovery).
//!
//! # Layering
//!
//! ```text
//! fabric::peer  ──────  StorageBackend (this module)
//!                         ├── InMemoryBackend      (volatile, tests/demo)
//!                         └── FileBackend (file.rs)
//!                               ├── Wal        (wal.rs, CRC-framed records)
//!                               ├── snapshots  (temp + fsync + rename)
//!                               └── Vfs        (vfs.rs seam)
//!                                     ├── StdVfs   (real directory)
//!                                     ├── MemVfs   (explicit durability line)
//!                                     └── FaultVfs (fault.rs, seeded faults)
//! ```
//!
//! # Contract
//!
//! The backend owns *bytes*, not semantics: the peer validates blocks,
//! the backend makes them durable. Once [`StorageBackend::append_block`]
//! returns `Ok`, the block must survive any crash — that is the property
//! the chaos soaks in `tests/chaos.rs` hammer. Snapshots are a pure
//! replay accelerator: losing every snapshot loses no data, only
//! recovery time.

pub mod codec;
pub mod fault;
pub mod file;
pub mod telemetry;
pub mod vfs;
pub mod wal;

use crate::block::Block;
use crate::history::HistoryIndex;
use crate::state::WorldState;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vfs::VfsError;

/// Errors surfaced by a [`StorageBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The underlying VFS failed (I/O error or injected crash).
    Vfs(VfsError),
    /// The backend fail-stopped after an earlier write failure and must
    /// be reopened (rerunning recovery) before accepting more blocks.
    Poisoned,
    /// An appended block did not extend the backend's chain tip.
    NotNextBlock {
        /// The block number the backend expected.
        expected: u64,
        /// The number (and implicitly the link) it got.
        got: u64,
    },
}

impl StorageError {
    /// True when the error is an injected (or real) crash, meaning the
    /// process must be treated as dead until recovery reopens the store.
    pub fn is_crash(&self) -> bool {
        matches!(self, StorageError::Vfs(VfsError::Crashed { .. }))
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Vfs(e) => write!(f, "{e}"),
            StorageError::Poisoned => {
                write!(f, "storage backend fail-stopped; reopen to recover")
            }
            StorageError::NotNextBlock { expected, got } => {
                write!(f, "block {got} does not extend storage tip {expected}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<VfsError> for StorageError {
    fn from(e: VfsError) -> Self {
        StorageError::Vfs(e)
    }
}

/// A point-in-time copy of the derived state at a chain height, the unit
/// the file backend persists and recovery loads.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Number of blocks applied when the snapshot was taken.
    pub height: u64,
    /// `WorldState::state_hash()` at capture time; recovery recomputes
    /// and compares before trusting the snapshot.
    pub state_hash: [u8; 32],
    /// The world state at `height`.
    pub state: WorldState,
    /// The history index at `height`.
    pub history: HistoryIndex,
}

impl Snapshot {
    /// Captures the current derived state at `height`.
    pub fn capture(height: u64, state: &WorldState, history: &HistoryIndex) -> Snapshot {
        Snapshot {
            height,
            state_hash: state.state_hash(),
            state: state.clone(),
            history: history.clone(),
        }
    }
}

/// What one recovery pass found and did — printed by soaks, exported as
/// metrics, asserted on by tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Blocks in the verified chain after recovery.
    pub chain_height: u64,
    /// WAL file length after any tail truncation.
    pub wal_bytes: u64,
    /// Bytes cut off the WAL tail (0 when the file was clean).
    pub truncated_bytes: u64,
    /// Why the tail was rejected, when it was.
    pub tail: Option<String>,
    /// Height of the snapshot recovery started from, if any survived.
    pub snapshot_height: Option<u64>,
    /// Snapshot files that were tried and rejected (corrupt, ahead of
    /// the truncated chain, or unparseable).
    pub snapshot_fallbacks: u64,
    /// Blocks the caller must replay on top of the snapshot.
    pub replayed_blocks: u64,
    /// Wall-clock nanoseconds the backend spent in recovery.
    pub duration_ns: u64,
}

/// Everything a backend recovered at open.
#[derive(Debug, Default)]
pub struct Recovered {
    /// The verified chain, genesis first.
    pub blocks: Vec<Block>,
    /// The newest snapshot that passed verification, if any.
    pub snapshot: Option<Snapshot>,
    /// What recovery found and did.
    pub report: RecoveryReport,
}

/// Shared storage statistics: counters are RMW-only, gauges are plain
/// stores read through getter-shaped reporters (see the sync lint pass).
/// Cloned into [`telemetry::StorageMetricSource`] for scrape-time export.
#[derive(Debug, Default)]
pub struct StorageStats {
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    wal_truncations: AtomicU64,
    wal_truncated_bytes: AtomicU64,
    snapshots_written: AtomicU64,
    snapshot_failures: AtomicU64,
    snapshot_fallbacks: AtomicU64,
    last_snapshot_height: AtomicU64,
    chain_height: AtomicU64,
    recoveries: AtomicU64,
    replayed_blocks: AtomicU64,
    last_recovery_ns: AtomicU64,
    duplicate_txids: AtomicU64,
    recovery_phase: AtomicU64,
    recovery_blocks_scanned: AtomicU64,
}

/// Recovery phases, exported through `tdt_ledger_recovery_phase` so an
/// operator watching a slow startup can see *where* it is stuck. The
/// numeric order matches execution order; 0 means recovery is not
/// running (never started, or finished).
pub mod recovery_phase {
    /// Recovery is not running.
    pub const IDLE: u64 = 0;
    /// Scanning WAL frames.
    pub const SCAN: u64 = 1;
    /// Chain-verifying scanned blocks.
    pub const VERIFY: u64 = 2;
    /// Truncating the untrusted WAL tail.
    pub const TRUNCATE: u64 = 3;
    /// Selecting and verifying a snapshot.
    pub const SNAPSHOT: u64 = 4;
    /// Replaying blocks past the snapshot into derived state.
    pub const REPLAY: u64 = 5;

    /// Human-readable phase name, for spans and dumps.
    pub fn name(phase: u64) -> &'static str {
        match phase {
            SCAN => "scan",
            VERIFY => "verify",
            TRUNCATE => "truncate",
            SNAPSHOT => "snapshot",
            REPLAY => "replay",
            _ => "idle",
        }
    }
}

impl StorageStats {
    /// A zeroed stats bag.
    pub fn new() -> StorageStats {
        StorageStats::default()
    }

    /// One durable WAL append; `total_bytes` is the new file length.
    pub fn note_wal_append(&self, total_bytes: u64) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.store(total_bytes, Ordering::Relaxed);
    }

    /// One WAL tail truncation of `bytes` bytes during recovery.
    pub fn note_wal_truncation(&self, bytes: u64) {
        self.wal_truncations.fetch_add(1, Ordering::Relaxed);
        self.wal_truncated_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A snapshot reached disk at `height`.
    pub fn note_snapshot_written(&self, height: u64) {
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
        self.last_snapshot_height.store(height, Ordering::Relaxed);
    }

    /// A snapshot write failed (commit durability is unaffected).
    pub fn note_snapshot_failure(&self) {
        self.snapshot_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot file was rejected during recovery.
    pub fn note_snapshot_fallback(&self) {
        self.snapshot_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the outcome of one recovery pass.
    pub fn note_recovery(&self, report: &RecoveryReport) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
        self.replayed_blocks
            .store(report.replayed_blocks, Ordering::Relaxed);
        self.last_recovery_ns
            .store(report.duration_ns, Ordering::Relaxed);
        self.wal_bytes.store(report.wal_bytes, Ordering::Relaxed);
        self.chain_height
            .store(report.chain_height, Ordering::Relaxed);
        self.last_snapshot_height
            .store(report.snapshot_height.unwrap_or(0), Ordering::Relaxed);
    }

    /// Updates the committed chain height gauge.
    pub fn set_chain_height(&self, height: u64) {
        self.chain_height.store(height, Ordering::Relaxed);
    }

    /// A colliding transaction id was rejected (first write wins).
    pub fn note_duplicate_txid(&self) {
        self.duplicate_txids.fetch_add(1, Ordering::Relaxed);
    }

    /// Moves the recovery phase gauge (see [`recovery_phase`]) and drops
    /// a flight-recorder breadcrumb so an incident dump shows how far
    /// recovery progressed before things went wrong.
    pub fn set_recovery_phase(&self, phase: u64, detail: u64) {
        self.recovery_phase.store(phase, Ordering::Relaxed);
        tdt_obs::flight::record(tdt_obs::FlightKind::Recovery, phase as u16, detail, 0);
    }

    /// Updates the blocks-scanned progress gauge for the running
    /// recovery pass.
    pub fn set_recovery_blocks_scanned(&self, blocks: u64) {
        self.recovery_blocks_scanned
            .store(blocks, Ordering::Relaxed);
    }

    /// Total durable WAL appends.
    pub fn wal_appends(&self) -> u64 {
        self.wal_appends.load(Ordering::Relaxed)
    }

    /// Current WAL file length in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.load(Ordering::Relaxed)
    }

    /// Total WAL tail truncation events.
    pub fn wal_truncations(&self) -> u64 {
        self.wal_truncations.load(Ordering::Relaxed)
    }

    /// Total bytes cut off WAL tails.
    pub fn wal_truncated_bytes(&self) -> u64 {
        self.wal_truncated_bytes.load(Ordering::Relaxed)
    }

    /// Total snapshots written.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written.load(Ordering::Relaxed)
    }

    /// Total snapshot write failures.
    pub fn snapshot_failures(&self) -> u64 {
        self.snapshot_failures.load(Ordering::Relaxed)
    }

    /// Total snapshot files rejected during recovery.
    pub fn snapshot_fallbacks(&self) -> u64 {
        self.snapshot_fallbacks.load(Ordering::Relaxed)
    }

    /// Height of the newest snapshot on disk (0 when none).
    pub fn last_snapshot_height(&self) -> u64 {
        self.last_snapshot_height.load(Ordering::Relaxed)
    }

    /// Committed chain height.
    pub fn chain_height(&self) -> u64 {
        self.chain_height.load(Ordering::Relaxed)
    }

    /// Total recovery passes run.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Blocks replayed over the snapshot in the last recovery.
    pub fn replayed_blocks(&self) -> u64 {
        self.replayed_blocks.load(Ordering::Relaxed)
    }

    /// Duration of the last recovery pass in nanoseconds.
    pub fn last_recovery_ns(&self) -> u64 {
        self.last_recovery_ns.load(Ordering::Relaxed)
    }

    /// Total duplicate transaction ids rejected.
    pub fn duplicate_txids(&self) -> u64 {
        self.duplicate_txids.load(Ordering::Relaxed)
    }

    /// Current recovery phase (see [`recovery_phase`]; 0 = not running).
    pub fn recovery_phase(&self) -> u64 {
        self.recovery_phase.load(Ordering::Relaxed)
    }

    /// Blocks scanned by the running (or last) recovery pass.
    pub fn recovery_blocks_scanned(&self) -> u64 {
        self.recovery_blocks_scanned.load(Ordering::Relaxed)
    }
}

/// The pluggable persistence seam behind a peer's ledger.
///
/// The backend owns durability, not validation: callers hand it blocks
/// that already passed chain/Merkle checks, and it guarantees that an
/// `Ok` from [`StorageBackend::append_block`] survives any crash.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Recovers whatever the backend holds; called once at open, before
    /// any append. Returns the verified chain prefix plus the newest
    /// usable snapshot.
    ///
    /// # Errors
    ///
    /// Only environmental failures (I/O, injected crash). Corruption is
    /// *not* an error — it shrinks the recovered prefix.
    fn load(&mut self) -> Result<Recovered, StorageError>;

    /// Durably appends one committed block (WAL write + fsync). When
    /// this returns `Ok`, the block is never lost.
    ///
    /// # Errors
    ///
    /// Any failure fail-stops the backend ([`StorageError::Poisoned`]
    /// thereafter) — the WAL tail is suspect until recovery truncates it.
    fn append_block(&mut self, block: &Block) -> Result<(), StorageError>;

    /// True when the caller should capture and write a snapshot after
    /// committing at `height`.
    fn snapshot_due(&self, height: u64) -> bool;

    /// Persists a snapshot. Best-effort: failure never loses blocks,
    /// only replay time, so callers may log-and-continue (unless the
    /// error [`StorageError::is_crash`]).
    ///
    /// # Errors
    ///
    /// Underlying VFS failures; the WAL is unaffected.
    fn write_snapshot(&mut self, snapshot: &Snapshot) -> Result<(), StorageError>;

    /// The shared stats bag (cloned into metric sources).
    fn stats(&self) -> Arc<StorageStats>;
}

/// The pre-durability behaviour behind the same seam: everything lives
/// in the peer's memory, nothing survives a restart. Useful for tests,
/// demos, and as the zero-cost default.
#[derive(Debug, Default)]
pub struct InMemoryBackend {
    stats: Arc<StorageStats>,
}

impl InMemoryBackend {
    /// A fresh volatile backend.
    pub fn new() -> InMemoryBackend {
        InMemoryBackend::default()
    }
}

impl StorageBackend for InMemoryBackend {
    fn load(&mut self) -> Result<Recovered, StorageError> {
        Ok(Recovered::default())
    }

    fn append_block(&mut self, block: &Block) -> Result<(), StorageError> {
        self.stats.set_chain_height(block.header.number + 1);
        Ok(())
    }

    fn snapshot_due(&self, _height: u64) -> bool {
        false
    }

    fn write_snapshot(&mut self, _snapshot: &Snapshot) -> Result<(), StorageError> {
        Ok(())
    }

    fn stats(&self) -> Arc<StorageStats> {
        Arc::clone(&self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_backend_recovers_nothing() {
        let mut backend = InMemoryBackend::new();
        let recovered = backend.load().unwrap();
        assert!(recovered.blocks.is_empty());
        assert!(recovered.snapshot.is_none());
        let block = Block::genesis(vec![b"cfg".to_vec()]);
        backend.append_block(&block).unwrap();
        assert_eq!(backend.stats().chain_height(), 1);
        assert!(!backend.snapshot_due(1));
    }

    #[test]
    fn storage_error_display_and_crash_detection() {
        let crash = StorageError::Vfs(VfsError::Crashed {
            op: "append".into(),
            path: "wal.log".into(),
        });
        assert!(crash.is_crash());
        assert!(!StorageError::Poisoned.is_crash());
        for e in [
            crash,
            StorageError::Poisoned,
            StorageError::NotNextBlock {
                expected: 3,
                got: 7,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn stats_getters_reflect_notes() {
        let stats = StorageStats::new();
        stats.note_wal_append(100);
        stats.note_wal_append(220);
        stats.note_wal_truncation(16);
        stats.note_snapshot_written(64);
        stats.note_snapshot_failure();
        stats.note_snapshot_fallback();
        stats.note_duplicate_txid();
        stats.set_chain_height(65);
        assert_eq!(stats.wal_appends(), 2);
        assert_eq!(stats.wal_bytes(), 220);
        assert_eq!(stats.wal_truncations(), 1);
        assert_eq!(stats.wal_truncated_bytes(), 16);
        assert_eq!(stats.snapshots_written(), 1);
        assert_eq!(stats.snapshot_failures(), 1);
        assert_eq!(stats.snapshot_fallbacks(), 1);
        assert_eq!(stats.last_snapshot_height(), 64);
        assert_eq!(stats.chain_height(), 65);
        assert_eq!(stats.duplicate_txids(), 1);
    }
}
