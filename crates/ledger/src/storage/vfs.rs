//! Virtual file system: the seam between the file backend and the disk.
//!
//! Everything the durable ledger does to storage goes through the [`Vfs`]
//! trait — a deliberately small, path-based API (append, read, sync,
//! atomic rename). That seam is what makes the backend testable: the same
//! WAL and snapshot code runs over [`StdVfs`] (real files), [`MemVfs`]
//! (an in-memory disk with an explicit durable/volatile split and a
//! `crash()` that drops everything unsynced), and the seeded
//! [`crate::storage::fault::FaultVfs`] decorator that injects torn
//! writes, lost fsyncs, bit rot, and crash-point aborts.
//!
//! # Durability model
//!
//! * `append`/`create` buffer data; it is *not* durable until `sync`.
//! * `sync` is the fsync: after it returns `Ok`, all previously written
//!   bytes of that path survive a crash.
//! * `rename` is atomic and immediately durable (the POSIX rename-into-
//!   place idiom; directory fsync is folded into the operation).
//! * Any error from `append`/`sync` means the file's unsynced suffix is
//!   in an unknown state — callers must treat the file as suspect
//!   (fail-stop, the fsyncgate lesson) and re-run recovery before
//!   trusting it again.

use std::collections::HashMap;
use std::fmt;
use std::io::{Read, Seek, Write};
use std::path::PathBuf;
use std::sync::Mutex;

/// Errors surfaced by a [`Vfs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// The path does not exist.
    NotFound(String),
    /// An I/O failure (short write, fsync failure, permission, ...).
    Io {
        /// The failing operation (`append`, `sync`, ...).
        op: String,
        /// The path operated on.
        path: String,
        /// Cause description.
        detail: String,
    },
    /// An injected crash point: the simulated process died mid-operation.
    /// Every subsequent operation fails the same way until the harness
    /// acknowledges the crash and "reboots" (see `FaultVfs::reboot`).
    Crashed {
        /// The operation that was interrupted.
        op: String,
        /// The path operated on.
        path: String,
    },
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "vfs path {p:?} not found"),
            VfsError::Io { op, path, detail } => {
                write!(f, "vfs {op} on {path:?} failed: {detail}")
            }
            VfsError::Crashed { op, path } => {
                write!(f, "simulated crash during {op} on {path:?}")
            }
        }
    }
}

impl std::error::Error for VfsError {}

/// A minimal, path-based file system abstraction.
///
/// Paths are flat relative names (`wal.log`, `snap-...`); backends own a
/// directory (or a namespace) and never walk outside it.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Full contents of `path`.
    fn read(&self, path: &str) -> Result<Vec<u8>, VfsError>;

    /// Appends `bytes` to `path`, creating it when missing. Buffered until
    /// [`Vfs::sync`].
    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), VfsError>;

    /// Creates (or truncates) `path` with `bytes`. Buffered until
    /// [`Vfs::sync`].
    fn create(&self, path: &str, bytes: &[u8]) -> Result<(), VfsError>;

    /// Makes every written byte of `path` durable (fsync).
    fn sync(&self, path: &str) -> Result<(), VfsError>;

    /// Truncates `path` to `len` bytes. The truncation is durable.
    fn truncate(&self, path: &str, len: u64) -> Result<(), VfsError>;

    /// Atomically, durably renames `from` onto `to` (replacing it).
    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError>;

    /// Removes `path` (missing paths are not an error).
    fn remove(&self, path: &str) -> Result<(), VfsError>;

    /// True when `path` exists.
    fn exists(&self, path: &str) -> bool;

    /// Current length of `path` in bytes.
    fn len(&self, path: &str) -> Result<u64, VfsError>;

    /// All existing paths starting with `prefix`, sorted ascending.
    fn list(&self, prefix: &str) -> Result<Vec<String>, VfsError>;
}

fn io_err(op: &str, path: &str, e: impl fmt::Display) -> VfsError {
    VfsError::Io {
        op: op.to_string(),
        path: path.to_string(),
        detail: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// StdVfs — real files under a root directory
// ---------------------------------------------------------------------------

/// A [`Vfs`] over a real directory. Append handles are cached so the WAL
/// hot path does not reopen the file per record.
pub struct StdVfs {
    root: PathBuf,
    // Cached append handles (path -> open file in append mode).
    handles: Mutex<HashMap<String, std::fs::File>>,
}

impl fmt::Debug for StdVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StdVfs").field("root", &self.root).finish()
    }
}

impl StdVfs {
    /// Opens (creating if needed) a VFS rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<StdVfs, VfsError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err("create_dir_all", &root.to_string_lossy(), e))?;
        Ok(StdVfs {
            root,
            handles: Mutex::new(HashMap::new()),
        })
    }

    fn full(&self, path: &str) -> PathBuf {
        self.root.join(path)
    }

    fn with_handle<T>(
        &self,
        path: &str,
        f: impl FnOnce(&mut std::fs::File) -> std::io::Result<T>,
    ) -> Result<T, VfsError> {
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        if !handles.contains_key(path) {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .read(true)
                .open(self.full(path))
                .map_err(|e| io_err("open", path, e))?;
            handles.insert(path.to_string(), file);
        }
        let file = handles
            .get_mut(path)
            .ok_or_else(|| VfsError::NotFound(path.to_string()))?;
        f(file).map_err(|e| io_err("file-op", path, e))
    }

    fn drop_handle(&self, path: &str) {
        self.handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(path);
    }

    fn sync_dir(&self) -> Result<(), VfsError> {
        // Directory fsync so renames/creates are durable. Best-effort on
        // platforms where directories cannot be opened.
        if let Ok(dir) = std::fs::File::open(&self.root) {
            dir.sync_all()
                .map_err(|e| io_err("sync_dir", &self.root.to_string_lossy(), e))?;
        }
        Ok(())
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &str) -> Result<Vec<u8>, VfsError> {
        // Read through the cached handle when one exists, so unflushed
        // appends are visible; otherwise read the file directly.
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(file) = handles.get_mut(path) {
            file.flush().map_err(|e| io_err("flush", path, e))?;
            let mut out = Vec::new();
            file.seek(std::io::SeekFrom::Start(0))
                .and_then(|_| file.read_to_end(&mut out))
                .map_err(|e| io_err("read", path, e))?;
            return Ok(out);
        }
        drop(handles);
        match std::fs::read(self.full(path)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(VfsError::NotFound(path.to_string()))
            }
            Err(e) => Err(io_err("read", path, e)),
        }
    }

    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), VfsError> {
        self.with_handle(path, |file| file.write_all(bytes))
    }

    fn create(&self, path: &str, bytes: &[u8]) -> Result<(), VfsError> {
        self.drop_handle(path);
        std::fs::write(self.full(path), bytes).map_err(|e| io_err("create", path, e))
    }

    fn sync(&self, path: &str) -> Result<(), VfsError> {
        if self
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(path)
        {
            return self.with_handle(path, |file| file.flush().and_then(|()| file.sync_all()));
        }
        let file =
            std::fs::File::open(self.full(path)).map_err(|e| io_err("sync-open", path, e))?;
        file.sync_all().map_err(|e| io_err("sync", path, e))
    }

    fn truncate(&self, path: &str, len: u64) -> Result<(), VfsError> {
        self.drop_handle(path);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(self.full(path))
            .map_err(|e| io_err("truncate-open", path, e))?;
        file.set_len(len)
            .and_then(|()| file.sync_all())
            .map_err(|e| io_err("truncate", path, e))
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError> {
        self.drop_handle(from);
        self.drop_handle(to);
        std::fs::rename(self.full(from), self.full(to)).map_err(|e| io_err("rename", from, e))?;
        self.sync_dir()
    }

    fn remove(&self, path: &str) -> Result<(), VfsError> {
        self.drop_handle(path);
        match std::fs::remove_file(self.full(path)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", path, e)),
        }
    }

    fn exists(&self, path: &str) -> bool {
        self.full(path).exists()
    }

    fn len(&self, path: &str) -> Result<u64, VfsError> {
        // Route through the handle cache so buffered appends count.
        self.read(path).map(|b| b.len() as u64)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, VfsError> {
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| io_err("list", &self.root.to_string_lossy(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list", prefix, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(prefix) {
                out.push(name);
            }
        }
        out.sort();
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// MemVfs — in-memory disk with an explicit durability line
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes `[0..synced_len)` survive a crash; the rest is page cache.
    synced_len: usize,
}

/// An in-memory [`Vfs`] that models the durability line explicitly:
/// written bytes sit in a volatile suffix until `sync`, and
/// [`MemVfs::crash`] drops every unsynced byte — exactly what a power
/// cut does to a page cache.
#[derive(Debug, Default)]
pub struct MemVfs {
    files: Mutex<HashMap<String, MemFile>>,
}

impl MemVfs {
    /// An empty in-memory disk.
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    /// Simulates a power cut: every file loses its unsynced suffix.
    /// Reopening afterwards sees only what was durable.
    pub fn crash(&self) {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        for file in files.values_mut() {
            file.data.truncate(file.synced_len);
        }
    }

    /// Number of bytes of `path` that would survive a crash right now
    /// (diagnostics for tests).
    pub fn durable_len(&self, path: &str) -> usize {
        self.files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(path)
            .map_or(0, |f| f.synced_len)
    }

    /// XORs `mask` into the byte at `offset` of `path` — the bit-rot
    /// primitive used by fault injection and corruption tests. Rot hits
    /// the platter, so the corrupted byte is considered durable.
    pub fn corrupt(&self, path: &str, offset: usize, mask: u8) -> Result<(), VfsError> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        let file = files
            .get_mut(path)
            .ok_or_else(|| VfsError::NotFound(path.to_string()))?;
        match file.data.get_mut(offset) {
            Some(byte) => {
                *byte ^= mask;
                Ok(())
            }
            None => Err(io_err("corrupt", path, "offset out of range")),
        }
    }
}

impl Vfs for MemVfs {
    fn read(&self, path: &str) -> Result<Vec<u8>, VfsError> {
        self.files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| VfsError::NotFound(path.to_string()))
    }

    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), VfsError> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files
            .entry(path.to_string())
            .or_default()
            .data
            .extend_from_slice(bytes);
        Ok(())
    }

    fn create(&self, path: &str, bytes: &[u8]) -> Result<(), VfsError> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.insert(
            path.to_string(),
            MemFile {
                data: bytes.to_vec(),
                synced_len: 0,
            },
        );
        Ok(())
    }

    fn sync(&self, path: &str) -> Result<(), VfsError> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        let file = files
            .get_mut(path)
            .ok_or_else(|| VfsError::NotFound(path.to_string()))?;
        file.synced_len = file.data.len();
        Ok(())
    }

    fn truncate(&self, path: &str, len: u64) -> Result<(), VfsError> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        let file = files
            .get_mut(path)
            .ok_or_else(|| VfsError::NotFound(path.to_string()))?;
        file.data.truncate(len as usize);
        file.synced_len = file.synced_len.min(file.data.len());
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        let mut file = files
            .remove(from)
            .ok_or_else(|| VfsError::NotFound(from.to_string()))?;
        // Rename-into-place is atomic and durable (dir entry + fsync'd
        // directory); the file's own durability line travels with it.
        file.synced_len = file.data.len();
        files.insert(to.to_string(), file);
        Ok(())
    }

    fn remove(&self, path: &str) -> Result<(), VfsError> {
        self.files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(path);
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(path)
    }

    fn len(&self, path: &str) -> Result<u64, VfsError> {
        self.files
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(path)
            .map(|f| f.data.len() as u64)
            .ok_or_else(|| VfsError::NotFound(path.to_string()))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, VfsError> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<String> = files
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_append_read_roundtrip() {
        let vfs = MemVfs::new();
        vfs.append("f", b"abc").unwrap();
        vfs.append("f", b"def").unwrap();
        assert_eq!(vfs.read("f").unwrap(), b"abcdef");
        assert_eq!(vfs.len("f").unwrap(), 6);
    }

    #[test]
    fn mem_crash_drops_unsynced_suffix() {
        let vfs = MemVfs::new();
        vfs.append("f", b"durable").unwrap();
        vfs.sync("f").unwrap();
        vfs.append("f", b"-volatile").unwrap();
        assert_eq!(vfs.durable_len("f"), 7);
        vfs.crash();
        assert_eq!(vfs.read("f").unwrap(), b"durable");
    }

    #[test]
    fn mem_crash_without_sync_loses_everything() {
        let vfs = MemVfs::new();
        vfs.append("f", b"gone").unwrap();
        vfs.crash();
        assert_eq!(vfs.read("f").unwrap(), b"");
    }

    #[test]
    fn mem_rename_is_durable_and_atomic() {
        let vfs = MemVfs::new();
        vfs.create("tmp", b"snapshot").unwrap();
        vfs.sync("tmp").unwrap();
        vfs.rename("tmp", "final").unwrap();
        vfs.crash();
        assert_eq!(vfs.read("final").unwrap(), b"snapshot");
        assert!(!vfs.exists("tmp"));
    }

    #[test]
    fn mem_corrupt_flips_bits() {
        let vfs = MemVfs::new();
        vfs.append("f", b"\x00\x00").unwrap();
        vfs.corrupt("f", 1, 0x80).unwrap();
        assert_eq!(vfs.read("f").unwrap(), vec![0x00, 0x80]);
    }

    #[test]
    fn mem_list_filters_by_prefix() {
        let vfs = MemVfs::new();
        vfs.append("snap-1", b"a").unwrap();
        vfs.append("snap-2", b"b").unwrap();
        vfs.append("wal.log", b"c").unwrap();
        assert_eq!(vfs.list("snap-").unwrap(), vec!["snap-1", "snap-2"]);
    }

    #[test]
    fn std_vfs_roundtrip() {
        let root = std::env::temp_dir().join(format!("tdt-vfs-test-{}", std::process::id()));
        let vfs = StdVfs::open(&root).unwrap();
        vfs.create("wal.log", b"").unwrap();
        vfs.append("wal.log", b"hello").unwrap();
        vfs.sync("wal.log").unwrap();
        assert_eq!(vfs.read("wal.log").unwrap(), b"hello");
        assert_eq!(vfs.len("wal.log").unwrap(), 5);
        vfs.truncate("wal.log", 2).unwrap();
        assert_eq!(vfs.read("wal.log").unwrap(), b"he");
        vfs.create("snap.tmp", b"snap").unwrap();
        vfs.sync("snap.tmp").unwrap();
        vfs.rename("snap.tmp", "snap-1").unwrap();
        assert_eq!(vfs.list("snap").unwrap(), vec!["snap-1"]);
        vfs.remove("snap-1").unwrap();
        vfs.remove("wal.log").unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }
}
