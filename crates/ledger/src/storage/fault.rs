//! Seeded disk-fault injection: a [`Vfs`] decorator in the spirit of the
//! relay's `ChaosTransport`.
//!
//! [`FaultVfs`] wraps any inner [`Vfs`] and, per operation, consults a
//! pure SplitMix64-derived schedule (a function of `seed` and the
//! operation counter — nothing else) to decide whether to inject one of:
//!
//! * **crash-point abort** — the simulated process dies at this exact
//!   operation (before, after-write-before-sync, or after-sync);
//! * **torn write** — a prefix of the appended bytes reaches the platter
//!   before the crash (page-granularity tearing);
//! * **short write** — fewer bytes than requested are written and the
//!   operation reports failure (no crash; the caller must fail stop);
//! * **lost fsync** — the kernel drops the dirty pages and reports the
//!   fsync failure once (the post-fsyncgate contract);
//! * **bit rot** — a durable byte of an existing file is silently
//!   flipped, to be caught by CRC framing at recovery.
//!
//! After a crash fault fires, *every* subsequent operation fails with
//! [`VfsError::Crashed`] until the test harness calls
//! [`FaultVfs::reboot`], which drops the inner disk's unsynced data
//! (power-cut semantics) and lets recovery begin. The whole schedule is
//! replayable: the same seed over the same operation sequence produces
//! byte-identical fault decisions.

use super::vfs::{MemVfs, Vfs, VfsError};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// SplitMix64: the same tiny deterministic generator the chaos plane and
/// the interleaving checker use; decisions are pure functions of
/// `seed + op index`.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which fault (if any) the schedule chose for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// No fault; the operation passes through.
    None,
    /// Die before the operation touches the inner VFS.
    CrashBefore,
    /// (Appends) write everything, then die before the matching sync.
    CrashAfterWrite,
    /// (Appends) a durable prefix of `kept` bytes out of the full write
    /// survives; then die.
    TornWrite,
    /// Write a prefix, report an I/O error, keep running.
    ShortWrite,
    /// Drop the unsynced bytes and report the fsync failure.
    LostFsync,
    /// Flip one durable bit somewhere on the disk.
    BitRot,
}

/// Per-mille rates for each fault class. Rates are small by design: the
/// soak wants long healthy stretches punctuated by failures.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Crash-point aborts (before-op and after-write variants) ‰.
    pub crash_per_mille: u32,
    /// Torn writes ‰ (appends only).
    pub torn_write_per_mille: u32,
    /// Short writes ‰ (appends only).
    pub short_write_per_mille: u32,
    /// Lost fsyncs ‰ (syncs only).
    pub lost_fsync_per_mille: u32,
    /// Bit rot ‰ (any op; corrupts a random durable byte).
    pub bit_rot_per_mille: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            crash_per_mille: 8,
            torn_write_per_mille: 4,
            short_write_per_mille: 4,
            lost_fsync_per_mille: 4,
            bit_rot_per_mille: 0,
        }
    }
}

impl FaultConfig {
    /// A schedule with no faults at all (pass-through).
    pub fn quiet() -> FaultConfig {
        FaultConfig {
            crash_per_mille: 0,
            torn_write_per_mille: 0,
            short_write_per_mille: 0,
            lost_fsync_per_mille: 0,
            bit_rot_per_mille: 0,
        }
    }

    /// The durability soak mix: crashes, torn/short writes and lost
    /// fsyncs, but **no bit rot** — rot destroys durable bytes, so the
    /// "no committed block is ever lost" property only holds without it.
    pub fn crashy() -> FaultConfig {
        FaultConfig::default()
    }

    /// Everything including bit rot: recovery must still produce a
    /// verified prefix, but durability of individual commits may be
    /// sacrificed to the platter.
    pub fn rotten() -> FaultConfig {
        FaultConfig {
            bit_rot_per_mille: 3,
            ..FaultConfig::default()
        }
    }
}

/// The fault-injecting decorator. Clone the `Arc` and hand it to the
/// backend; keep a handle in the harness for [`FaultVfs::reboot`].
pub struct FaultVfs {
    inner: Arc<MemVfs>,
    seed: u64,
    config: FaultConfig,
    ops: AtomicU64,
    crashed: AtomicBool,
    injected: AtomicU64,
    crashes: AtomicU64,
}

impl fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultVfs")
            .field("seed", &self.seed)
            .field("ops", &self.ops.load(Ordering::Relaxed))
            .field("crashed", &self.is_crashed())
            .finish()
    }
}

impl FaultVfs {
    /// Wraps `inner` with the seeded schedule. The inner VFS is the
    /// explicit-durability [`MemVfs`] because crash semantics (dropping
    /// unsynced bytes on reboot) are part of the model.
    pub fn new(inner: Arc<MemVfs>, seed: u64, config: FaultConfig) -> FaultVfs {
        FaultVfs {
            inner,
            seed,
            config,
            ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            injected: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
        }
    }

    /// The replay seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True once a crash fault has fired and the simulated process is
    /// dead; every VFS op fails until [`FaultVfs::reboot`].
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::Acquire)
    }

    /// Total injected faults so far (all classes).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Total crash faults so far.
    pub fn crashes(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// Acknowledges a crash: applies power-cut semantics to the inner
    /// disk (unsynced bytes vanish) and clears the dead flag so the
    /// harness can reopen the backend. Also usable after a non-crash
    /// failure to model an operator restart.
    pub fn reboot(&self) {
        self.inner.crash();
        self.crashed.store(false, Ordering::Release);
    }

    /// Direct access to the inner disk (corruption helpers in tests).
    pub fn disk(&self) -> &Arc<MemVfs> {
        &self.inner
    }

    /// Draws the schedule decision for the next operation. `class` keys
    /// the stream so appends/syncs/reads of the same index differ.
    fn draw(&self, class: u64) -> (u64, u64) {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let roll =
            splitmix64(self.seed ^ op.wrapping_mul(0x0001_0000_0000_01b3).wrapping_add(class));
        (roll, op)
    }

    fn note_fault(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    fn die(&self, op: &str, path: &str) -> VfsError {
        self.note_fault();
        self.crashes.fetch_add(1, Ordering::Relaxed);
        self.crashed.store(true, Ordering::Release);
        VfsError::Crashed {
            op: op.to_string(),
            path: path.to_string(),
        }
    }

    fn dead(&self, op: &str, path: &str) -> Option<VfsError> {
        self.is_crashed().then(|| VfsError::Crashed {
            op: op.to_string(),
            path: path.to_string(),
        })
    }

    /// Decides the fault for a write-shaped op from one roll.
    fn write_fault(&self, roll: u64) -> Fault {
        let m = roll % 1000;
        let c = &self.config;
        let crash = c.crash_per_mille as u64;
        let torn = crash + c.torn_write_per_mille as u64;
        let short = torn + c.short_write_per_mille as u64;
        let rot = short + c.bit_rot_per_mille as u64;
        if m < crash {
            // Split the crash budget between before-op and after-write.
            if roll & (1 << 20) == 0 {
                Fault::CrashBefore
            } else {
                Fault::CrashAfterWrite
            }
        } else if m < torn {
            Fault::TornWrite
        } else if m < short {
            Fault::ShortWrite
        } else if m < rot {
            Fault::BitRot
        } else {
            Fault::None
        }
    }

    fn sync_fault(&self, roll: u64) -> Fault {
        let m = roll % 1000;
        let c = &self.config;
        let crash = c.crash_per_mille as u64;
        let lost = crash + c.lost_fsync_per_mille as u64;
        let rot = lost + c.bit_rot_per_mille as u64;
        if m < crash {
            Fault::CrashBefore
        } else if m < lost {
            Fault::LostFsync
        } else if m < rot {
            Fault::BitRot
        } else {
            Fault::None
        }
    }

    /// Flips one bit of one durable byte somewhere on the disk, chosen by
    /// `roll`. No-op when the disk is empty.
    fn rot_somewhere(&self, roll: u64) {
        let Ok(paths) = self.inner.list("") else {
            return;
        };
        if paths.is_empty() {
            return;
        }
        let Some(path) = paths.get((roll >> 10) as usize % paths.len()) else {
            return;
        };
        let Ok(len) = self.inner.len(path) else {
            return;
        };
        if len == 0 {
            return;
        }
        let offset = (splitmix64(roll) % len) as usize;
        let mask = 1u8 << ((roll >> 3) % 8);
        self.note_fault();
        let _ = self.inner.corrupt(path, offset, mask);
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &str) -> Result<Vec<u8>, VfsError> {
        if let Some(e) = self.dead("read", path) {
            return Err(e);
        }
        // Reads are pure: bit rot is injected at write/sync points so the
        // schedule stays a function of the *mutation* sequence.
        self.inner.read(path)
    }

    fn append(&self, path: &str, bytes: &[u8]) -> Result<(), VfsError> {
        if let Some(e) = self.dead("append", path) {
            return Err(e);
        }
        let (roll, _op) = self.draw(1);
        match self.write_fault(roll) {
            Fault::None => self.inner.append(path, bytes),
            Fault::CrashBefore => Err(self.die("append", path)),
            Fault::CrashAfterWrite => {
                // The full write reaches the page cache, then power dies
                // before any fsync: nothing of it is durable.
                self.inner.append(path, bytes)?;
                Err(self.die("append", path))
            }
            Fault::TornWrite => {
                // A page-aligned-ish prefix hits the platter, then power
                // dies. Model: append prefix, force it durable, die.
                let kept = (splitmix64(roll) as usize) % (bytes.len().max(1));
                let (prefix, _lost) = bytes.split_at(kept);
                self.inner.append(path, prefix)?;
                self.inner.sync(path)?;
                Err(self.die("append", path))
            }
            Fault::ShortWrite => {
                let kept = (splitmix64(roll) as usize) % (bytes.len().max(1));
                let (prefix, _lost) = bytes.split_at(kept);
                self.inner.append(path, prefix)?;
                self.note_fault();
                Err(VfsError::Io {
                    op: "append".to_string(),
                    path: path.to_string(),
                    detail: format!("short write: {kept} of {} bytes", bytes.len()),
                })
            }
            Fault::BitRot => {
                self.inner.append(path, bytes)?;
                self.rot_somewhere(roll);
                Ok(())
            }
            // LostFsync never comes out of write_fault.
            Fault::LostFsync => self.inner.append(path, bytes),
        }
    }

    fn create(&self, path: &str, bytes: &[u8]) -> Result<(), VfsError> {
        if let Some(e) = self.dead("create", path) {
            return Err(e);
        }
        let (roll, _op) = self.draw(2);
        match self.write_fault(roll) {
            Fault::CrashBefore => Err(self.die("create", path)),
            Fault::CrashAfterWrite => {
                self.inner.create(path, bytes)?;
                Err(self.die("create", path))
            }
            Fault::TornWrite | Fault::ShortWrite => {
                // A torn create leaves a truncated temp file; recovery
                // must ignore it (CRC framing).
                let kept = (splitmix64(roll) as usize) % (bytes.len().max(1));
                let (prefix, _lost) = bytes.split_at(kept);
                self.inner.create(path, prefix)?;
                if self.write_fault(roll) == Fault::TornWrite {
                    self.inner.sync(path)?;
                    Err(self.die("create", path))
                } else {
                    self.note_fault();
                    Err(VfsError::Io {
                        op: "create".to_string(),
                        path: path.to_string(),
                        detail: format!("short write: {kept} of {} bytes", bytes.len()),
                    })
                }
            }
            Fault::BitRot => {
                self.inner.create(path, bytes)?;
                self.rot_somewhere(roll);
                Ok(())
            }
            Fault::None | Fault::LostFsync => self.inner.create(path, bytes),
        }
    }

    fn sync(&self, path: &str) -> Result<(), VfsError> {
        if let Some(e) = self.dead("sync", path) {
            return Err(e);
        }
        let (roll, _op) = self.draw(3);
        match self.sync_fault(roll) {
            Fault::CrashBefore => Err(self.die("sync", path)),
            Fault::LostFsync => {
                // The kernel already dropped the dirty pages; report the
                // failure once. The unsynced suffix is gone for good.
                self.note_fault();
                self.inner.crash();
                Err(VfsError::Io {
                    op: "sync".to_string(),
                    path: path.to_string(),
                    detail: "fsync failed; dirty pages dropped".to_string(),
                })
            }
            Fault::BitRot => {
                self.inner.sync(path)?;
                self.rot_somewhere(roll);
                Ok(())
            }
            _ => self.inner.sync(path),
        }
    }

    fn truncate(&self, path: &str, len: u64) -> Result<(), VfsError> {
        if let Some(e) = self.dead("truncate", path) {
            return Err(e);
        }
        let (roll, _op) = self.draw(4);
        if self.write_fault(roll) == Fault::CrashBefore {
            return Err(self.die("truncate", path));
        }
        self.inner.truncate(path, len)
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), VfsError> {
        if let Some(e) = self.dead("rename", from) {
            return Err(e);
        }
        let (roll, _op) = self.draw(5);
        // Rename is atomic: it either happened or it didn't. Crash-before
        // leaves the temp file; crash-after leaves the final name.
        match self.write_fault(roll) {
            Fault::CrashBefore => Err(self.die("rename", from)),
            Fault::CrashAfterWrite => {
                self.inner.rename(from, to)?;
                Err(self.die("rename", from))
            }
            _ => self.inner.rename(from, to),
        }
    }

    fn remove(&self, path: &str) -> Result<(), VfsError> {
        if let Some(e) = self.dead("remove", path) {
            return Err(e);
        }
        let (roll, _op) = self.draw(6);
        if self.write_fault(roll) == Fault::CrashBefore {
            return Err(self.die("remove", path));
        }
        self.inner.remove(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn len(&self, path: &str) -> Result<u64, VfsError> {
        if let Some(e) = self.dead("len", path) {
            return Err(e);
        }
        self.inner.len(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>, VfsError> {
        if let Some(e) = self.dead("list", prefix) {
            return Err(e);
        }
        self.inner.list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(seed: u64, ops: usize) -> (Vec<&'static str>, u64, u64) {
        let disk = Arc::new(MemVfs::new());
        let fault = FaultVfs::new(Arc::clone(&disk), seed, FaultConfig::crashy());
        let mut outcomes = Vec::new();
        for i in 0..ops {
            let record = vec![i as u8; 32];
            let result = fault
                .append("wal.log", &record)
                .and_then(|()| fault.sync("wal.log"));
            match result {
                Ok(()) => outcomes.push("ok"),
                Err(VfsError::Crashed { .. }) => {
                    outcomes.push("crash");
                    fault.reboot();
                }
                Err(_) => {
                    outcomes.push("io");
                    fault.reboot();
                }
            }
        }
        (outcomes, fault.injected(), fault.crashes())
    }

    #[test]
    fn same_seed_same_fault_trace() {
        let (a, ia, ca) = drive(42, 800);
        let (b, ib, cb) = drive(42, 800);
        assert_eq!(a, b);
        assert_eq!((ia, ca), (ib, cb));
    }

    #[test]
    fn different_seeds_differ() {
        let (a, ..) = drive(1, 800);
        let (b, ..) = drive(2, 800);
        assert_ne!(a, b, "two seeds producing identical 800-op traces");
    }

    #[test]
    fn faults_do_fire_at_default_rates() {
        let (outcomes, injected, crashes) = drive(7, 2000);
        assert!(injected > 0, "no faults in 2000 ops");
        assert!(crashes > 0, "no crashes in 2000 ops");
        assert!(outcomes.contains(&"ok"), "nothing succeeded");
    }

    #[test]
    fn dead_until_reboot() {
        // Find a seed/op where a crash fires, then check everything fails.
        let disk = Arc::new(MemVfs::new());
        let fault = FaultVfs::new(Arc::clone(&disk), 42, FaultConfig::crashy());
        let mut crashed = false;
        for i in 0..5000 {
            if fault.append("f", &[i as u8]).is_err() && fault.is_crashed() {
                crashed = true;
                break;
            }
            let _ = fault.sync("f");
            if fault.is_crashed() {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "no crash in 5000 ops at crashy rates");
        assert!(matches!(
            fault.append("f", b"x"),
            Err(VfsError::Crashed { .. })
        ));
        assert!(matches!(fault.read("f"), Err(VfsError::Crashed { .. })));
        fault.reboot();
        assert!(fault.append("f", b"x").is_ok() || !fault.is_crashed());
    }

    #[test]
    fn quiet_config_never_faults() {
        let disk = Arc::new(MemVfs::new());
        let fault = FaultVfs::new(Arc::clone(&disk), 9, FaultConfig::quiet());
        for i in 0..500u32 {
            fault.append("f", &i.to_be_bytes()).unwrap();
            fault.sync("f").unwrap();
        }
        assert_eq!(fault.injected(), 0);
        assert_eq!(disk.read("f").unwrap().len(), 2000);
    }
}
