//! Scrape-time bridge from [`StorageStats`] to the observability plane.
//!
//! Same pattern as the relay's metric sources: the hot path touches only
//! its own atomics; at scrape time [`StorageMetricSource::collect`] copies
//! them into registry metrics under the `tdt_ledger_*` prefix.

use super::StorageStats;
use std::sync::Arc;
use tdt_obs::handle::MetricSource;
use tdt_obs::metrics::Registry;

/// Exports one backend's [`StorageStats`] as `tdt_ledger_*` series.
#[derive(Debug)]
pub struct StorageMetricSource {
    stats: Arc<StorageStats>,
}

impl StorageMetricSource {
    /// Wraps a backend's stats handle (see `StorageBackend::stats`).
    pub fn new(stats: Arc<StorageStats>) -> StorageMetricSource {
        StorageMetricSource { stats }
    }
}

impl MetricSource for StorageMetricSource {
    fn collect(&self, registry: &Registry) {
        let s = &self.stats;
        registry
            .counter(
                "tdt_ledger_wal_appends_total",
                "Durable WAL block appends (write + fsync)",
            )
            .set(s.wal_appends());
        registry
            .gauge("tdt_ledger_wal_bytes", "Current WAL file length in bytes")
            .set(s.wal_bytes() as i64);
        registry
            .counter(
                "tdt_ledger_wal_truncations_total",
                "WAL tail truncation events during recovery",
            )
            .set(s.wal_truncations());
        registry
            .counter(
                "tdt_ledger_wal_truncated_bytes_total",
                "Bytes cut off corrupt WAL tails",
            )
            .set(s.wal_truncated_bytes());
        registry
            .counter(
                "tdt_ledger_snapshots_written_total",
                "Snapshots durably written",
            )
            .set(s.snapshots_written());
        registry
            .counter(
                "tdt_ledger_snapshot_failures_total",
                "Snapshot writes that failed (commits unaffected)",
            )
            .set(s.snapshot_failures());
        registry
            .counter(
                "tdt_ledger_snapshot_fallbacks_total",
                "Snapshot files rejected during recovery",
            )
            .set(s.snapshot_fallbacks());
        registry
            .gauge(
                "tdt_ledger_last_snapshot_height",
                "Chain height of the newest on-disk snapshot",
            )
            .set(s.last_snapshot_height() as i64);
        registry
            .gauge(
                "tdt_ledger_snapshot_age_blocks",
                "Blocks committed since the newest snapshot",
            )
            .set(s.chain_height().saturating_sub(s.last_snapshot_height()) as i64);
        registry
            .gauge("tdt_ledger_chain_height", "Committed chain height")
            .set(s.chain_height() as i64);
        registry
            .counter("tdt_ledger_recoveries_total", "Recovery passes run")
            .set(s.recoveries());
        registry
            .gauge(
                "tdt_ledger_recovery_replayed_blocks",
                "Blocks replayed over the snapshot in the last recovery",
            )
            .set(s.replayed_blocks() as i64);
        registry
            .gauge(
                "tdt_ledger_recovery_duration_ns",
                "Wall-clock nanoseconds of the last recovery pass",
            )
            .set(s.last_recovery_ns() as i64);
        registry
            .gauge(
                "tdt_ledger_recovery_phase",
                "Recovery phase in progress (0 idle, 1 scan, 2 verify, 3 \
                 truncate, 4 snapshot, 5 replay)",
            )
            .set(s.recovery_phase() as i64);
        registry
            .gauge(
                "tdt_ledger_recovery_blocks_scanned",
                "Blocks scanned by the running (or last) recovery pass",
            )
            .set(s.recovery_blocks_scanned() as i64);
        registry
            .counter(
                "tdt_ledger_duplicate_txids_total",
                "Colliding transaction ids rejected (first write wins)",
            )
            .set(s.duplicate_txids());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RecoveryReport;

    #[test]
    fn collect_exports_all_series() {
        let stats = Arc::new(StorageStats::new());
        stats.note_wal_append(96);
        stats.note_recovery(&RecoveryReport {
            chain_height: 5,
            wal_bytes: 96,
            truncated_bytes: 0,
            tail: None,
            snapshot_height: Some(4),
            snapshot_fallbacks: 0,
            replayed_blocks: 1,
            duration_ns: 1234,
        });
        let registry = Registry::new();
        StorageMetricSource::new(Arc::clone(&stats)).collect(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("tdt_ledger_wal_appends_total"), Some(1));
        assert_eq!(snap.gauge("tdt_ledger_wal_bytes"), Some(96));
        assert_eq!(snap.gauge("tdt_ledger_chain_height"), Some(5));
        assert_eq!(snap.gauge("tdt_ledger_snapshot_age_blocks"), Some(1));
        assert_eq!(snap.counter("tdt_ledger_recoveries_total"), Some(1));
        assert_eq!(snap.gauge("tdt_ledger_recovery_duration_ns"), Some(1234));
    }
}
