//! The write-ahead log: CRC-framed, length-prefixed block records in one
//! append-only file.
//!
//! # Format
//!
//! ```text
//! file   := header frame*
//! header := "TDTWAL01"                      (8 bytes, magic + version)
//! frame  := len:u32be crc:u32be payload     (crc = CRC32(payload))
//! ```
//!
//! Each payload is one [`crate::storage::codec::encode_block`] record.
//!
//! # Recovery contract
//!
//! [`Wal::scan`] reads the file once, front to back. The first frame that
//! is short, oversized, fails its CRC, or fails block decoding ends the
//! trusted region: everything from that byte offset on is **tail** and is
//! reported (and later physically truncated) rather than trusted. A torn
//! append therefore costs at most the blocks that were never acknowledged
//! — never a prefix, never a silently wrong record.

use super::codec::{self, DecodeError};
use super::vfs::{Vfs, VfsError};
use crate::block::Block;
use std::fmt;

/// Magic + version prefix of a WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"TDTWAL01";

/// Largest accepted frame payload (matches the codec's allocation cap).
const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Why scanning stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailReason {
    /// The file ended mid-frame (torn append).
    Torn,
    /// A frame's CRC did not match its payload (bit rot / partial page).
    CrcMismatch,
    /// The frame length field is implausible.
    BadLength,
    /// The payload passed its CRC but did not decode as a block.
    Undecodable(String),
}

impl fmt::Display for TailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TailReason::Torn => write!(f, "torn frame"),
            TailReason::CrcMismatch => write!(f, "crc mismatch"),
            TailReason::BadLength => write!(f, "implausible frame length"),
            TailReason::Undecodable(why) => write!(f, "undecodable payload: {why}"),
        }
    }
}

/// The result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Every fully verified block, in file order.
    pub blocks: Vec<Block>,
    /// End-of-frame byte offset for each entry of `blocks` (so a caller
    /// that rejects block *i* on chain grounds can truncate to
    /// `offsets[i-1]`).
    pub offsets: Vec<u64>,
    /// Byte offset of the end of the last good frame — the length the
    /// file should be truncated to.
    pub valid_len: u64,
    /// Total file length at scan time.
    pub file_len: u64,
    /// Why the tail (if any) was rejected.
    pub tail: Option<TailReason>,
}

impl WalScan {
    /// Bytes past the last trusted frame.
    pub fn tail_bytes(&self) -> u64 {
        self.file_len - self.valid_len
    }
}

/// Handle over the WAL file of one ledger directory.
#[derive(Debug)]
pub struct Wal<'a> {
    vfs: &'a dyn Vfs,
    path: &'a str,
}

impl<'a> Wal<'a> {
    /// A WAL at `path` on `vfs` (the file need not exist yet).
    pub fn new(vfs: &'a dyn Vfs, path: &'a str) -> Wal<'a> {
        Wal { vfs, path }
    }

    /// Encodes one frame (length, CRC, payload).
    pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&codec::crc32(payload).to_be_bytes());
        frame.extend_from_slice(payload);
        frame
    }

    /// Appends one block record and makes it durable (write + fsync).
    /// When this returns `Ok`, the block survives any crash.
    // lint:allow(obs: "leaf I/O: FileBackend::append_block owns the commit span and records this error via record_err")
    pub fn append_block(&self, block: &Block) -> Result<u64, VfsError> {
        if !self.vfs.exists(self.path) {
            self.vfs.create(self.path, WAL_MAGIC)?;
            self.vfs.sync(self.path)?;
        }
        let frame = Self::encode_frame(&codec::encode_block(block));
        let len = frame.len() as u64;
        self.vfs.append(self.path, &frame)?;
        self.vfs.sync(self.path)?;
        Ok(len)
    }

    /// Scans the file, verifying every frame; never fails on corruption —
    /// corruption just ends the trusted region (see module docs).
    ///
    /// # Errors
    ///
    /// Only genuine VFS failures (crash injection, I/O) are errors.
    // lint:allow(obs: "leaf I/O: FileBackend::load owns the recovery.scan span and records this error via record_err")
    pub fn scan(&self) -> Result<WalScan, VfsError> {
        let bytes = match self.vfs.read(self.path) {
            Ok(bytes) => bytes,
            Err(VfsError::NotFound(_)) => {
                return Ok(WalScan {
                    blocks: Vec::new(),
                    offsets: Vec::new(),
                    valid_len: 0,
                    file_len: 0,
                    tail: None,
                })
            }
            Err(e) => return Err(e),
        };
        let file_len = bytes.len() as u64;
        // A missing or wrong header means nothing in the file is trusted.
        if !bytes.starts_with(WAL_MAGIC) {
            return Ok(WalScan {
                blocks: Vec::new(),
                offsets: Vec::new(),
                valid_len: 0,
                file_len,
                tail: (file_len > 0).then_some(TailReason::BadLength),
            });
        }
        let mut blocks = Vec::new();
        let mut offsets = Vec::new();
        let mut pos = WAL_MAGIC.len();
        let mut tail = None;
        while pos < bytes.len() {
            let Some(header) = bytes.get(pos..pos.saturating_add(8)) else {
                tail = Some(TailReason::Torn);
                break;
            };
            let (len_bytes, crc_bytes) = header.split_at(4);
            let len = codec::be_fold(len_bytes);
            let crc = codec::be_fold(crc_bytes) as u32;
            if len > u64::from(MAX_FRAME) {
                tail = Some(TailReason::BadLength);
                break;
            }
            let len = len as usize;
            let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
                tail = Some(TailReason::Torn);
                break;
            };
            if codec::crc32(payload) != crc {
                tail = Some(TailReason::CrcMismatch);
                break;
            }
            match codec::decode_block(payload) {
                Ok(block) => blocks.push(block),
                Err(DecodeError(reason)) => {
                    tail = Some(TailReason::Undecodable(reason));
                    break;
                }
            }
            pos += 8 + len;
            offsets.push(pos as u64);
        }
        Ok(WalScan {
            blocks,
            offsets,
            valid_len: pos as u64,
            file_len,
            tail,
        })
    }

    /// Physically truncates the file to the trusted region found by a
    /// scan, so future appends extend a clean tail.
    // lint:allow(obs: "leaf I/O: FileBackend::load owns the recovery.truncate span and records this error via record_err")
    pub fn truncate_to(&self, valid_len: u64) -> Result<(), VfsError> {
        if !self.vfs.exists(self.path) {
            return Ok(());
        }
        // An all-garbage file (bad header) is recreated empty.
        if valid_len < WAL_MAGIC.len() as u64 {
            self.vfs.create(self.path, WAL_MAGIC)?;
            return self.vfs.sync(self.path);
        }
        self.vfs.truncate(self.path, valid_len)
    }

    /// Current file length (0 when missing).
    pub fn file_len(&self) -> u64 {
        self.vfs.len(self.path).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::storage::vfs::MemVfs;

    fn chain(n: usize) -> Vec<Block> {
        let mut blocks = vec![Block::genesis(vec![b"cfg".to_vec()])];
        for i in 1..n {
            let prev = blocks[i - 1].header.clone();
            blocks.push(Block::next(&prev, vec![format!("tx-{i}").into_bytes()]));
        }
        blocks
    }

    #[test]
    fn append_scan_roundtrip() {
        let vfs = MemVfs::new();
        let wal = Wal::new(&vfs, "wal.log");
        let blocks = chain(5);
        for b in &blocks {
            wal.append_block(b).unwrap();
        }
        let scan = wal.scan().unwrap();
        assert_eq!(scan.blocks, blocks);
        assert_eq!(scan.tail, None);
        assert_eq!(scan.valid_len, scan.file_len);
    }

    #[test]
    fn missing_file_scans_empty() {
        let vfs = MemVfs::new();
        let wal = Wal::new(&vfs, "wal.log");
        let scan = wal.scan().unwrap();
        assert!(scan.blocks.is_empty());
        assert_eq!(scan.tail, None);
    }

    #[test]
    fn torn_tail_is_truncated_not_trusted() {
        let vfs = MemVfs::new();
        let wal = Wal::new(&vfs, "wal.log");
        let blocks = chain(3);
        for b in &blocks {
            wal.append_block(b).unwrap();
        }
        let good_len = vfs.len("wal.log").unwrap();
        // Simulate a torn append: half a frame at the end.
        vfs.append("wal.log", &[1, 2, 3, 4, 5]).unwrap();
        let scan = wal.scan().unwrap();
        assert_eq!(scan.blocks, blocks);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.tail, Some(TailReason::Torn));
        wal.truncate_to(scan.valid_len).unwrap();
        assert_eq!(wal.file_len(), good_len);
        // Appending after repair keeps working.
        let next = Block::next(&blocks[2].header, vec![b"x".to_vec()]);
        wal.append_block(&next).unwrap();
        assert_eq!(wal.scan().unwrap().blocks.len(), 4);
    }

    #[test]
    fn crc_mismatch_ends_trust_at_the_flip() {
        let vfs = MemVfs::new();
        let wal = Wal::new(&vfs, "wal.log");
        let blocks = chain(4);
        let mut offsets = vec![WAL_MAGIC.len() as u64];
        for b in &blocks {
            let len = wal.append_block(b).unwrap();
            offsets.push(offsets.last().unwrap() + len);
        }
        // Flip a payload bit inside the third frame.
        vfs.corrupt("wal.log", offsets[2] as usize + 9, 0x01)
            .unwrap();
        let scan = wal.scan().unwrap();
        assert_eq!(scan.blocks, blocks[..2]);
        assert_eq!(scan.valid_len, offsets[2]);
        assert_eq!(scan.tail, Some(TailReason::CrcMismatch));
    }

    #[test]
    fn bad_header_trusts_nothing() {
        let vfs = MemVfs::new();
        vfs.create("wal.log", b"garbage!").unwrap();
        let wal = Wal::new(&vfs, "wal.log");
        let scan = wal.scan().unwrap();
        assert!(scan.blocks.is_empty());
        assert_eq!(scan.valid_len, 0);
        wal.truncate_to(scan.valid_len).unwrap();
        // Repair recreated a clean header.
        assert_eq!(vfs.read("wal.log").unwrap(), WAL_MAGIC);
    }

    #[test]
    fn absurd_length_field_is_rejected() {
        let vfs = MemVfs::new();
        let wal = Wal::new(&vfs, "wal.log");
        wal.append_block(&chain(1)[0]).unwrap();
        let good = vfs.len("wal.log").unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        frame.extend_from_slice(&[0u8; 4]);
        vfs.append("wal.log", &frame).unwrap();
        let scan = wal.scan().unwrap();
        assert_eq!(scan.blocks.len(), 1);
        assert_eq!(scan.valid_len, good);
        assert_eq!(scan.tail, Some(TailReason::BadLength));
    }
}
