//! Per-key value history, the basis for provenance queries
//! (`GetHistoryForKey` in Fabric chaincode terms).

use crate::rwset::{TxRwSet, Version};
use std::collections::HashMap;

/// One historical modification of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Version (block/tx) of the modification.
    pub version: Version,
    /// Value written, or `None` for a delete.
    pub value: Option<Vec<u8>>,
}

/// Records every committed modification per (namespace, key).
#[derive(Debug, Clone, Default)]
pub struct HistoryIndex {
    entries: HashMap<(String, String), Vec<HistoryEntry>>,
}

impl HistoryIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the writes of a committed transaction.
    pub fn record(&mut self, rwset: &TxRwSet, version: Version) {
        for ns in &rwset.ns_sets {
            for w in &ns.writes {
                self.entries
                    .entry((ns.namespace.clone(), w.key.clone()))
                    .or_default()
                    .push(HistoryEntry {
                        version,
                        value: w.value.clone(),
                    });
            }
        }
    }

    /// Full modification history of a key, oldest first.
    pub fn history(&self, namespace: &str, key: &str) -> &[HistoryEntry] {
        self.entries
            .get(&(namespace.to_string(), key.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The number of distinct keys with any history.
    pub fn key_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterates every per-key history list (snapshot encoding; the caller
    /// sorts — this is a `HashMap` walk).
    pub fn iter_entries(&self) -> impl Iterator<Item = (&(String, String), &Vec<HistoryEntry>)> {
        self.entries.iter()
    }

    /// Re-inserts one key's full history decoded from a snapshot
    /// (recovery-only; replaces whatever is there).
    pub fn insert_recovered(&mut self, namespace: String, key: String, entries: Vec<HistoryEntry>) {
        self.entries.insert((namespace, key), entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(ns: &str, key: &str, value: Option<&[u8]>) -> TxRwSet {
        let mut rw = TxRwSet::new();
        rw.record_write(ns, key, value.map(<[u8]>::to_vec));
        rw
    }

    #[test]
    fn history_accumulates_in_order() {
        let mut idx = HistoryIndex::new();
        idx.record(&tx("cc", "k", Some(b"v1")), Version::new(1, 0));
        idx.record(&tx("cc", "k", Some(b"v2")), Version::new(2, 0));
        idx.record(&tx("cc", "k", None), Version::new(3, 0));
        let h = idx.history("cc", "k");
        assert_eq!(h.len(), 3);
        assert_eq!(h[0].value, Some(b"v1".to_vec()));
        assert_eq!(h[1].value, Some(b"v2".to_vec()));
        assert_eq!(h[2].value, None);
        assert_eq!(h[2].version, Version::new(3, 0));
    }

    #[test]
    fn unknown_key_has_empty_history() {
        let idx = HistoryIndex::new();
        assert!(idx.history("cc", "nope").is_empty());
    }

    #[test]
    fn namespaces_separate() {
        let mut idx = HistoryIndex::new();
        idx.record(&tx("a", "k", Some(b"x")), Version::new(1, 0));
        idx.record(&tx("b", "k", Some(b"y")), Version::new(1, 1));
        assert_eq!(idx.history("a", "k").len(), 1);
        assert_eq!(idx.history("b", "k").len(), 1);
        assert_eq!(idx.key_count(), 2);
    }
}
