//! Transaction read/write sets.
//!
//! Fabric's execute-order-validate pipeline simulates a transaction against
//! a snapshot, recording the *versions* of every key read and the new values
//! of every key written. At commit time the validator re-checks the read
//! versions against current state (MVCC) and applies the writes only if
//! nothing moved underneath.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The version of a committed key: the block and intra-block transaction
/// index that last wrote it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Version {
    /// Block number of the writing transaction.
    pub block: u64,
    /// Index of the writing transaction within the block.
    pub tx: u64,
}

impl Version {
    /// Creates a version.
    pub fn new(block: u64, tx: u64) -> Self {
        Version { block, tx }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.block, self.tx)
    }
}

/// One recorded read: the key and the version observed (None if the key was
/// absent at simulation time).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvRead {
    /// The key that was read.
    pub key: String,
    /// Version observed, or `None` when the key did not exist.
    pub version: Option<Version>,
}

/// One recorded write: the key and new value (`None` deletes the key).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvWrite {
    /// The key being written.
    pub key: String,
    /// New value; `None` is a delete.
    pub value: Option<Vec<u8>>,
}

/// The read/write set of one chaincode namespace.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NsRwSet {
    /// Chaincode namespace the keys belong to.
    pub namespace: String,
    /// Recorded reads, in order.
    pub reads: Vec<KvRead>,
    /// Recorded writes, in order (later writes to a key supersede earlier).
    pub writes: Vec<KvWrite>,
}

impl NsRwSet {
    /// Creates an empty set for `namespace`.
    pub fn new(namespace: impl Into<String>) -> Self {
        NsRwSet {
            namespace: namespace.into(),
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }
}

/// The complete read/write set of a transaction across namespaces.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TxRwSet {
    /// Per-namespace sets, in first-touch order.
    pub ns_sets: Vec<NsRwSet>,
}

impl TxRwSet {
    /// Creates an empty transaction read/write set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the set for `namespace`, creating it if needed.
    pub fn namespace_mut(&mut self, namespace: &str) -> &mut NsRwSet {
        let pos = match self.ns_sets.iter().position(|s| s.namespace == namespace) {
            Some(pos) => pos,
            None => {
                self.ns_sets.push(NsRwSet::new(namespace));
                self.ns_sets.len() - 1
            }
        };
        // lint:allow(panic: "pos was just found by position, or is len-1 after the push; get_mut cannot miss")
        self.ns_sets.get_mut(pos).expect("namespace entry exists")
    }

    /// Records a read of `key` at `version`, deduplicating repeat reads.
    pub fn record_read(&mut self, namespace: &str, key: &str, version: Option<Version>) {
        let ns = self.namespace_mut(namespace);
        if !ns.reads.iter().any(|r| r.key == key) {
            ns.reads.push(KvRead {
                key: key.to_string(),
                version,
            });
        }
    }

    /// Records a write of `key`, superseding any earlier write of it.
    pub fn record_write(&mut self, namespace: &str, key: &str, value: Option<Vec<u8>>) {
        let ns = self.namespace_mut(namespace);
        if let Some(w) = ns.writes.iter_mut().find(|w| w.key == key) {
            w.value = value;
        } else {
            ns.writes.push(KvWrite {
                key: key.to_string(),
                value,
            });
        }
    }

    /// Looks up a pending write (read-your-own-writes during simulation).
    pub fn pending_write(&self, namespace: &str, key: &str) -> Option<&KvWrite> {
        self.ns_sets
            .iter()
            .find(|s| s.namespace == namespace)?
            .writes
            .iter()
            .find(|w| w.key == key)
    }

    /// True when the transaction wrote nothing (a pure query).
    pub fn is_read_only(&self) -> bool {
        self.ns_sets.iter().all(|s| s.writes.is_empty())
    }

    /// Total number of recorded reads.
    pub fn read_count(&self) -> usize {
        self.ns_sets.iter().map(|s| s.reads.len()).sum()
    }

    /// Total number of recorded writes.
    pub fn write_count(&self) -> usize {
        self.ns_sets.iter().map(|s| s.writes.len()).sum()
    }

    /// Canonical bytes for hashing/endorsement signatures.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        // Deterministic: namespaces in recorded order, entries in recorded
        // order, all fields length-prefixed.
        let mut out = Vec::new();
        fn push(out: &mut Vec<u8>, bytes: &[u8]) {
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(bytes);
        }
        out.extend_from_slice(b"rwset-v1");
        out.extend_from_slice(&(self.ns_sets.len() as u32).to_be_bytes());
        for ns in &self.ns_sets {
            push(&mut out, ns.namespace.as_bytes());
            out.extend_from_slice(&(ns.reads.len() as u32).to_be_bytes());
            for r in &ns.reads {
                push(&mut out, r.key.as_bytes());
                match r.version {
                    Some(v) => {
                        out.push(1);
                        out.extend_from_slice(&v.block.to_be_bytes());
                        out.extend_from_slice(&v.tx.to_be_bytes());
                    }
                    None => out.push(0),
                }
            }
            out.extend_from_slice(&(ns.writes.len() as u32).to_be_bytes());
            for w in &ns.writes {
                push(&mut out, w.key.as_bytes());
                match &w.value {
                    Some(v) => {
                        out.push(1);
                        push(&mut out, v);
                    }
                    None => out.push(0),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_display() {
        assert_eq!(Version::new(3, 1).to_string(), "3:1");
    }

    #[test]
    fn version_ordering() {
        assert!(Version::new(1, 5) < Version::new(2, 0));
        assert!(Version::new(2, 0) < Version::new(2, 1));
    }

    #[test]
    fn reads_deduplicated() {
        let mut rw = TxRwSet::new();
        rw.record_read("cc", "k", Some(Version::new(1, 0)));
        rw.record_read("cc", "k", Some(Version::new(1, 0)));
        rw.record_read("cc", "k2", None);
        assert_eq!(rw.read_count(), 2);
    }

    #[test]
    fn writes_superseded() {
        let mut rw = TxRwSet::new();
        rw.record_write("cc", "k", Some(b"v1".to_vec()));
        rw.record_write("cc", "k", Some(b"v2".to_vec()));
        assert_eq!(rw.write_count(), 1);
        assert_eq!(
            rw.pending_write("cc", "k").unwrap().value,
            Some(b"v2".to_vec())
        );
    }

    #[test]
    fn delete_recorded_as_none() {
        let mut rw = TxRwSet::new();
        rw.record_write("cc", "k", Some(b"v".to_vec()));
        rw.record_write("cc", "k", None);
        assert_eq!(rw.pending_write("cc", "k").unwrap().value, None);
    }

    #[test]
    fn namespaces_isolated() {
        let mut rw = TxRwSet::new();
        rw.record_write("cc1", "k", Some(b"a".to_vec()));
        rw.record_write("cc2", "k", Some(b"b".to_vec()));
        assert_eq!(rw.ns_sets.len(), 2);
        assert_eq!(
            rw.pending_write("cc1", "k").unwrap().value,
            Some(b"a".to_vec())
        );
        assert_eq!(
            rw.pending_write("cc2", "k").unwrap().value,
            Some(b"b".to_vec())
        );
        assert!(rw.pending_write("cc3", "k").is_none());
    }

    #[test]
    fn read_only_detection() {
        let mut rw = TxRwSet::new();
        rw.record_read("cc", "k", None);
        assert!(rw.is_read_only());
        rw.record_write("cc", "k", Some(vec![1]));
        assert!(!rw.is_read_only());
    }

    #[test]
    fn canonical_bytes_deterministic_and_sensitive() {
        let mut a = TxRwSet::new();
        a.record_read("cc", "k", Some(Version::new(1, 0)));
        a.record_write("cc", "k", Some(b"v".to_vec()));
        let mut b = TxRwSet::new();
        b.record_read("cc", "k", Some(Version::new(1, 0)));
        b.record_write("cc", "k", Some(b"v".to_vec()));
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        b.record_write("cc", "k", Some(b"v2".to_vec()));
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn canonical_bytes_distinguish_read_version() {
        let mut a = TxRwSet::new();
        a.record_read("cc", "k", Some(Version::new(1, 0)));
        let mut b = TxRwSet::new();
        b.record_read("cc", "k", None);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }
}
