//! Versioned key-value world state with MVCC validation.
//!
//! Each committed key carries the [`Version`] of the transaction that last
//! wrote it. Validators call [`WorldState::mvcc_check`] to decide whether a
//! simulated transaction's reads are still current before applying its
//! writes — the "validate" half of execute-order-validate.

use crate::rwset::{TxRwSet, Version};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// A committed value and the version that wrote it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedValue {
    /// The value bytes.
    pub value: Vec<u8>,
    /// Version of the writing transaction.
    pub version: Version,
}

/// The current state of every key across all chaincode namespaces.
#[derive(Debug, Clone, Default)]
pub struct WorldState {
    // (namespace, key) -> versioned value; BTreeMap gives us range scans.
    entries: BTreeMap<(String, String), VersionedValue>,
}

impl WorldState {
    /// Creates an empty world state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current value of `key` in `namespace`.
    pub fn get(&self, namespace: &str, key: &str) -> Option<&VersionedValue> {
        self.entries.get(&(namespace.to_string(), key.to_string()))
    }

    /// Current version of `key`, or `None` if absent.
    pub fn version(&self, namespace: &str, key: &str) -> Option<Version> {
        self.get(namespace, key).map(|v| v.version)
    }

    /// Range scan over keys in `[start, end)` within a namespace, in key
    /// order. An empty `end` means "to the end of the namespace".
    pub fn range<'a>(
        &'a self,
        namespace: &str,
        start: &str,
        end: &str,
    ) -> impl Iterator<Item = (&'a str, &'a VersionedValue)> + 'a {
        let ns = namespace.to_string();
        let lower = Bound::Included((ns.clone(), start.to_string()));
        let upper = if end.is_empty() {
            Bound::Excluded((format!("{ns}\u{0}"), String::new()))
        } else {
            Bound::Excluded((ns.clone(), end.to_string()))
        };
        self.entries
            .range((lower, upper))
            .filter(move |((n, _), _)| *n == ns)
            .map(|((_, k), v)| (k.as_str(), v))
    }

    /// All keys of a namespace (for diagnostics and tests).
    pub fn keys_in_namespace(&self, namespace: &str) -> Vec<&str> {
        self.range(namespace, "", "").map(|(k, _)| k).collect()
    }

    /// Number of live keys across all namespaces.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no key exists.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A deterministic digest of the entire world state: SHA-256 over the
    /// sorted `(namespace, key, version, value)` entries. Two replicas
    /// that executed the same blocks must produce identical digests —
    /// the basis for replica-consistency checks and checkpointing.
    pub fn state_hash(&self) -> [u8; 32] {
        let mut hasher = tdt_crypto::sha256::Sha256::new();
        hasher.update(b"tdt-state-v1");
        // BTreeMap iterates in sorted order, so this is deterministic.
        for ((namespace, key), entry) in &self.entries {
            hasher.update(&(namespace.len() as u32).to_be_bytes());
            hasher.update(namespace.as_bytes());
            hasher.update(&(key.len() as u32).to_be_bytes());
            hasher.update(key.as_bytes());
            hasher.update(&entry.version.block.to_be_bytes());
            hasher.update(&entry.version.tx.to_be_bytes());
            hasher.update(&(entry.value.len() as u32).to_be_bytes());
            hasher.update(&entry.value);
        }
        hasher.finalize()
    }

    /// Iterates every `(namespace, key) -> value` entry in sorted order —
    /// the deterministic walk the snapshot encoder and `state_hash` rely
    /// on.
    pub fn iter_entries(&self) -> impl Iterator<Item = (&(String, String), &VersionedValue)> {
        self.entries.iter()
    }

    /// Re-inserts one entry decoded from a snapshot. Recovery-only:
    /// bypasses rw-set application because the snapshot already holds the
    /// final value and version for the key.
    pub fn insert_recovered(&mut self, namespace: String, key: String, value: VersionedValue) {
        self.entries.insert((namespace, key), value);
    }

    /// MVCC check: every read version in `rwset` must match current state.
    ///
    /// Read-only transactions are exempt in Fabric (they are not ordered);
    /// callers decide whether to enforce that.
    pub fn mvcc_check(&self, rwset: &TxRwSet) -> bool {
        for ns in &rwset.ns_sets {
            for read in &ns.reads {
                let current = self.version(&ns.namespace, &read.key);
                if current != read.version {
                    return false;
                }
            }
        }
        true
    }

    /// Applies the writes of a validated transaction at `version`.
    pub fn apply(&mut self, rwset: &TxRwSet, version: Version) {
        for ns in &rwset.ns_sets {
            for write in &ns.writes {
                let full_key = (ns.namespace.clone(), write.key.clone());
                match &write.value {
                    Some(value) => {
                        self.entries.insert(
                            full_key,
                            VersionedValue {
                                value: value.clone(),
                                version,
                            },
                        );
                    }
                    None => {
                        self.entries.remove(&full_key);
                    }
                }
            }
        }
    }
}

/// A validation overlay over a [`WorldState`] that *stages* the writes of
/// a block being validated without mutating the base.
///
/// The durable commit pipeline needs validate → WAL-append → apply as
/// three separate steps: intra-block MVCC (tx *i* must see the staged
/// writes of valid txs `0..i` of the same block) previously forced the
/// validator to mutate the live state mid-loop, which is unrecoverable if
/// the WAL append then fails. `StagedState` keeps the staged versions in
/// a side map so nothing touches the base until the block is durable.
#[derive(Debug)]
pub struct StagedState<'a> {
    base: &'a WorldState,
    // (namespace, key) -> staged version; `None` records a staged delete.
    pending: HashMap<(String, String), Option<Version>>,
}

impl<'a> StagedState<'a> {
    /// A fresh overlay with nothing staged.
    pub fn new(base: &'a WorldState) -> StagedState<'a> {
        StagedState {
            base,
            pending: HashMap::new(),
        }
    }

    /// Current version of `key` as seen through the overlay.
    pub fn version(&self, namespace: &str, key: &str) -> Option<Version> {
        match self.pending.get(&(namespace.to_string(), key.to_string())) {
            Some(staged) => *staged,
            None => self.base.version(namespace, key),
        }
    }

    /// MVCC check against base state plus staged writes — the overlay
    /// twin of [`WorldState::mvcc_check`].
    pub fn mvcc_check(&self, rwset: &TxRwSet) -> bool {
        for ns in &rwset.ns_sets {
            for read in &ns.reads {
                if self.version(&ns.namespace, &read.key) != read.version {
                    return false;
                }
            }
        }
        true
    }

    /// Stages the writes of a validated transaction at `version` without
    /// touching the base state.
    pub fn stage(&mut self, rwset: &TxRwSet, version: Version) {
        for ns in &rwset.ns_sets {
            for write in &ns.writes {
                let staged = write.value.as_ref().map(|_| version);
                self.pending
                    .insert((ns.namespace.clone(), write.key.clone()), staged);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tx(ns: &str, key: &str, value: &[u8]) -> TxRwSet {
        let mut rw = TxRwSet::new();
        rw.record_write(ns, key, Some(value.to_vec()));
        rw
    }

    #[test]
    fn get_returns_committed_value() {
        let mut ws = WorldState::new();
        ws.apply(&write_tx("cc", "k", b"v"), Version::new(1, 0));
        let vv = ws.get("cc", "k").unwrap();
        assert_eq!(vv.value, b"v");
        assert_eq!(vv.version, Version::new(1, 0));
    }

    #[test]
    fn get_absent_is_none() {
        let ws = WorldState::new();
        assert!(ws.get("cc", "nope").is_none());
        assert!(ws.is_empty());
    }

    #[test]
    fn delete_removes_key() {
        let mut ws = WorldState::new();
        ws.apply(&write_tx("cc", "k", b"v"), Version::new(1, 0));
        let mut del = TxRwSet::new();
        del.record_write("cc", "k", None);
        ws.apply(&del, Version::new(2, 0));
        assert!(ws.get("cc", "k").is_none());
    }

    #[test]
    fn namespaces_do_not_collide() {
        let mut ws = WorldState::new();
        ws.apply(&write_tx("cc1", "k", b"a"), Version::new(1, 0));
        ws.apply(&write_tx("cc2", "k", b"b"), Version::new(1, 1));
        assert_eq!(ws.get("cc1", "k").unwrap().value, b"a");
        assert_eq!(ws.get("cc2", "k").unwrap().value, b"b");
        assert_eq!(ws.len(), 2);
    }

    #[test]
    fn mvcc_passes_on_current_reads() {
        let mut ws = WorldState::new();
        ws.apply(&write_tx("cc", "k", b"v"), Version::new(1, 0));
        let mut rw = TxRwSet::new();
        rw.record_read("cc", "k", Some(Version::new(1, 0)));
        rw.record_write("cc", "k", Some(b"v2".to_vec()));
        assert!(ws.mvcc_check(&rw));
    }

    #[test]
    fn mvcc_fails_on_stale_read() {
        let mut ws = WorldState::new();
        ws.apply(&write_tx("cc", "k", b"v"), Version::new(1, 0));
        // Another tx commits first.
        ws.apply(&write_tx("cc", "k", b"v2"), Version::new(2, 0));
        let mut rw = TxRwSet::new();
        rw.record_read("cc", "k", Some(Version::new(1, 0)));
        assert!(!ws.mvcc_check(&rw));
    }

    #[test]
    fn mvcc_fails_on_phantom_create() {
        // Tx read "absent", but key now exists.
        let mut ws = WorldState::new();
        ws.apply(&write_tx("cc", "k", b"v"), Version::new(1, 0));
        let mut rw = TxRwSet::new();
        rw.record_read("cc", "k", None);
        assert!(!ws.mvcc_check(&rw));
    }

    #[test]
    fn mvcc_passes_on_absent_read_still_absent() {
        let ws = WorldState::new();
        let mut rw = TxRwSet::new();
        rw.record_read("cc", "k", None);
        assert!(ws.mvcc_check(&rw));
    }

    #[test]
    fn mvcc_fails_on_deleted_key() {
        let mut ws = WorldState::new();
        ws.apply(&write_tx("cc", "k", b"v"), Version::new(1, 0));
        let mut rw = TxRwSet::new();
        rw.record_read("cc", "k", Some(Version::new(1, 0)));
        // Key deleted before this tx validates.
        let mut del = TxRwSet::new();
        del.record_write("cc", "k", None);
        ws.apply(&del, Version::new(2, 0));
        assert!(!ws.mvcc_check(&rw));
    }

    #[test]
    fn range_scan_in_order() {
        let mut ws = WorldState::new();
        for (i, k) in ["apple", "banana", "cherry", "date"].iter().enumerate() {
            ws.apply(&write_tx("cc", k, b"x"), Version::new(1, i as u64));
        }
        ws.apply(&write_tx("other", "berry", b"x"), Version::new(1, 9));
        let keys: Vec<&str> = ws.range("cc", "b", "d").map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["banana", "cherry"]);
        let all: Vec<&str> = ws.range("cc", "", "").map(|(k, _)| k).collect();
        assert_eq!(all, vec!["apple", "banana", "cherry", "date"]);
    }

    #[test]
    fn keys_in_namespace_excludes_other_namespaces() {
        let mut ws = WorldState::new();
        ws.apply(&write_tx("a", "k1", b"x"), Version::new(1, 0));
        ws.apply(&write_tx("b", "k2", b"x"), Version::new(1, 1));
        assert_eq!(ws.keys_in_namespace("a"), vec!["k1"]);
        assert_eq!(ws.keys_in_namespace("b"), vec!["k2"]);
        assert!(ws.keys_in_namespace("c").is_empty());
    }

    #[test]
    fn state_hash_deterministic_and_order_insensitive() {
        let mut a = WorldState::new();
        let mut b = WorldState::new();
        // Apply the same writes in different transaction groupings.
        a.apply(&write_tx("cc", "k1", b"v1"), Version::new(1, 0));
        a.apply(&write_tx("cc", "k2", b"v2"), Version::new(1, 1));
        let mut both = TxRwSet::new();
        both.record_write("cc", "k2", Some(b"v2".to_vec()));
        b.apply(&both, Version::new(1, 1));
        b.apply(&write_tx("cc", "k1", b"v1"), Version::new(1, 0));
        assert_eq!(a.state_hash(), b.state_hash());
    }

    #[test]
    fn state_hash_sensitive_to_values_and_versions() {
        let mut a = WorldState::new();
        a.apply(&write_tx("cc", "k", b"v"), Version::new(1, 0));
        let mut b = WorldState::new();
        b.apply(&write_tx("cc", "k", b"v2"), Version::new(1, 0));
        assert_ne!(a.state_hash(), b.state_hash());
        let mut c = WorldState::new();
        c.apply(&write_tx("cc", "k", b"v"), Version::new(2, 0));
        assert_ne!(a.state_hash(), c.state_hash());
        assert_ne!(a.state_hash(), WorldState::new().state_hash());
    }

    #[test]
    fn staged_state_does_not_mutate_base() {
        let mut ws = WorldState::new();
        ws.apply(&write_tx("cc", "k", b"v"), Version::new(1, 0));
        let mut staged = StagedState::new(&ws);
        staged.stage(&write_tx("cc", "k", b"v2"), Version::new(2, 0));
        assert_eq!(staged.version("cc", "k"), Some(Version::new(2, 0)));
        assert_eq!(ws.version("cc", "k"), Some(Version::new(1, 0)));
    }

    #[test]
    fn staged_write_visible_to_later_mvcc_check() {
        let ws = WorldState::new();
        let mut staged = StagedState::new(&ws);
        staged.stage(&write_tx("cc", "k", b"v"), Version::new(1, 0));
        // A tx that read the staged version passes; a stale read fails.
        let mut fresh = TxRwSet::new();
        fresh.record_read("cc", "k", Some(Version::new(1, 0)));
        assert!(staged.mvcc_check(&fresh));
        let mut stale = TxRwSet::new();
        stale.record_read("cc", "k", None);
        assert!(!staged.mvcc_check(&stale));
    }

    #[test]
    fn staged_delete_reads_as_absent() {
        let mut ws = WorldState::new();
        ws.apply(&write_tx("cc", "k", b"v"), Version::new(1, 0));
        let mut staged = StagedState::new(&ws);
        let mut del = TxRwSet::new();
        del.record_write("cc", "k", None);
        staged.stage(&del, Version::new(2, 0));
        assert_eq!(staged.version("cc", "k"), None);
    }

    #[test]
    fn recovered_entries_hash_identically() {
        let mut ws = WorldState::new();
        ws.apply(&write_tx("cc", "k1", b"v1"), Version::new(1, 0));
        ws.apply(&write_tx("cc", "k2", b"v2"), Version::new(1, 1));
        let mut recovered = WorldState::new();
        for ((ns, key), vv) in ws.iter_entries() {
            recovered.insert_recovered(ns.clone(), key.clone(), vv.clone());
        }
        assert_eq!(recovered.state_hash(), ws.state_hash());
    }

    #[test]
    fn later_write_wins_within_apply() {
        let mut ws = WorldState::new();
        let mut rw = TxRwSet::new();
        rw.record_write("cc", "k", Some(b"first".to_vec()));
        rw.record_write("cc", "k", Some(b"second".to_vec()));
        ws.apply(&rw, Version::new(1, 0));
        assert_eq!(ws.get("cc", "k").unwrap().value, b"second");
    }
}
