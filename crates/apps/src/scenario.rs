//! The complete Fig. 3 interoperation scenario, step by step.
//!
//! "On STL, a seller and a carrier arrange shipment of exported goods
//! against a purchase order negotiated offline between the seller and a
//! buyer (Step 1). Steps 5-8 culminate in the carrier taking possession of
//! the shipment and producing a bill of lading (B/L) as proof. On SWT, the
//! buyer's bank issues an L/C ... (Steps 2-4) ... the seller's bank may
//! request payment ... as illustrated in Step 10, but it must have proof
//! of existence of a valid B/L, and such proof is fetched from STL using a
//! cross-network query (Step 9)."

use crate::stl_app::{CarrierApp, SellerApp};
use crate::swt_app::{BuyerApp, SellerClientApp};
use interop::setup::Testbed;
use interop::InteropError;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdt_contracts::swt::LcStatus;

/// Table 1 of the paper: common use case acronyms.
pub const ACRONYMS: &[(&str, &str)] = &[
    ("L/C", "Letter of Credit: Trade Financing Instrument"),
    (
        "B/L",
        "Bill of Lading: Carrier Acknowledgement of Shipment Receipt",
    ),
    ("(S)TL", "(Simplified) TradeLens: Trade Logistics Network"),
    ("(S)WT", "(Simplified) We.Trade: Trade Finance Network"),
    ("SWT-SC", "Simplified We.Trade-Seller Client"),
    ("ECC", "Exposure Control Chaincode"),
    (
        "CMDAC",
        "Configuration Management & Data Acceptance Chaincode",
    ),
];

/// Renders Table 1 as text.
pub fn acronym_table() -> String {
    let mut out =
        String::from("Acronym | Expansion & Description\n--------|------------------------\n");
    for (acronym, expansion) in ACRONYMS {
        out.push_str(&format!("{acronym:7} | {expansion}\n"));
    }
    out
}

/// One executed scenario step.
#[derive(Debug, Clone)]
pub struct ScenarioStep {
    /// Step number as labelled in Fig. 3.
    pub number: &'static str,
    /// What happened.
    pub description: String,
    /// Which network the step ran on.
    pub network: &'static str,
    /// Wall-clock duration.
    pub duration: Duration,
}

/// The record of a full scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// The purchase-order reference linking both networks.
    pub po_ref: String,
    /// Executed steps, in order.
    pub steps: Vec<ScenarioStep>,
    /// Final L/C status on SWT.
    pub final_lc_status: LcStatus,
}

impl ScenarioReport {
    /// Renders the step table.
    pub fn table(&self) -> String {
        let mut out = String::from(
            "step | network | description | latency\n-----|---------|-------------|--------\n",
        );
        for s in &self.steps {
            out.push_str(&format!(
                "{:4} | {:7} | {:<60} | {:>9.1?}\n",
                s.number, s.network, s.description, s.duration
            ));
        }
        out
    }
}

/// Drives the entire Fig. 3 scenario over a prepared [`Testbed`].
///
/// # Errors
///
/// Returns an [`InteropError`] when any step fails.
pub fn run_trade_scenario(testbed: &Testbed, po_ref: &str) -> Result<ScenarioReport, InteropError> {
    let seller = SellerApp::new(testbed.stl_seller_gateway());
    let carrier = CarrierApp::new(testbed.stl_carrier_gateway());
    let buyer = BuyerApp::new(testbed.swt_buyer_gateway());
    let swt_sc = SellerClientApp::new(testbed.swt_seller_gateway(), Arc::clone(&testbed.swt_relay));
    let mut steps: Vec<ScenarioStep> = Vec::new();
    let mut run = |number: &'static str,
                   network: &'static str,
                   description: String,
                   f: &mut dyn FnMut() -> Result<(), InteropError>|
     -> Result<(), InteropError> {
        let t0 = Instant::now();
        f()?;
        steps.push(ScenarioStep {
            number,
            description,
            network,
            duration: t0.elapsed(),
        });
        Ok(())
    };

    // Step 1: P.O. negotiated offline; the seller registers the shipment.
    run(
        "1",
        "STL",
        format!("seller creates shipment against purchase order {po_ref}"),
        &mut || Ok(seller.create_shipment(po_ref, "600 tulip bulbs")?),
    )?;
    // Steps 2-4: buyer applies, buyer's bank issues the L/C.
    run(
        "2",
        "SWT",
        "buyer applies for a letter of credit".into(),
        &mut || {
            Ok(buyer.request_lc(
                po_ref,
                &format!("LC-{po_ref}"),
                "buyer-gmbh",
                "tulip-exports",
                100_000,
            )?)
        },
    )?;
    run(
        "3-4",
        "SWT",
        "buyer's bank issues the L/C in favour of the seller's bank".into(),
        &mut || Ok(buyer.issue_lc(po_ref)?),
    )?;
    // Steps 5-8: booking, possession transfer, bill of lading.
    run(
        "5-6",
        "STL",
        "carrier confirms the booking".into(),
        &mut || Ok(carrier.confirm_booking(po_ref)?),
    )?;
    run(
        "7",
        "STL",
        "seller transfers possession of the goods".into(),
        &mut || Ok(seller.transfer_possession(po_ref)?),
    )?;
    run(
        "8",
        "STL",
        "carrier takes possession and issues the bill of lading".into(),
        &mut || Ok(carrier.issue_bill_of_lading(po_ref, &format!("BL-{po_ref}"))?),
    )?;
    // Step 9: cross-network query with proof, then the upload transaction.
    run(
        "9",
        "cross",
        "SWT-SC fetches the B/L from STL with proof and uploads dispatch docs".into(),
        &mut || swt_sc.fetch_and_upload(po_ref).map(|_| ()),
    )?;
    // Step 10: payment request and settlement.
    run(
        "10a",
        "SWT",
        "seller's bank requests payment under the L/C".into(),
        &mut || Ok(swt_sc.request_payment(po_ref)?),
    )?;
    run(
        "10b",
        "SWT",
        "buyer's bank records the payment".into(),
        &mut || Ok(buyer.record_payment(po_ref)?),
    )?;

    let final_lc_status = buyer.letter_of_credit(po_ref)?.status;
    Ok(ScenarioReport {
        po_ref: po_ref.to_string(),
        steps,
        final_lc_status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop::setup::stl_swt_testbed;

    #[test]
    fn full_scenario_ends_paid() {
        let t = stl_swt_testbed();
        let report = run_trade_scenario(&t, "PO-2026-07").unwrap();
        assert_eq!(report.final_lc_status, LcStatus::Paid);
        assert_eq!(report.steps.len(), 9);
        let table = report.table();
        assert!(table.contains("cross"));
        assert!(table.contains("bill of lading"));
    }

    #[test]
    fn scenario_fails_cleanly_when_interop_unconfigured() {
        // Without the exposure rule, Step 9 must fail with AccessDenied —
        // and the earlier steps must already be committed.
        let t = stl_swt_testbed();
        interop::config::remove_exposure_rule(
            &t.stl_seller_gateway(),
            "swt",
            "seller-bank-org",
            "TradeLensCC",
            "GetBillOfLading",
        )
        .unwrap();
        let err = run_trade_scenario(&t, "PO-X").unwrap_err();
        assert!(matches!(err, InteropError::AccessDenied(_)));
    }

    #[test]
    fn acronym_table_complete() {
        let table = acronym_table();
        for (acronym, _) in ACRONYMS {
            assert!(table.contains(acronym));
        }
        assert_eq!(ACRONYMS.len(), 7);
    }

    #[test]
    fn scenario_repeatable_with_distinct_pos() {
        let t = stl_swt_testbed();
        let r1 = run_trade_scenario(&t, "PO-A").unwrap();
        let r2 = run_trade_scenario(&t, "PO-B").unwrap();
        assert_eq!(r1.final_lc_status, LcStatus::Paid);
        assert_eq!(r2.final_lc_status, LcStatus::Paid);
    }
}
