//! The Simplified We.Trade applications: Buyer and the SWT Seller Client.
//!
//! The SWT Seller Client (SWT-SC) is the paper's adapted application: it
//! holds an encryption key pair, fetches the B/L from STL through the
//! relay (Step 9 of Fig. 3), decrypts and verifies the response, and runs
//! `UploadDispatchDocs` with the data and proof as arguments.

use interop::{InteropClient, InteropError, RemoteData};
use std::sync::Arc;
use tdt_contracts::swt::{LetterOfCredit, SwtChaincode};
use tdt_fabric::error::FabricError;
use tdt_fabric::gateway::Gateway;
use tdt_relay::service::RelayService;
use tdt_wire::codec::Message;
use tdt_wire::messages::{NetworkAddress, VerificationPolicy};

/// The Buyer's SWT application (a client of the Buyer's Bank).
#[derive(Debug, Clone)]
pub struct BuyerApp {
    gateway: Gateway,
}

impl BuyerApp {
    /// Connects the buyer application through `gateway`.
    pub fn new(gateway: Gateway) -> Self {
        BuyerApp { gateway }
    }

    /// Applies for a letter of credit against a purchase order.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on submission failure or invalidation.
    pub fn request_lc(
        &self,
        po_ref: &str,
        lc_id: &str,
        buyer: &str,
        seller: &str,
        amount: u64,
    ) -> Result<(), FabricError> {
        self.gateway
            .submit(
                SwtChaincode::NAME,
                "RequestLC",
                vec![
                    po_ref.as_bytes().to_vec(),
                    lc_id.as_bytes().to_vec(),
                    buyer.as_bytes().to_vec(),
                    seller.as_bytes().to_vec(),
                    amount.to_string().into_bytes(),
                ],
            )?
            .into_committed()?;
        Ok(())
    }

    /// Has the buyer's bank issue the L/C.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on submission failure or invalidation.
    pub fn issue_lc(&self, po_ref: &str) -> Result<(), FabricError> {
        self.gateway
            .submit(
                SwtChaincode::NAME,
                "IssueLC",
                vec![po_ref.as_bytes().to_vec()],
            )?
            .into_committed()?;
        Ok(())
    }

    /// Records payment against a requested payment.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on submission failure or invalidation.
    pub fn record_payment(&self, po_ref: &str) -> Result<(), FabricError> {
        self.gateway
            .submit(
                SwtChaincode::NAME,
                "RecordPayment",
                vec![po_ref.as_bytes().to_vec()],
            )?
            .into_committed()?;
        Ok(())
    }

    /// Reads the current L/C state.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] when no L/C exists.
    pub fn letter_of_credit(&self, po_ref: &str) -> Result<LetterOfCredit, FabricError> {
        let bytes = self.gateway.query(
            SwtChaincode::NAME,
            "GetLC",
            vec![po_ref.as_bytes().to_vec()],
        )?;
        LetterOfCredit::decode_from_slice(&bytes).map_err(FabricError::Wire)
    }
}

/// The SWT Seller Client (SWT-SC): the interop-adapted application.
#[derive(Debug)]
pub struct SellerClientApp {
    client: InteropClient,
    /// The source network's id (STL).
    source_network: String,
    /// The source ledger (channel).
    source_ledger: String,
}

impl SellerClientApp {
    /// Connects the SWT-SC with its gateway and local relay.
    pub fn new(gateway: Gateway, relay: Arc<RelayService>) -> Self {
        SellerClientApp {
            client: InteropClient::new(gateway, relay),
            source_network: "stl".into(),
            source_ledger: "trade-channel".into(),
        }
    }

    /// The underlying interop client (for diagnostics and tests).
    pub fn interop_client(&self) -> &InteropClient {
        &self.client
    }

    /// The verification policy used for B/L queries: one peer from each of
    /// STL's organizations, confidential (paper §4.3).
    pub fn bl_verification_policy() -> VerificationPolicy {
        VerificationPolicy::all_of_orgs(["seller-org", "carrier-org"]).with_confidentiality()
    }

    /// Fetches the bill of lading for `po_ref` from STL with proof
    /// (Fig. 3, Step 9).
    ///
    /// # Errors
    ///
    /// Returns an [`InteropError`] when the relay chain, exposure control,
    /// or proof verification fails.
    pub fn fetch_bill_of_lading(&self, po_ref: &str) -> Result<RemoteData, InteropError> {
        // interop-adaptation: remote query via the relay service API,
        // interop-adaptation: response decryption and validation happen in
        // interop-adaptation: query_remote / process_response.
        let address = NetworkAddress::new(
            self.source_network.clone(), // interop-adaptation
            self.source_ledger.clone(),  // interop-adaptation
            "TradeLensCC",               // interop-adaptation
            "GetBillOfLading",           // interop-adaptation
        )
        .with_arg(po_ref.as_bytes().to_vec()); // interop-adaptation
        self.client
            .query_remote(address, Self::bl_verification_policy()) // interop-adaptation
    }

    /// Uploads the fetched B/L with its proof (the transaction of Step 10).
    ///
    /// # Errors
    ///
    /// Returns an [`InteropError`] on submission failure or invalidation.
    pub fn upload_dispatch_docs(
        &self,
        po_ref: &str,
        remote: &RemoteData,
    ) -> Result<(), InteropError> {
        // interop-adaptation: replace the B/L argument with the received
        // interop-adaptation: response and proof, then submit.
        let outcome = self.client.submit_with_remote_data(
            SwtChaincode::NAME,               // interop-adaptation
            "UploadDispatchDocs",             // interop-adaptation
            vec![po_ref.as_bytes().to_vec()], // interop-adaptation
            remote,                           // interop-adaptation
        )?; // interop-adaptation
        outcome.into_committed()?;
        Ok(())
    }

    /// Convenience: fetch + upload in one call.
    ///
    /// # Errors
    ///
    /// Returns an [`InteropError`] when either half fails.
    pub fn fetch_and_upload(&self, po_ref: &str) -> Result<RemoteData, InteropError> {
        let remote = self.fetch_bill_of_lading(po_ref)?;
        self.upload_dispatch_docs(po_ref, &remote)?;
        Ok(remote)
    }

    /// Requests payment under the L/C (requires verified dispatch docs).
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on submission failure or invalidation.
    pub fn request_payment(&self, po_ref: &str) -> Result<(), FabricError> {
        self.client
            .gateway()
            .submit(
                SwtChaincode::NAME,
                "RequestPayment",
                vec![po_ref.as_bytes().to_vec()],
            )?
            .into_committed()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stl_app::{CarrierApp, SellerApp};
    use interop::setup::stl_swt_testbed;
    use tdt_contracts::swt::LcStatus;

    #[test]
    fn swt_sc_full_interop_path() {
        let t = stl_swt_testbed();
        // STL side: produce the B/L.
        let seller = SellerApp::new(t.stl_seller_gateway());
        let carrier = CarrierApp::new(t.stl_carrier_gateway());
        seller.create_shipment("PO-1", "goods").unwrap();
        carrier.confirm_booking("PO-1").unwrap();
        seller.transfer_possession("PO-1").unwrap();
        carrier.issue_bill_of_lading("PO-1", "BL-1").unwrap();
        // SWT side: L/C then docs then payment.
        let buyer = BuyerApp::new(t.swt_buyer_gateway());
        buyer.request_lc("PO-1", "LC-1", "b", "s", 5_000).unwrap();
        buyer.issue_lc("PO-1").unwrap();
        let swt_sc = SellerClientApp::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        let remote = swt_sc.fetch_and_upload("PO-1").unwrap();
        assert!(!remote.data.is_empty());
        swt_sc.request_payment("PO-1").unwrap();
        buyer.record_payment("PO-1").unwrap();
        let lc = buyer.letter_of_credit("PO-1").unwrap();
        assert_eq!(lc.status, LcStatus::Paid);
    }

    #[test]
    fn payment_blocked_without_docs() {
        let t = stl_swt_testbed();
        let buyer = BuyerApp::new(t.swt_buyer_gateway());
        buyer.request_lc("PO-2", "LC-2", "b", "s", 100).unwrap();
        buyer.issue_lc("PO-2").unwrap();
        let swt_sc = SellerClientApp::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        assert!(swt_sc.request_payment("PO-2").is_err());
    }

    #[test]
    fn fetch_fails_for_missing_bl() {
        let t = stl_swt_testbed();
        let swt_sc = SellerClientApp::new(t.swt_seller_gateway(), Arc::clone(&t.swt_relay));
        assert!(matches!(
            swt_sc.fetch_bill_of_lading("PO-NONE"),
            Err(InteropError::NotFound(_))
        ));
    }
}
