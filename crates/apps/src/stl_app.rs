//! The Simplified TradeLens applications: Seller and Carrier.
//!
//! Each application owns a gateway connection for its organization's
//! client identity and exposes the business operations of the shipment
//! lifecycle as typed methods.

use tdt_contracts::stl::{BillOfLading, Shipment, StlChaincode};
use tdt_fabric::error::FabricError;
use tdt_fabric::gateway::Gateway;
use tdt_wire::codec::Message;

/// The Seller's STL application.
#[derive(Debug, Clone)]
pub struct SellerApp {
    gateway: Gateway,
}

impl SellerApp {
    /// Connects the seller application through `gateway`.
    pub fn new(gateway: Gateway) -> Self {
        SellerApp { gateway }
    }

    /// Creates a shipment against a purchase order.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on submission failure or invalidation.
    pub fn create_shipment(&self, po_ref: &str, goods: &str) -> Result<(), FabricError> {
        self.gateway
            .submit(
                StlChaincode::NAME,
                "CreateShipment",
                vec![po_ref.as_bytes().to_vec(), goods.as_bytes().to_vec()],
            )?
            .into_committed()?;
        Ok(())
    }

    /// Hands the goods over to the carrier.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on submission failure or invalidation.
    pub fn transfer_possession(&self, po_ref: &str) -> Result<(), FabricError> {
        self.gateway
            .submit(
                StlChaincode::NAME,
                "TransferPossession",
                vec![po_ref.as_bytes().to_vec()],
            )?
            .into_committed()?;
        Ok(())
    }

    /// Reads the current shipment state.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] when the shipment does not exist.
    pub fn shipment(&self, po_ref: &str) -> Result<Shipment, FabricError> {
        let bytes = self.gateway.query(
            StlChaincode::NAME,
            "GetShipment",
            vec![po_ref.as_bytes().to_vec()],
        )?;
        Shipment::decode_from_slice(&bytes).map_err(FabricError::Wire)
    }
}

/// The Carrier's STL application.
#[derive(Debug, Clone)]
pub struct CarrierApp {
    gateway: Gateway,
}

impl CarrierApp {
    /// Connects the carrier application through `gateway`.
    pub fn new(gateway: Gateway) -> Self {
        CarrierApp { gateway }
    }

    /// Confirms the booking for a shipment.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on submission failure or invalidation.
    pub fn confirm_booking(&self, po_ref: &str) -> Result<(), FabricError> {
        self.gateway
            .submit(
                StlChaincode::NAME,
                "ConfirmBooking",
                vec![po_ref.as_bytes().to_vec()],
            )?
            .into_committed()?;
        Ok(())
    }

    /// Issues the bill of lading after taking possession.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on submission failure or invalidation.
    pub fn issue_bill_of_lading(&self, po_ref: &str, bl_id: &str) -> Result<(), FabricError> {
        self.gateway
            .submit(
                StlChaincode::NAME,
                "IssueBillOfLading",
                vec![po_ref.as_bytes().to_vec(), bl_id.as_bytes().to_vec()],
            )?
            .into_committed()?;
        Ok(())
    }

    /// Reads the issued bill of lading.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] when no B/L exists.
    pub fn bill_of_lading(&self, po_ref: &str) -> Result<BillOfLading, FabricError> {
        let bytes = self.gateway.query(
            StlChaincode::NAME,
            "GetBillOfLading",
            vec![po_ref.as_bytes().to_vec()],
        )?;
        BillOfLading::decode_from_slice(&bytes).map_err(FabricError::Wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop::setup::stl_swt_testbed;
    use tdt_contracts::stl::ShipmentStatus;

    #[test]
    fn seller_and_carrier_drive_lifecycle() {
        let t = stl_swt_testbed();
        let seller = SellerApp::new(t.stl_seller_gateway());
        let carrier = CarrierApp::new(t.stl_carrier_gateway());
        seller.create_shipment("PO-7", "500 bicycles").unwrap();
        assert_eq!(
            seller.shipment("PO-7").unwrap().status,
            ShipmentStatus::Created
        );
        carrier.confirm_booking("PO-7").unwrap();
        seller.transfer_possession("PO-7").unwrap();
        carrier.issue_bill_of_lading("PO-7", "BL-99").unwrap();
        let shipment = seller.shipment("PO-7").unwrap();
        assert_eq!(shipment.status, ShipmentStatus::BlIssued);
        let bl = carrier.bill_of_lading("PO-7").unwrap();
        assert_eq!(bl.bl_id, "BL-99");
        assert_eq!(bl.goods, "500 bicycles");
    }

    #[test]
    fn seller_cannot_issue_bl() {
        let t = stl_swt_testbed();
        let seller = SellerApp::new(t.stl_seller_gateway());
        seller.create_shipment("PO-8", "goods").unwrap();
        // The seller app has no method for it; simulate by raw submission.
        let err = t
            .stl_seller_gateway()
            .submit(
                StlChaincode::NAME,
                "IssueBillOfLading",
                vec![b"PO-8".to_vec(), b"BL-X".to_vec()],
            )
            .unwrap_err();
        assert!(matches!(err, FabricError::Chaincode(_)));
    }

    #[test]
    fn missing_shipment_reported() {
        let t = stl_swt_testbed();
        let seller = SellerApp::new(t.stl_seller_gateway());
        assert!(seller.shipment("PO-GHOST").is_err());
    }
}
