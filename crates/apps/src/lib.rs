#![warn(missing_docs)]

//! Full-stack applications for the paper's use case (§4.2).
//!
//! "Independent applications were developed for the Seller and Carrier
//! [on STL] ... Independent applications were developed for Seller and
//! Buyer [on SWT]." This crate provides those applications as typed
//! wrappers over the chaincode APIs:
//!
//! * [`stl_app`] — the STL Seller and Carrier applications.
//! * [`swt_app`] — the SWT Buyer application and the SWT Seller Client
//!   (SWT-SC), the component that performs the cross-network query.
//! * [`scenario`] — a driver for the complete Fig. 3 interoperation
//!   scenario (Steps 1-10), plus the Table 1 acronym listing.

pub mod scenario;
pub mod stl_app;
pub mod swt_app;
