//! Simulated network conditions: fault injection for availability tests.
//!
//! The paper's availability analysis (§5) discusses DoS on relays and peers
//! and mitigation through redundancy. [`FaultInjector`] lets tests and
//! benches take peers down, add latency, and partition components without
//! touching the protocol logic.

use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Default)]
struct Faults {
    down: HashSet<String>,
    latency: Duration,
}

/// Shared, cheaply clonable fault configuration.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    inner: Arc<RwLock<Faults>>,
}

impl FaultInjector {
    /// Creates an injector with no faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a component (peer, relay) as down.
    pub fn take_down(&self, component: impl Into<String>) {
        self.inner.write().down.insert(component.into());
    }

    /// Restores a component.
    pub fn restore(&self, component: &str) {
        self.inner.write().down.remove(component);
    }

    /// True when the component is currently down.
    pub fn is_down(&self, component: &str) -> bool {
        self.inner.read().down.contains(component)
    }

    /// Sets a per-message artificial latency.
    pub fn set_latency(&self, latency: Duration) {
        self.inner.write().latency = latency;
    }

    /// Sleeps for the configured latency (no-op when zero).
    pub fn apply_latency(&self) {
        let latency = self.inner.read().latency;
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
    }

    /// Clears every fault.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.down.clear();
        inner.latency = Duration::ZERO;
    }

    /// Number of components currently down.
    pub fn down_count(&self) -> usize {
        self.inner.read().down.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn take_down_and_restore() {
        let f = FaultInjector::new();
        assert!(!f.is_down("peer0"));
        f.take_down("peer0");
        assert!(f.is_down("peer0"));
        f.restore("peer0");
        assert!(!f.is_down("peer0"));
    }

    #[test]
    fn clones_share_state() {
        let f = FaultInjector::new();
        let g = f.clone();
        f.take_down("x");
        assert!(g.is_down("x"));
        g.clear();
        assert!(!f.is_down("x"));
    }

    #[test]
    fn latency_applied() {
        let f = FaultInjector::new();
        f.set_latency(Duration::from_millis(20));
        let start = Instant::now();
        f.apply_latency();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn zero_latency_fast() {
        let f = FaultInjector::new();
        let start = Instant::now();
        f.apply_latency();
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn clear_resets_everything() {
        let f = FaultInjector::new();
        f.take_down("a");
        f.take_down("b");
        f.set_latency(Duration::from_millis(5));
        assert_eq!(f.down_count(), 2);
        f.clear();
        assert_eq!(f.down_count(), 0);
    }
}
