//! Simulated network conditions: fault injection for availability tests.
//!
//! The paper's availability analysis (§5) discusses DoS on relays and peers
//! and mitigation through redundancy. [`FaultInjector`] lets tests and
//! benches take peers down, add latency, and partition components without
//! touching the protocol logic.
//!
//! The injector *is* the relay layer's
//! [`SharedFaults`](tdt_relay::chaos::SharedFaults): fabric-level and
//! relay-level fault injection share one vocabulary, so a chaos scenario
//! can drive peers and relays from the same handle. Beyond the methods
//! used here (`take_down` / `restore` / `is_down` / `set_latency` /
//! `apply_latency` / `clear` / `down_count`), the shared type also
//! supports directional endpoint-pair partitions (`partition` / `heal` /
//! `is_partitioned`).

pub use tdt_relay::chaos::SharedFaults as FaultInjector;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn take_down_and_restore() {
        let f = FaultInjector::new();
        assert!(!f.is_down("peer0"));
        f.take_down("peer0");
        assert!(f.is_down("peer0"));
        f.restore("peer0");
        assert!(!f.is_down("peer0"));
    }

    #[test]
    fn clones_share_state() {
        let f = FaultInjector::new();
        let g = f.clone();
        f.take_down("x");
        assert!(g.is_down("x"));
        g.clear();
        assert!(!f.is_down("x"));
    }

    #[test]
    fn latency_applied() {
        let f = FaultInjector::new();
        f.set_latency(Duration::from_millis(20));
        let start = Instant::now();
        f.apply_latency();
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn zero_latency_fast() {
        let f = FaultInjector::new();
        let start = Instant::now();
        f.apply_latency();
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn clear_resets_everything() {
        let f = FaultInjector::new();
        f.take_down("a");
        f.take_down("b");
        f.set_latency(Duration::from_millis(5));
        assert_eq!(f.down_count(), 2);
        f.clear();
        assert_eq!(f.down_count(), 0);
    }

    #[test]
    fn relay_level_partitions_available_to_fabric() {
        // The shared vocabulary gives fabric directional partitions too.
        let f = FaultInjector::new();
        f.partition("orderer", "peer0");
        assert!(f.is_partitioned("orderer", "peer0"));
        assert!(!f.is_partitioned("peer0", "orderer"));
        f.heal("orderer", "peer0");
        assert_eq!(f.partition_count(), 0);
    }
}
