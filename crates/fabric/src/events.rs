//! Block events: publish/subscribe notification of commits.
//!
//! The paper lists "publish and subscribe to events" among the operations a
//! network should expose for interoperability (§2). Applications subscribe
//! to learn when their transactions commit (and with what validation code).

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use tdt_ledger::block::TxValidationCode;

/// A committed-block notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEvent {
    /// The committed block's number.
    pub block_number: u64,
    /// Transaction ids in the block, in order.
    pub txids: Vec<String>,
    /// Validation code per transaction, parallel to `txids`.
    pub validation: Vec<TxValidationCode>,
}

impl BlockEvent {
    /// The validation code of `txid` in this block, if present.
    pub fn validation_of(&self, txid: &str) -> Option<TxValidationCode> {
        self.txids
            .iter()
            .position(|t| t == txid)
            .and_then(|i| self.validation.get(i).copied())
    }
}

/// Fan-out hub for block events.
#[derive(Debug, Default)]
pub struct EventHub {
    subscribers: Mutex<Vec<Sender<BlockEvent>>>,
}

impl EventHub {
    /// Creates a hub with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes; the receiver gets every event published after this call.
    pub fn subscribe(&self) -> Receiver<BlockEvent> {
        let (tx, rx) = unbounded();
        self.subscribers.lock().push(tx);
        rx
    }

    /// Publishes an event to all live subscribers, pruning dead ones.
    pub fn publish(&self, event: BlockEvent) {
        let mut subs = self.subscribers.lock();
        subs.retain(|s| s.send(event.clone()).is_ok());
    }

    /// Number of live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(n: u64) -> BlockEvent {
        BlockEvent {
            block_number: n,
            txids: vec!["tx-a".into(), "tx-b".into()],
            validation: vec![TxValidationCode::Valid, TxValidationCode::MvccConflict],
        }
    }

    #[test]
    fn subscribers_receive_events() {
        let hub = EventHub::new();
        let rx1 = hub.subscribe();
        let rx2 = hub.subscribe();
        hub.publish(event(1));
        assert_eq!(rx1.recv().unwrap().block_number, 1);
        assert_eq!(rx2.recv().unwrap().block_number, 1);
    }

    #[test]
    fn late_subscriber_misses_earlier_events() {
        let hub = EventHub::new();
        hub.publish(event(1));
        let rx = hub.subscribe();
        hub.publish(event(2));
        assert_eq!(rx.recv().unwrap().block_number, 2);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn dead_subscribers_pruned() {
        let hub = EventHub::new();
        let rx = hub.subscribe();
        drop(rx);
        let _live = hub.subscribe();
        hub.publish(event(1));
        assert_eq!(hub.subscriber_count(), 1);
    }

    #[test]
    fn validation_lookup() {
        let e = event(1);
        assert_eq!(e.validation_of("tx-a"), Some(TxValidationCode::Valid));
        assert_eq!(
            e.validation_of("tx-b"),
            Some(TxValidationCode::MvccConflict)
        );
        assert_eq!(e.validation_of("missing"), None);
    }
}
