//! Chaincode: smart contracts with a Fabric shim-style API.
//!
//! A [`Chaincode`] is business logic invoked by name with byte arguments.
//! During simulation it talks to the ledger exclusively through a
//! [`TxContext`], which records every read and write into a
//! [`TxRwSet`] — the artifact that later gets ordered and validated.
//! Cross-chaincode invocation ([`TxContext::invoke_chaincode`]) switches the
//! write namespace, exactly as Fabric's `InvokeChaincode` shim call does;
//! this is how application chaincode consults the ECC and CMDAC system
//! contracts.

use crate::error::{ChaincodeError, FabricError};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use tdt_crypto::cert::Certificate;
use tdt_crypto::schnorr::Signature;
use tdt_ledger::history::{HistoryEntry, HistoryIndex};
use tdt_ledger::rwset::TxRwSet;
use tdt_ledger::state::WorldState;

/// A deployable smart contract.
///
/// Implementations must be stateless: all persistent data lives in the
/// ledger via the [`TxContext`] API.
pub trait Chaincode: Send + Sync {
    /// Handles one invocation of `function` with `args`.
    ///
    /// # Errors
    ///
    /// Returns a [`ChaincodeError`] on business-rule violations; the
    /// transaction is then rejected at the proposal stage.
    fn invoke(
        &self,
        ctx: &mut TxContext<'_>,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError>;
}

/// Identifying information about the peer executing a simulation, exposed
/// to chaincode (needed for attestation metadata).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerInfo {
    /// Qualified peer name `network/org/peer`.
    pub peer_id: String,
    /// The peer's organization.
    pub org_id: String,
    /// The network the peer belongs to.
    pub network_id: String,
    /// Ledger height at simulation time.
    pub ledger_height: u64,
}

/// A signed transaction proposal from a client.
#[derive(Debug, Clone, PartialEq)]
pub struct Proposal {
    /// Unique transaction id.
    pub txid: String,
    /// Channel (ledger) the proposal targets.
    pub channel: String,
    /// Chaincode to invoke.
    pub chaincode: String,
    /// Function name.
    pub function: String,
    /// Function arguments.
    pub args: Vec<Vec<u8>>,
    /// The submitting client's certificate.
    pub creator: Certificate,
    /// Transient data: visible to chaincode, never written to the ledger.
    pub transient: BTreeMap<String, Vec<u8>>,
    /// True when this proposal arrived via a relay from a foreign network
    /// (paper §4.3: "STL Chaincode was also modified to check if an
    /// incoming query is from a relay").
    pub relay_query: bool,
    /// Client signature over [`Proposal::canonical_bytes`].
    pub signature: Option<Signature>,
}

impl Proposal {
    /// Builds an unsigned proposal.
    pub fn new(
        txid: impl Into<String>,
        channel: impl Into<String>,
        chaincode: impl Into<String>,
        function: impl Into<String>,
        args: Vec<Vec<u8>>,
        creator: Certificate,
    ) -> Self {
        Proposal {
            txid: txid.into(),
            channel: channel.into(),
            chaincode: chaincode.into(),
            function: function.into(),
            args,
            creator,
            transient: BTreeMap::new(),
            relay_query: false,
            signature: None,
        }
    }

    /// Marks the proposal as originating from a relay.
    pub fn as_relay_query(mut self) -> Self {
        self.relay_query = true;
        self
    }

    /// Adds a transient field.
    pub fn with_transient(mut self, key: impl Into<String>, value: Vec<u8>) -> Self {
        self.transient.insert(key.into(), value);
        self
    }

    /// Canonical bytes covered by the client signature.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        fn push(out: &mut Vec<u8>, b: &[u8]) {
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(b);
        }
        out.extend_from_slice(b"tdt-proposal-v1");
        push(&mut out, self.txid.as_bytes());
        push(&mut out, self.channel.as_bytes());
        push(&mut out, self.chaincode.as_bytes());
        push(&mut out, self.function.as_bytes());
        out.extend_from_slice(&(self.args.len() as u32).to_be_bytes());
        for a in &self.args {
            push(&mut out, a);
        }
        push(&mut out, self.creator.fingerprint().as_bytes());
        out.extend_from_slice(&(self.transient.len() as u32).to_be_bytes());
        for (k, v) in &self.transient {
            push(&mut out, k.as_bytes());
            push(&mut out, v);
        }
        out.push(self.relay_query as u8);
        out
    }

    /// Signs the proposal with the creator's key.
    pub fn sign(mut self, key: &tdt_crypto::schnorr::SigningKey) -> Self {
        self.signature = Some(key.sign(&self.canonical_bytes()));
        self
    }

    /// Verifies the creator signature against the creator certificate.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::BadSignature`] when unsigned or invalid.
    pub fn verify_signature(&self) -> Result<(), FabricError> {
        let sig = self
            .signature
            .as_ref()
            .ok_or_else(|| FabricError::BadSignature("proposal is unsigned".into()))?;
        let vk = self
            .creator
            .verifying_key()
            .map_err(|e| FabricError::BadSignature(e.to_string()))?;
        vk.verify(&self.canonical_bytes(), sig)
            .map_err(|e| FabricError::BadSignature(e.to_string()))
    }
}

/// The registry of chaincodes deployed on a channel.
#[derive(Clone, Default)]
pub struct ChaincodeRegistry {
    codes: HashMap<String, Arc<dyn Chaincode>>,
}

impl fmt::Debug for ChaincodeRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaincodeRegistry")
            .field("deployed", &self.names())
            .finish()
    }
}

impl ChaincodeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deploys (or upgrades) a chaincode under `name`.
    pub fn deploy(&mut self, name: impl Into<String>, code: Arc<dyn Chaincode>) {
        self.codes.insert(name.into(), code);
    }

    /// Fetches a deployed chaincode.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Chaincode>> {
        self.codes.get(name).cloned()
    }

    /// Names of all deployed chaincodes, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.codes.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

/// The execution context handed to chaincode: Fabric's "stub".
///
/// Reads come from the committed [`WorldState`] snapshot (respecting the
/// transaction's own pending writes), and all accesses are recorded in the
/// growing [`TxRwSet`].
pub struct TxContext<'a> {
    state: &'a WorldState,
    registry: &'a ChaincodeRegistry,
    proposal: &'a Proposal,
    peer: PeerInfo,
    history: Option<&'a HistoryIndex>,
    rwset: TxRwSet,
    namespace_stack: Vec<String>,
    /// Depth guard against runaway recursive cross-chaincode calls.
    depth: usize,
}

/// Maximum cross-chaincode call depth.
const MAX_CC_DEPTH: usize = 8;

impl<'a> TxContext<'a> {
    /// Creates a context for simulating `proposal` against `state`.
    pub fn new(
        state: &'a WorldState,
        registry: &'a ChaincodeRegistry,
        proposal: &'a Proposal,
        peer: PeerInfo,
    ) -> Self {
        TxContext {
            state,
            registry,
            proposal,
            peer,
            history: None,
            rwset: TxRwSet::new(),
            namespace_stack: vec![proposal.chaincode.clone()],
            depth: 0,
        }
    }

    /// Attaches the peer's history index, enabling
    /// [`TxContext::get_history`] (Fabric's `GetHistoryForKey`).
    pub fn with_history(mut self, history: &'a HistoryIndex) -> Self {
        self.history = Some(history);
        self
    }

    /// The full modification history of `key` in the current namespace,
    /// oldest first. Empty when the executing peer exposes no history.
    /// History reads are not recorded in the read set (they are not
    /// MVCC-validated), matching Fabric semantics.
    pub fn get_history(&self, key: &str) -> &[HistoryEntry] {
        match self.history {
            Some(history) => history.history(self.namespace(), key),
            None => &[],
        }
    }

    fn namespace(&self) -> &str {
        // lint:allow(panic: "stack invariant: constructed non-empty and only pushed/popped in balanced pairs by invoke_chaincode")
        self.namespace_stack.last().expect("stack never empty")
    }

    /// Reads `key` from the current chaincode's namespace.
    pub fn get_state(&mut self, key: &str) -> Option<Vec<u8>> {
        let ns = self.namespace().to_string();
        // Read-your-own-writes within the transaction.
        if let Some(w) = self.rwset.pending_write(&ns, key) {
            return w.value.clone();
        }
        let entry = self.state.get(&ns, key);
        self.rwset.record_read(&ns, key, entry.map(|e| e.version));
        entry.map(|e| e.value.clone())
    }

    /// Writes `key = value` in the current namespace.
    pub fn put_state(&mut self, key: &str, value: Vec<u8>) {
        let ns = self.namespace().to_string();
        self.rwset.record_write(&ns, key, Some(value));
    }

    /// Deletes `key` in the current namespace.
    pub fn delete_state(&mut self, key: &str) {
        let ns = self.namespace().to_string();
        self.rwset.record_write(&ns, key, None);
    }

    /// Range query over committed keys `[start, end)` in the current
    /// namespace. (Pending writes are not merged, matching Fabric.) Each
    /// returned key is recorded as read.
    pub fn get_state_range(&mut self, start: &str, end: &str) -> Vec<(String, Vec<u8>)> {
        let ns = self.namespace().to_string();
        let results: Vec<(String, Vec<u8>, tdt_ledger::rwset::Version)> = self
            .state
            .range(&ns, start, end)
            .map(|(k, v)| (k.to_string(), v.value.clone(), v.version))
            .collect();
        let mut out = Vec::with_capacity(results.len());
        for (k, v, ver) in results {
            self.rwset.record_read(&ns, &k, Some(ver));
            out.push((k, v));
        }
        out
    }

    /// Invokes another chaincode in the same channel, Fabric-shim style.
    ///
    /// # Errors
    ///
    /// * [`ChaincodeError::NotFound`] when `name` is not deployed.
    /// * [`ChaincodeError::Internal`] when the call depth limit is hit.
    /// * Whatever the callee returns.
    pub fn invoke_chaincode(
        &mut self,
        name: &str,
        function: &str,
        args: &[Vec<u8>],
    ) -> Result<Vec<u8>, ChaincodeError> {
        if self.depth >= MAX_CC_DEPTH {
            return Err(ChaincodeError::Internal(format!(
                "cross-chaincode call depth exceeds {MAX_CC_DEPTH}"
            )));
        }
        let code = self
            .registry
            .get(name)
            .ok_or_else(|| ChaincodeError::NotFound(format!("chaincode {name:?}")))?;
        self.namespace_stack.push(name.to_string());
        self.depth += 1;
        let result = code.invoke(self, function, args);
        self.depth -= 1;
        self.namespace_stack.pop();
        result
    }

    /// The certificate of the proposal's submitter.
    pub fn creator(&self) -> &Certificate {
        &self.proposal.creator
    }

    /// The transaction id.
    pub fn txid(&self) -> &str {
        &self.proposal.txid
    }

    /// Transient (non-ledger) data attached to the proposal.
    pub fn transient(&self, key: &str) -> Option<&[u8]> {
        self.proposal.transient.get(key).map(Vec::as_slice)
    }

    /// True when the proposal arrived via a relay from a foreign network.
    pub fn is_relay_query(&self) -> bool {
        self.proposal.relay_query
    }

    /// Information about the executing peer.
    pub fn peer(&self) -> &PeerInfo {
        &self.peer
    }

    /// Consumes the context and returns the accumulated read/write set.
    pub fn into_rwset(self) -> TxRwSet {
        self.rwset
    }

    /// Read-only view of the accumulated read/write set.
    pub fn rwset(&self) -> &TxRwSet {
        &self.rwset
    }
}

impl fmt::Debug for TxContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxContext")
            .field("txid", &self.proposal.txid)
            .field("namespace", &self.namespace())
            .field("reads", &self.rwset.read_count())
            .field("writes", &self.rwset.write_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msp::Msp;
    use tdt_crypto::cert::CertRole;
    use tdt_crypto::group::Group;
    use tdt_ledger::rwset::Version;

    /// Toy chaincode: a named counter with `incr`, `get`, and a `chain`
    /// function that calls another chaincode.
    struct Counter;

    impl Chaincode for Counter {
        fn invoke(
            &self,
            ctx: &mut TxContext<'_>,
            function: &str,
            args: &[Vec<u8>],
        ) -> Result<Vec<u8>, ChaincodeError> {
            match function {
                "incr" => {
                    let key = String::from_utf8(args[0].clone())
                        .map_err(|_| ChaincodeError::BadRequest("key not utf-8".into()))?;
                    let current = ctx
                        .get_state(&key)
                        .map(|v| u64::from_be_bytes(v.try_into().unwrap_or([0; 8])))
                        .unwrap_or(0);
                    ctx.put_state(&key, (current + 1).to_be_bytes().to_vec());
                    Ok((current + 1).to_be_bytes().to_vec())
                }
                "get" => {
                    let key = String::from_utf8(args[0].clone())
                        .map_err(|_| ChaincodeError::BadRequest("key not utf-8".into()))?;
                    ctx.get_state(&key).ok_or(ChaincodeError::NotFound(key))
                }
                "del" => {
                    let key = String::from_utf8(args[0].clone()).unwrap();
                    ctx.delete_state(&key);
                    Ok(Vec::new())
                }
                "chain" => ctx.invoke_chaincode("other", "incr", args),
                "recurse" => ctx.invoke_chaincode("counter", "recurse", args),
                other => Err(ChaincodeError::UnknownFunction(other.into())),
            }
        }
    }

    fn fixture() -> (WorldState, ChaincodeRegistry, Proposal, PeerInfo) {
        let mut msp = Msp::new("net", "org", Group::test_group(), b"s");
        let id = msp.enroll("client", CertRole::Client, false);
        let mut registry = ChaincodeRegistry::new();
        registry.deploy("counter", Arc::new(Counter));
        registry.deploy("other", Arc::new(Counter));
        let proposal = Proposal::new(
            "tx-1",
            "ch",
            "counter",
            "incr",
            vec![b"k".to_vec()],
            id.certificate().clone(),
        );
        let peer = PeerInfo {
            peer_id: "net/org/peer0".into(),
            org_id: "org".into(),
            network_id: "net".into(),
            ledger_height: 1,
        };
        (WorldState::new(), registry, proposal, peer)
    }

    #[test]
    fn get_put_roundtrip_in_context() {
        let (state, registry, proposal, peer) = fixture();
        let mut ctx = TxContext::new(&state, &registry, &proposal, peer);
        let result = Counter.invoke(&mut ctx, "incr", &[b"k".to_vec()]).unwrap();
        assert_eq!(result, 1u64.to_be_bytes());
        // Read-your-own-writes.
        let v = ctx.get_state("k").unwrap();
        assert_eq!(v, 1u64.to_be_bytes());
        let rwset = ctx.into_rwset();
        assert_eq!(rwset.write_count(), 1);
        // The initial read of the absent key was recorded with version None.
        assert_eq!(rwset.ns_sets[0].reads[0].version, None);
    }

    #[test]
    fn reads_recorded_with_committed_version() {
        let (mut state, registry, proposal, peer) = fixture();
        let mut pre = TxRwSet::new();
        pre.record_write("counter", "k", Some(5u64.to_be_bytes().to_vec()));
        state.apply(&pre, Version::new(3, 2));
        let mut ctx = TxContext::new(&state, &registry, &proposal, peer);
        let v = ctx.get_state("k").unwrap();
        assert_eq!(v, 5u64.to_be_bytes());
        let rwset = ctx.into_rwset();
        assert_eq!(rwset.ns_sets[0].reads[0].version, Some(Version::new(3, 2)));
    }

    #[test]
    fn delete_visible_within_tx() {
        let (mut state, registry, proposal, peer) = fixture();
        let mut pre = TxRwSet::new();
        pre.record_write("counter", "k", Some(vec![1]));
        state.apply(&pre, Version::new(1, 0));
        let mut ctx = TxContext::new(&state, &registry, &proposal, peer);
        ctx.delete_state("k");
        assert!(ctx.get_state("k").is_none());
    }

    #[test]
    fn cross_chaincode_invocation_switches_namespace() {
        let (state, registry, proposal, peer) = fixture();
        let mut ctx = TxContext::new(&state, &registry, &proposal, peer);
        Counter.invoke(&mut ctx, "chain", &[b"k".to_vec()]).unwrap();
        let rwset = ctx.into_rwset();
        // The write landed in the "other" namespace, not "counter".
        let ns_names: Vec<&str> = rwset.ns_sets.iter().map(|s| s.namespace.as_str()).collect();
        assert!(ns_names.contains(&"other"));
        assert!(rwset.pending_write("other", "k").is_some());
        assert!(rwset.pending_write("counter", "k").is_none());
    }

    #[test]
    fn unknown_chaincode_invocation_fails() {
        let (state, registry, proposal, peer) = fixture();
        let mut ctx = TxContext::new(&state, &registry, &proposal, peer);
        let err = ctx.invoke_chaincode("missing", "f", &[]).unwrap_err();
        assert!(matches!(err, ChaincodeError::NotFound(_)));
    }

    #[test]
    fn runaway_recursion_capped() {
        let (state, registry, proposal, peer) = fixture();
        let mut ctx = TxContext::new(&state, &registry, &proposal, peer);
        let err = Counter
            .invoke(&mut ctx, "recurse", &[b"k".to_vec()])
            .unwrap_err();
        assert!(matches!(err, ChaincodeError::Internal(_)));
    }

    #[test]
    fn range_query_records_reads() {
        let (mut state, registry, proposal, peer) = fixture();
        let mut pre = TxRwSet::new();
        pre.record_write("counter", "a1", Some(vec![1]));
        pre.record_write("counter", "a2", Some(vec![2]));
        pre.record_write("counter", "b1", Some(vec![3]));
        state.apply(&pre, Version::new(1, 0));
        let mut ctx = TxContext::new(&state, &registry, &proposal, peer);
        let results = ctx.get_state_range("a", "b");
        assert_eq!(results.len(), 2);
        assert_eq!(ctx.rwset().read_count(), 2);
    }

    #[test]
    fn proposal_sign_verify() {
        let mut msp = Msp::new("net", "org", Group::test_group(), b"s");
        let id = msp.enroll("client", CertRole::Client, false);
        let p = Proposal::new(
            "tx",
            "ch",
            "cc",
            "f",
            vec![b"a".to_vec()],
            id.certificate().clone(),
        )
        .sign(id.signing_key());
        assert!(p.verify_signature().is_ok());
    }

    #[test]
    fn tampered_proposal_rejected() {
        let mut msp = Msp::new("net", "org", Group::test_group(), b"s");
        let id = msp.enroll("client", CertRole::Client, false);
        let mut p = Proposal::new(
            "tx",
            "ch",
            "cc",
            "f",
            vec![b"a".to_vec()],
            id.certificate().clone(),
        )
        .sign(id.signing_key());
        p.args[0] = b"tampered".to_vec();
        assert!(matches!(
            p.verify_signature(),
            Err(FabricError::BadSignature(_))
        ));
    }

    #[test]
    fn unsigned_proposal_rejected() {
        let (_, _, proposal, _) = fixture();
        assert!(matches!(
            proposal.verify_signature(),
            Err(FabricError::BadSignature(_))
        ));
    }

    #[test]
    fn transient_and_flags_accessible() {
        let (state, registry, _, peer) = fixture();
        let mut msp = Msp::new("net", "org", Group::test_group(), b"s2");
        let id = msp.enroll("c", CertRole::Client, false);
        let proposal = Proposal::new("t", "ch", "counter", "f", vec![], id.certificate().clone())
            .with_transient("enc-key", vec![7, 8])
            .as_relay_query();
        let ctx = TxContext::new(&state, &registry, &proposal, peer);
        assert!(ctx.is_relay_query());
        assert_eq!(ctx.transient("enc-key"), Some(&[7u8, 8][..]));
        assert!(ctx.transient("missing").is_none());
        assert_eq!(ctx.txid(), "t");
        assert_eq!(ctx.creator().subject().common_name, "c");
    }

    #[test]
    fn registry_deploy_and_list() {
        let mut reg = ChaincodeRegistry::new();
        assert!(reg.get("counter").is_none());
        reg.deploy("counter", Arc::new(Counter));
        reg.deploy("alpha", Arc::new(Counter));
        assert!(reg.get("counter").is_some());
        assert_eq!(reg.names(), vec!["alpha", "counter"]);
    }
}
