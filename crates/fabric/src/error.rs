//! Error types for the Fabric-like blockchain.

use std::error::Error;
use std::fmt;

/// Errors returned by chaincode business logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaincodeError {
    /// A referenced asset/key does not exist.
    NotFound(String),
    /// The request was malformed (wrong arguments, bad state transition).
    BadRequest(String),
    /// The caller is not permitted to perform the operation.
    AccessDenied(String),
    /// A referenced chaincode function does not exist.
    UnknownFunction(String),
    /// Internal failure (serialization, crypto, ...).
    Internal(String),
}

impl fmt::Display for ChaincodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaincodeError::NotFound(m) => write!(f, "not found: {m}"),
            ChaincodeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ChaincodeError::AccessDenied(m) => write!(f, "access denied: {m}"),
            ChaincodeError::UnknownFunction(m) => write!(f, "unknown function: {m}"),
            ChaincodeError::Internal(m) => write!(f, "internal chaincode error: {m}"),
        }
    }
}

impl Error for ChaincodeError {}

/// Errors raised by the network machinery (peers, orderer, gateway).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// Chaincode execution failed.
    Chaincode(ChaincodeError),
    /// No chaincode with the given name is deployed.
    ChaincodeNotDeployed(String),
    /// The referenced organization does not exist.
    UnknownOrganization(String),
    /// The referenced peer does not exist.
    UnknownPeer(String),
    /// An identity failed MSP validation.
    IdentityInvalid(String),
    /// A proposal/transaction signature failed.
    BadSignature(String),
    /// Too few (or invalid) endorsements to satisfy the policy.
    EndorsementPolicyUnsatisfied(String),
    /// Transaction rejected at validation (MVCC or policy).
    TransactionInvalidated(String),
    /// The addressed peer is unreachable (fault injection / partition).
    PeerUnavailable(String),
    /// A ledger-layer failure.
    Ledger(tdt_ledger::LedgerError),
    /// A wire-encoding failure.
    Wire(tdt_wire::WireError),
    /// Anything else.
    Internal(String),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Chaincode(e) => write!(f, "chaincode error: {e}"),
            FabricError::ChaincodeNotDeployed(name) => {
                write!(f, "chaincode {name:?} is not deployed")
            }
            FabricError::UnknownOrganization(org) => write!(f, "unknown organization {org:?}"),
            FabricError::UnknownPeer(p) => write!(f, "unknown peer {p:?}"),
            FabricError::IdentityInvalid(m) => write!(f, "identity invalid: {m}"),
            FabricError::BadSignature(m) => write!(f, "bad signature: {m}"),
            FabricError::EndorsementPolicyUnsatisfied(m) => {
                write!(f, "endorsement policy unsatisfied: {m}")
            }
            FabricError::TransactionInvalidated(m) => write!(f, "transaction invalidated: {m}"),
            FabricError::PeerUnavailable(p) => write!(f, "peer {p:?} unavailable"),
            FabricError::Ledger(e) => write!(f, "ledger error: {e}"),
            FabricError::Wire(e) => write!(f, "wire error: {e}"),
            FabricError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl Error for FabricError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FabricError::Chaincode(e) => Some(e),
            FabricError::Ledger(e) => Some(e),
            FabricError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChaincodeError> for FabricError {
    fn from(e: ChaincodeError) -> Self {
        FabricError::Chaincode(e)
    }
}

impl From<tdt_ledger::LedgerError> for FabricError {
    fn from(e: tdt_ledger::LedgerError) -> Self {
        FabricError::Ledger(e)
    }
}

impl From<tdt_ledger::storage::StorageError> for FabricError {
    fn from(e: tdt_ledger::storage::StorageError) -> Self {
        FabricError::Ledger(tdt_ledger::LedgerError::Storage(e))
    }
}

impl From<tdt_wire::WireError> for FabricError {
    fn from(e: tdt_wire::WireError) -> Self {
        FabricError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_nonempty() {
        let errs: Vec<FabricError> = vec![
            ChaincodeError::NotFound("x".into()).into(),
            FabricError::ChaincodeNotDeployed("cc".into()),
            FabricError::UnknownOrganization("o".into()),
            FabricError::UnknownPeer("p".into()),
            FabricError::IdentityInvalid("i".into()),
            FabricError::BadSignature("s".into()),
            FabricError::EndorsementPolicyUnsatisfied("e".into()),
            FabricError::TransactionInvalidated("t".into()),
            FabricError::PeerUnavailable("p".into()),
            FabricError::Ledger(tdt_ledger::LedgerError::BlockNotFound(1)),
            FabricError::Wire(tdt_wire::WireError::UnexpectedEof),
            FabricError::Internal("x".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains() {
        let e: FabricError = ChaincodeError::BadRequest("b".into()).into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&FabricError::Internal("x".into())).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FabricError>();
        assert_send_sync::<ChaincodeError>();
    }
}
