//! Peers: simulation (endorsement) and validation/commit.
//!
//! Every peer maintains its own block store and world state replica. The
//! commit path re-validates everything — endorsement certificates against
//! the MSP registry, endorsement signatures against the reconstructed
//! proposal-response payload, the chaincode's endorsement policy, and MVCC
//! read versions — so a single faulty peer cannot corrupt honest replicas.

use crate::chaincode::{ChaincodeRegistry, PeerInfo, Proposal, TxContext};
use crate::endorse::{
    DefaultEndorsement, Endorsement, EndorsementPlugin, ProposalResponsePayload, SimulationResult,
    TransactionEnvelope,
};
use crate::error::FabricError;
use crate::msp::{Identity, MspRegistry};
use crate::policy::EndorsementPolicy;
use std::collections::HashMap;
use std::sync::Arc;
use tdt_ledger::block::{Block, TxValidationCode};
use tdt_ledger::history::HistoryIndex;
use tdt_ledger::rwset::Version;
use tdt_ledger::state::{StagedState, WorldState};
use tdt_ledger::storage::{
    InMemoryBackend, RecoveryReport, Snapshot, StorageBackend, StorageStats,
};
use tdt_ledger::store::BlockStore;
use tdt_obs::span::{self as obs_span, RecordErr};
use tdt_wire::codec::Message;

/// A peer node: endorser + committer with its own ledger replica.
#[derive(Debug)]
pub struct Peer {
    network_id: String,
    org_id: String,
    name: String,
    identity: Identity,
    registry: Arc<ChaincodeRegistry>,
    msp_registry: Arc<MspRegistry>,
    policies: Arc<HashMap<String, EndorsementPolicy>>,
    store: BlockStore,
    state: WorldState,
    history: HistoryIndex,
    backend: Box<dyn StorageBackend>,
    last_recovery: Option<RecoveryReport>,
}

impl Peer {
    /// Creates a peer with an empty, volatile ledger (the in-memory
    /// storage backend — nothing survives a restart).
    pub fn new(
        network_id: impl Into<String>,
        org_id: impl Into<String>,
        name: impl Into<String>,
        identity: Identity,
        registry: Arc<ChaincodeRegistry>,
        msp_registry: Arc<MspRegistry>,
        policies: Arc<HashMap<String, EndorsementPolicy>>,
    ) -> Self {
        Peer {
            network_id: network_id.into(),
            org_id: org_id.into(),
            name: name.into(),
            identity,
            registry,
            msp_registry,
            policies,
            store: BlockStore::new(),
            state: WorldState::new(),
            history: HistoryIndex::new(),
            backend: Box::new(InMemoryBackend::new()),
            last_recovery: None,
        }
    }

    /// Opens a peer over a durable storage backend, running recovery
    /// before serving: the backend returns its verified chain (WAL scan,
    /// tail truncation, Merkle + link verification) plus the newest
    /// state-hash-verified snapshot; the peer then rebuilds **all**
    /// derived state — `tx_index` from every block (first write wins),
    /// world state and history by replaying valid transactions above the
    /// snapshot height. Derived state is never persisted separately, so
    /// no crash point can desync lookup structures from the chain.
    ///
    /// # Errors
    ///
    /// Environmental storage failures, or a chain the backend handed
    /// back that fails re-verification (a backend bug, surfaced rather
    /// than served).
    #[allow(clippy::too_many_arguments)] // Peer::new's seven identity/config handles, plus the backend.
    pub fn with_backend(
        network_id: impl Into<String>,
        org_id: impl Into<String>,
        name: impl Into<String>,
        identity: Identity,
        registry: Arc<ChaincodeRegistry>,
        msp_registry: Arc<MspRegistry>,
        policies: Arc<HashMap<String, EndorsementPolicy>>,
        mut backend: Box<dyn StorageBackend>,
    ) -> Result<Self, FabricError> {
        let recovered = backend.load()?;
        let stats = backend.stats();
        let (snapshot_height, mut state, mut history) = match recovered.snapshot {
            Some(snapshot) => (snapshot.height, snapshot.state, snapshot.history),
            None => (0, WorldState::new(), HistoryIndex::new()),
        };
        // Replay is the last recovery phase, owned by the peer because
        // only it holds the derived-state structures. Mirror the span /
        // phase-gauge / flight breadcrumbs the storage phases leave (see
        // `tdt_ledger::storage::recovery_phase`) so a startup stuck here
        // is distinguishable from one stuck scanning the WAL.
        let _trace_guard = match tdt_obs::TraceContext::current() {
            Some(_) => tdt_obs::ContextGuard::noop(),
            None => tdt_obs::TraceContext::root().install(),
        };
        let (mut replay_span, _replay_guard) = obs_span::enter("recovery.replay");
        stats.set_recovery_phase(
            tdt_ledger::storage::recovery_phase::REPLAY,
            recovered.report.replayed_blocks,
        );
        let mut store = BlockStore::new();
        for block in recovered.blocks {
            let number = block.header.number;
            // Genesis carries raw config payloads, not envelopes.
            if number > 0 {
                for (i, tx_bytes) in block.transactions.iter().enumerate() {
                    let valid = block
                        .metadata
                        .tx_validation
                        .get(i)
                        .is_some_and(|c| c.is_valid());
                    if !valid {
                        continue;
                    }
                    let Ok(envelope) = TransactionEnvelope::decode_from_slice(tx_bytes) else {
                        // A tx the committer validated must decode; treat
                        // decode failure as an invalid tx, not a crash.
                        continue;
                    };
                    let version = Version::new(number, i as u64);
                    if number >= snapshot_height {
                        state.apply(&envelope.rwset, version);
                        history.record(&envelope.rwset, version);
                    }
                    if store.index_tx(envelope.txid, number, i).is_err() {
                        stats.note_duplicate_txid();
                    }
                }
            }
            // Re-verifies number, hash link, and Merkle data hash.
            if let Err(e) = store.append(block) {
                replay_span.fail(&e.to_string());
                stats.set_recovery_phase(tdt_ledger::storage::recovery_phase::IDLE, 0);
                return Err(e.into());
            }
        }
        stats.set_recovery_phase(
            tdt_ledger::storage::recovery_phase::IDLE,
            recovered.report.chain_height,
        );
        Ok(Peer {
            network_id: network_id.into(),
            org_id: org_id.into(),
            name: name.into(),
            identity,
            registry,
            msp_registry,
            policies,
            store,
            state,
            history,
            last_recovery: Some(recovered.report),
            backend,
        })
    }

    /// The storage stats bag (metrics bridges, soak assertions).
    pub fn storage_stats(&self) -> Arc<StorageStats> {
        self.backend.stats()
    }

    /// What the last recovery pass found, when this peer was opened via
    /// [`Peer::with_backend`].
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.last_recovery.as_ref()
    }

    /// Qualified peer id `network/org/name`.
    pub fn qualified_name(&self) -> String {
        format!("{}/{}/{}", self.network_id, self.org_id, self.name)
    }

    /// The peer's organization.
    pub fn org_id(&self) -> &str {
        &self.org_id
    }

    /// The peer's own identity (certificate + keys).
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// Current chain height.
    pub fn height(&self) -> u64 {
        self.store.height()
    }

    /// Read access to the committed world state (tests, diagnostics).
    pub fn state(&self) -> &WorldState {
        &self.state
    }

    /// Read access to the block store.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    /// Per-key history index.
    pub fn history(&self) -> &HistoryIndex {
        &self.history
    }

    /// Deterministic digest of this replica's world state (for
    /// replica-consistency checks).
    pub fn state_hash(&self) -> [u8; 32] {
        self.state.state_hash()
    }

    fn peer_info(&self) -> PeerInfo {
        PeerInfo {
            peer_id: self.qualified_name(),
            org_id: self.org_id.clone(),
            network_id: self.network_id.clone(),
            ledger_height: self.store.height(),
        }
    }

    /// Simulates a proposal against this peer's current state.
    ///
    /// Local proposals must carry a valid creator signature and a creator
    /// certificate that validates against the network's MSPs. Relay queries
    /// skip those peer-level checks: authenticating the *foreign* requester
    /// is the Exposure Control contract's job (paper §4.3).
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on authentication failure, unknown
    /// chaincode, or chaincode business errors.
    pub fn simulate(&self, proposal: &Proposal) -> Result<SimulationResult, FabricError> {
        let (mut span, _obs_guard) = obs_span::enter("contract.execute");
        self.simulate_inner(proposal).record_err(&mut span)
    }

    fn simulate_inner(&self, proposal: &Proposal) -> Result<SimulationResult, FabricError> {
        if !proposal.relay_query {
            proposal.verify_signature()?;
            self.msp_registry.validate(&proposal.creator)?;
        }
        let code = self
            .registry
            .get(&proposal.chaincode)
            .ok_or_else(|| FabricError::ChaincodeNotDeployed(proposal.chaincode.clone()))?;
        let mut ctx = TxContext::new(&self.state, &self.registry, proposal, self.peer_info())
            .with_history(&self.history);
        let result = code.invoke(&mut ctx, &proposal.function, &proposal.args)?;
        Ok(SimulationResult {
            result,
            rwset: ctx.into_rwset(),
        })
    }

    /// Endorses a simulation result for a regular transaction using the
    /// default endorsement plugin.
    ///
    /// # Errors
    ///
    /// Propagates plugin failures.
    pub fn endorse_transaction(
        &self,
        proposal: &Proposal,
        sim: &SimulationResult,
    ) -> Result<Endorsement, FabricError> {
        let payload = ProposalResponsePayload::new(&proposal.txid, &proposal.chaincode, sim);
        let out =
            DefaultEndorsement.endorse(&self.identity, &payload.canonical_bytes(), proposal)?;
        Ok(Endorsement {
            endorser_cert: self.identity.certificate().clone(),
            signature: out.signature,
        })
    }

    /// Endorses with a custom plugin, returning the raw plugin output (used
    /// by the interop query path, which encrypts metadata).
    ///
    /// # Errors
    ///
    /// Propagates plugin failures.
    pub fn endorse_with_plugin(
        &self,
        proposal: &Proposal,
        payload: &[u8],
        plugin: &dyn EndorsementPlugin,
    ) -> Result<crate::endorse::PluginOutput, FabricError> {
        let (mut span, _obs_guard) = obs_span::enter("peer.endorse");
        plugin
            .endorse(&self.identity, payload, proposal)
            .record_err(&mut span)
    }

    /// Validates one transaction envelope against a staged view of this
    /// peer's state (committed state + writes of earlier valid
    /// transactions in the block being validated).
    fn validate_tx(
        &self,
        staged: &StagedState<'_>,
        envelope: &TransactionEnvelope,
    ) -> TxValidationCode {
        // 1. Endorsement signatures + certificates.
        let payload_bytes = envelope.response_payload().canonical_bytes();
        let mut endorsing_orgs: Vec<String> = Vec::new();
        for endorsement in &envelope.endorsements {
            if self
                .msp_registry
                .validate(&endorsement.endorser_cert)
                .is_err()
            {
                return TxValidationCode::BadEndorsementSignature;
            }
            let Ok(vk) = endorsement.endorser_cert.verifying_key() else {
                return TxValidationCode::BadEndorsementSignature;
            };
            if vk.verify(&payload_bytes, &endorsement.signature).is_err() {
                return TxValidationCode::BadEndorsementSignature;
            }
            let org = endorsement.endorser_cert.subject().organization.clone();
            if !endorsing_orgs.contains(&org) {
                endorsing_orgs.push(org);
            }
        }
        // 2. Endorsement policy for the chaincode.
        let Some(policy) = self.policies.get(&envelope.chaincode) else {
            return TxValidationCode::BadPayload;
        };
        if !policy.is_satisfied(&endorsing_orgs) {
            return TxValidationCode::EndorsementPolicyFailure;
        }
        // 3. MVCC.
        if !staged.mvcc_check(&envelope.rwset) {
            return TxValidationCode::MvccConflict;
        }
        TxValidationCode::Valid
    }

    /// Validates and commits a block delivered by the ordering service.
    ///
    /// Returns the per-transaction validation codes. Invalid transactions
    /// are recorded in block metadata but their writes are not applied —
    /// Fabric's "validate" phase.
    ///
    /// Commit ordering is WAL-first: the block (with validation metadata)
    /// is durably appended to the storage backend *before* any in-memory
    /// structure mutates. Validation runs against a [`StagedState`]
    /// overlay, so a durable-append failure leaves the peer exactly as it
    /// was; once the append returns `Ok`, the commit survives any crash.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] when the block itself does not extend the
    /// chain (wrong number, broken hash link, bad data hash) or when the
    /// storage backend cannot durably append it.
    pub fn validate_and_commit(
        &mut self,
        mut block: Block,
    ) -> Result<Vec<TxValidationCode>, FabricError> {
        // Genesis/config blocks carry raw config payloads, not envelopes.
        if block.header.number == 0 {
            let codes = vec![TxValidationCode::Valid; block.transactions.len()];
            block.metadata.tx_validation = codes.clone();
            self.backend.append_block(&block)?;
            self.store.append(block)?;
            return Ok(codes);
        }
        // Verify the chain link up front so state is never mutated for a
        // block that cannot be appended.
        let expected = self.store.height();
        if block.header.number != expected {
            return Err(tdt_ledger::LedgerError::NonContiguousBlock {
                expected,
                got: block.header.number,
            }
            .into());
        }
        if let Some(tip) = self.store.tip() {
            if block.header.prev_hash != tip.hash() {
                return Err(tdt_ledger::LedgerError::BrokenHashChain {
                    block: block.header.number,
                }
                .into());
            }
        }
        if !block.data_hash_valid() {
            return Err(tdt_ledger::LedgerError::DataHashMismatch {
                block: block.header.number,
            }
            .into());
        }
        // Validate transactions *serially* against a staged overlay: a
        // transaction's MVCC check sees the writes of earlier valid
        // transactions in the same block (Fabric semantics — two
        // same-block conflicting writes cannot both commit), but the live
        // world state stays untouched until the block is durable.
        let block_number = block.header.number;
        let mut codes = Vec::with_capacity(block.transactions.len());
        let mut valid: Vec<(usize, TransactionEnvelope)> = Vec::new();
        {
            let mut staged = StagedState::new(&self.state);
            for (i, tx_bytes) in block.transactions.iter().enumerate() {
                match TransactionEnvelope::decode_from_slice(tx_bytes) {
                    Ok(envelope) => {
                        let code = self.validate_tx(&staged, &envelope);
                        if code.is_valid() {
                            let version = Version::new(block_number, i as u64);
                            staged.stage(&envelope.rwset, version);
                            valid.push((i, envelope));
                        }
                        codes.push(code);
                    }
                    Err(_) => codes.push(TxValidationCode::BadPayload),
                }
            }
        }
        block.metadata.tx_validation = codes.clone();
        // Durability point: after this returns Ok the block is on disk
        // (or in the volatile backend, by choice) and must survive any
        // crash. Nothing has mutated yet, so a failure here is clean.
        self.backend.append_block(&block)?;
        for (i, envelope) in valid {
            let version = Version::new(block_number, i as u64);
            self.state.apply(&envelope.rwset, version);
            self.history.record(&envelope.rwset, version);
            if self.store.index_tx(envelope.txid, block_number, i).is_err() {
                self.backend.stats().note_duplicate_txid();
            }
        }
        self.store.append(block)?;
        if self.backend.snapshot_due(block_number + 1) {
            let snapshot = Snapshot::capture(block_number + 1, &self.state, &self.history);
            // Snapshot failure is non-fatal (counted in stats): the WAL
            // already holds the commit; only recovery time is affected.
            let _ = self.backend.write_snapshot(&snapshot);
        }
        Ok(codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaincode::Chaincode;
    use crate::error::ChaincodeError;
    use crate::msp::Msp;
    use tdt_crypto::cert::CertRole;
    use tdt_crypto::group::Group;

    struct KvStore;

    impl Chaincode for KvStore {
        fn invoke(
            &self,
            ctx: &mut TxContext<'_>,
            function: &str,
            args: &[Vec<u8>],
        ) -> Result<Vec<u8>, ChaincodeError> {
            match function {
                "put" => {
                    let key = String::from_utf8_lossy(&args[0]).into_owned();
                    ctx.put_state(&key, args[1].clone());
                    Ok(Vec::new())
                }
                "get" => {
                    let key = String::from_utf8_lossy(&args[0]).into_owned();
                    ctx.get_state(&key).ok_or(ChaincodeError::NotFound(key))
                }
                f => Err(ChaincodeError::UnknownFunction(f.into())),
            }
        }
    }

    struct Fixture {
        peer: Peer,
        client: Identity,
    }

    struct Parts {
        peer_id: Identity,
        client: Identity,
        registry: Arc<ChaincodeRegistry>,
        msp_registry: Arc<MspRegistry>,
        policies: Arc<HashMap<String, EndorsementPolicy>>,
    }

    fn parts() -> Parts {
        let mut msp = Msp::new("net", "org1", Group::test_group(), b"s");
        let peer_id = msp.enroll("peer0", CertRole::Peer, false);
        let client = msp.enroll("alice", CertRole::Client, false);
        let mut registry = ChaincodeRegistry::new();
        registry.deploy("kv", Arc::new(KvStore));
        let mut msp_registry = MspRegistry::new();
        msp_registry.register("org1", msp.root_certificate().clone());
        let mut policies = HashMap::new();
        policies.insert("kv".to_string(), EndorsementPolicy::any_of(["org1"]));
        Parts {
            peer_id,
            client,
            registry: Arc::new(registry),
            msp_registry: Arc::new(msp_registry),
            policies: Arc::new(policies),
        }
    }

    fn fixture() -> Fixture {
        let p = parts();
        let mut peer = Peer::new(
            "net",
            "org1",
            "peer0",
            p.peer_id,
            p.registry,
            p.msp_registry,
            p.policies,
        );
        peer.validate_and_commit(Block::genesis(vec![b"config".to_vec()]))
            .unwrap();
        Fixture {
            peer,
            client: p.client,
        }
    }

    fn reopen(backend: Box<dyn tdt_ledger::storage::StorageBackend>) -> Fixture {
        let p = parts();
        let peer = Peer::with_backend(
            "net",
            "org1",
            "peer0",
            p.peer_id,
            p.registry,
            p.msp_registry,
            p.policies,
            backend,
        )
        .unwrap();
        Fixture {
            peer,
            client: p.client,
        }
    }

    fn proposal(f: &Fixture, txid: &str, function: &str, args: Vec<Vec<u8>>) -> Proposal {
        Proposal::new(
            txid,
            "ch",
            "kv",
            function,
            args,
            f.client.certificate().clone(),
        )
        .sign(f.client.signing_key())
    }

    fn envelope(f: &Fixture, proposal: &Proposal, sim: &SimulationResult) -> TransactionEnvelope {
        let endorsement = f.peer.endorse_transaction(proposal, sim).unwrap();
        TransactionEnvelope {
            txid: proposal.txid.clone(),
            channel: "ch".into(),
            chaincode: "kv".into(),
            result: sim.result.clone(),
            rwset: sim.rwset.clone(),
            endorsements: vec![endorsement],
            creator_cert: proposal.creator.clone(),
        }
    }

    fn commit(f: &mut Fixture, env: &TransactionEnvelope) -> Vec<TxValidationCode> {
        let tip = f.peer.store().tip().unwrap().clone();
        let block = Block::next(&tip, vec![env.encode_to_vec()]);
        f.peer.validate_and_commit(block).unwrap()
    }

    #[test]
    fn end_to_end_put_get() {
        let mut f = fixture();
        let p = proposal(&f, "tx1", "put", vec![b"k".to_vec(), b"v".to_vec()]);
        let sim = f.peer.simulate(&p).unwrap();
        let env = envelope(&f, &p, &sim);
        let codes = commit(&mut f, &env);
        assert_eq!(codes, vec![TxValidationCode::Valid]);
        // Query sees the committed value.
        let q = proposal(&f, "tx2", "get", vec![b"k".to_vec()]);
        let sim = f.peer.simulate(&q).unwrap();
        assert_eq!(sim.result, b"v");
        assert_eq!(f.peer.height(), 2);
    }

    #[test]
    fn unsigned_proposal_rejected() {
        let f = fixture();
        let mut p = proposal(&f, "tx", "put", vec![b"k".to_vec(), b"v".to_vec()]);
        p.signature = None;
        assert!(matches!(
            f.peer.simulate(&p),
            Err(FabricError::BadSignature(_))
        ));
    }

    #[test]
    fn foreign_creator_rejected_locally() {
        let f = fixture();
        let mut other_msp = Msp::new("other-net", "org-x", Group::test_group(), b"x");
        let foreign = other_msp.enroll("mallory", CertRole::Client, false);
        let p = Proposal::new(
            "tx",
            "ch",
            "kv",
            "get",
            vec![b"k".to_vec()],
            foreign.certificate().clone(),
        )
        .sign(foreign.signing_key());
        assert!(matches!(
            f.peer.simulate(&p),
            Err(FabricError::IdentityInvalid(_))
        ));
    }

    #[test]
    fn relay_query_bypasses_local_msp() {
        // Relay queries carry foreign certs; the peer lets the chaincode
        // (ECC) decide, so simulation succeeds here.
        let mut f = fixture();
        let p0 = proposal(&f, "tx0", "put", vec![b"k".to_vec(), b"v".to_vec()]);
        let sim = f.peer.simulate(&p0).unwrap();
        let env = envelope(&f, &p0, &sim);
        commit(&mut f, &env);
        let mut other_msp = Msp::new("other-net", "org-x", Group::test_group(), b"x");
        let foreign = other_msp.enroll("swt-sc", CertRole::Client, false);
        let p = Proposal::new(
            "txr",
            "ch",
            "kv",
            "get",
            vec![b"k".to_vec()],
            foreign.certificate().clone(),
        )
        .as_relay_query();
        let sim = f.peer.simulate(&p).unwrap();
        assert_eq!(sim.result, b"v");
    }

    #[test]
    fn unknown_chaincode() {
        let f = fixture();
        let mut p = proposal(&f, "tx", "put", vec![b"k".to_vec(), b"v".to_vec()]);
        p.chaincode = "missing".into();
        let p = Proposal {
            signature: None,
            ..p
        }
        .sign(f.client.signing_key());
        assert!(matches!(
            f.peer.simulate(&p),
            Err(FabricError::ChaincodeNotDeployed(_))
        ));
    }

    #[test]
    fn mvcc_conflict_invalidates_second_tx() {
        let mut f = fixture();
        // Seed the key.
        let p0 = proposal(&f, "tx0", "put", vec![b"k".to_vec(), b"v0".to_vec()]);
        let sim0 = f.peer.simulate(&p0).unwrap();
        let env0 = envelope(&f, &p0, &sim0);
        commit(&mut f, &env0);
        // Two competing updates simulated against the same snapshot. The kv
        // chaincode's put doesn't read, so use get+put via two proposals
        // simulated before either commits.
        let pa = proposal(&f, "txa", "get", vec![b"k".to_vec()]);
        let sim_a_read = f.peer.simulate(&pa).unwrap();
        let pa2 = proposal(&f, "txa2", "put", vec![b"k".to_vec(), b"va".to_vec()]);
        let mut sim_a = f.peer.simulate(&pa2).unwrap();
        // Merge the read into tx A's rwset to make it a read-modify-write.
        sim_a.rwset.ns_sets[0]
            .reads
            .extend(sim_a_read.rwset.ns_sets[0].reads.iter().cloned());
        let pb = proposal(&f, "txb", "put", vec![b"k".to_vec(), b"vb".to_vec()]);
        let sim_b = f.peer.simulate(&pb).unwrap();
        // Commit B first.
        let env_b = envelope(&f, &pb, &sim_b);
        assert_eq!(commit(&mut f, &env_b), vec![TxValidationCode::Valid]);
        // A's read of k is now stale.
        let env_a = envelope(&f, &pa2, &sim_a);
        assert_eq!(commit(&mut f, &env_a), vec![TxValidationCode::MvccConflict]);
        // B's write survived.
        let q = proposal(&f, "txq", "get", vec![b"k".to_vec()]);
        assert_eq!(f.peer.simulate(&q).unwrap().result, b"vb");
    }

    #[test]
    fn endorsement_policy_failure() {
        let mut f = fixture();
        let p = proposal(&f, "tx", "put", vec![b"k".to_vec(), b"v".to_vec()]);
        let sim = f.peer.simulate(&p).unwrap();
        let mut env = envelope(&f, &p, &sim);
        env.endorsements.clear();
        assert_eq!(
            commit(&mut f, &env),
            vec![TxValidationCode::EndorsementPolicyFailure]
        );
    }

    #[test]
    fn forged_endorsement_signature_rejected() {
        let mut f = fixture();
        let p = proposal(&f, "tx", "put", vec![b"k".to_vec(), b"v".to_vec()]);
        let sim = f.peer.simulate(&p).unwrap();
        let mut env = envelope(&f, &p, &sim);
        // Tamper with the result after endorsement.
        env.result = b"forged".to_vec();
        assert_eq!(
            commit(&mut f, &env),
            vec![TxValidationCode::BadEndorsementSignature]
        );
    }

    #[test]
    fn garbage_tx_payload_flagged() {
        let mut f = fixture();
        let tip = f.peer.store().tip().unwrap().clone();
        let block = Block::next(&tip, vec![b"not an envelope".to_vec()]);
        let codes = f.peer.validate_and_commit(block).unwrap();
        assert_eq!(codes, vec![TxValidationCode::BadPayload]);
    }

    #[test]
    fn invalid_tx_writes_not_applied() {
        let mut f = fixture();
        let p = proposal(&f, "tx", "put", vec![b"k".to_vec(), b"v".to_vec()]);
        let sim = f.peer.simulate(&p).unwrap();
        let mut env = envelope(&f, &p, &sim);
        env.endorsements.clear();
        commit(&mut f, &env);
        let q = proposal(&f, "txq", "get", vec![b"k".to_vec()]);
        assert!(f.peer.simulate(&q).is_err()); // key never committed
    }

    #[test]
    fn history_recorded_on_commit() {
        let mut f = fixture();
        for (i, v) in [b"v1".as_slice(), b"v2"].iter().enumerate() {
            let p = proposal(
                &f,
                &format!("tx{i}"),
                "put",
                vec![b"k".to_vec(), v.to_vec()],
            );
            let sim = f.peer.simulate(&p).unwrap();
            let env = envelope(&f, &p, &sim);
            commit(&mut f, &env);
        }
        let history = f.peer.history().history("kv", "k");
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].value, Some(b"v1".to_vec()));
        assert_eq!(history[1].value, Some(b"v2".to_vec()));
    }

    #[test]
    fn tx_index_after_commit() {
        let mut f = fixture();
        let p = proposal(&f, "tx-indexed", "put", vec![b"k".to_vec(), b"v".to_vec()]);
        let sim = f.peer.simulate(&p).unwrap();
        let env = envelope(&f, &p, &sim);
        commit(&mut f, &env);
        assert!(f.peer.store().find_tx("tx-indexed").is_ok());
    }

    #[test]
    fn durable_commit_survives_reopen() {
        use tdt_ledger::storage::file::{FileBackend, FileConfig};
        use tdt_ledger::storage::vfs::MemVfs;

        let disk = Arc::new(MemVfs::new());
        let config = FileConfig {
            snapshot_interval: 3,
            ..FileConfig::default()
        };
        let mut backend = Box::new(FileBackend::new(
            Arc::clone(&disk) as Arc<dyn tdt_ledger::storage::vfs::Vfs>,
            config.clone(),
        ));
        backend.load().unwrap();
        let mut f = reopen(backend);
        f.peer
            .validate_and_commit(Block::genesis(vec![b"config".to_vec()]))
            .unwrap();
        for i in 0..5 {
            let p = proposal(
                &f,
                &format!("tx{i}"),
                "put",
                vec![format!("k{i}").into_bytes(), format!("v{i}").into_bytes()],
            );
            let sim = f.peer.simulate(&p).unwrap();
            let env = envelope(&f, &p, &sim);
            commit(&mut f, &env);
        }
        let height = f.peer.height();
        let state_hash = f.peer.state_hash();
        assert!(f.peer.storage_stats().snapshots_written() > 0);
        drop(f);

        // "Restart": fresh backend over the same disk image.
        let backend = Box::new(FileBackend::new(
            Arc::clone(&disk) as Arc<dyn tdt_ledger::storage::vfs::Vfs>,
            config,
        ));
        let f = reopen(backend);
        assert_eq!(f.peer.height(), height);
        assert_eq!(f.peer.state_hash(), state_hash);
        assert!(f.peer.store().find_tx("tx4").is_ok());
        assert_eq!(f.peer.history().history("kv", "k0").len(), 1);
        let report = f.peer.recovery_report().unwrap();
        assert_eq!(report.chain_height, height);
        assert!(report.snapshot_height.is_some());
        // Query path works against recovered state.
        let q = proposal(&f, "txq", "get", vec![b"k2".to_vec()]);
        assert_eq!(f.peer.simulate(&q).unwrap().result, b"v2");
    }

    #[test]
    fn failed_durable_append_leaves_state_untouched() {
        use tdt_ledger::storage::fault::{FaultConfig, FaultVfs};
        use tdt_ledger::storage::file::{FileBackend, FileConfig};
        use tdt_ledger::storage::vfs::MemVfs;

        // A config that crashes on (roughly) every write: first commit
        // after load dies at the WAL append.
        let config = FaultConfig {
            crash_per_mille: 1000,
            ..FaultConfig::quiet()
        };
        let disk = Arc::new(FaultVfs::new(Arc::new(MemVfs::new()), 7, config));
        let mut backend = Box::new(FileBackend::new(
            Arc::clone(&disk) as Arc<dyn tdt_ledger::storage::vfs::Vfs>,
            FileConfig::default(),
        ));
        backend.load().unwrap();
        let mut f = reopen(backend);
        let err = f
            .peer
            .validate_and_commit(Block::genesis(vec![b"config".to_vec()]))
            .unwrap_err();
        assert!(matches!(err, FabricError::Ledger(_)));
        // Nothing mutated: no block, no state, and the backend is poisoned
        // until the next recovery pass.
        assert_eq!(f.peer.height(), 0);
        assert_eq!(f.peer.state_hash(), WorldState::new().state_hash());
    }
}
