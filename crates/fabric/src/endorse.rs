//! Endorsement: proposal responses, endorsement plugins, and the signed
//! transaction envelope that flows to the ordering service.
//!
//! Fabric supports *pluggable transaction endorsement* (paper ref \[8\]); the
//! [`EndorsementPlugin`] trait reproduces that extension point. The default
//! plugin signs the proposal-response payload. The interop layer installs a
//! custom plugin that signs query metadata and then encrypts it with the
//! remote client's public key (paper §4.3).

use crate::chaincode::Proposal;
use crate::error::FabricError;
use crate::msp::Identity;
use tdt_crypto::cert::Certificate;
use tdt_crypto::schnorr::Signature;
use tdt_crypto::sha256::sha256;
use tdt_ledger::rwset::{KvRead, KvWrite, NsRwSet, TxRwSet, Version};
use tdt_wire::codec::{Message, Reader, Writer};
use tdt_wire::messages::{decode_certificate, encode_certificate};
use tdt_wire::WireError;

/// The output of simulating a proposal on one peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationResult {
    /// The chaincode's return value.
    pub result: Vec<u8>,
    /// The recorded read/write set.
    pub rwset: TxRwSet,
}

/// What endorsers sign for regular transactions: a digest binding the
/// transaction id, chaincode, read/write set, and result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProposalResponsePayload {
    /// Transaction id being endorsed.
    pub txid: String,
    /// Chaincode that produced the response.
    pub chaincode: String,
    /// SHA-256 of the rwset's canonical bytes.
    pub rwset_hash: [u8; 32],
    /// SHA-256 of the result bytes.
    pub result_hash: [u8; 32],
}

impl ProposalResponsePayload {
    /// Builds the payload for a simulation result.
    pub fn new(txid: &str, chaincode: &str, sim: &SimulationResult) -> Self {
        ProposalResponsePayload {
            txid: txid.to_string(),
            chaincode: chaincode.to_string(),
            rwset_hash: sha256(&sim.rwset.canonical_bytes()),
            result_hash: sha256(&sim.result),
        }
    }

    /// Canonical bytes covered by endorsement signatures.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.txid.len() + self.chaincode.len());
        out.extend_from_slice(b"tdt-prp-v1");
        out.extend_from_slice(&(self.txid.len() as u32).to_be_bytes());
        out.extend_from_slice(self.txid.as_bytes());
        out.extend_from_slice(&(self.chaincode.len() as u32).to_be_bytes());
        out.extend_from_slice(self.chaincode.as_bytes());
        out.extend_from_slice(&self.rwset_hash);
        out.extend_from_slice(&self.result_hash);
        out
    }
}

/// One peer's endorsement of a transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct Endorsement {
    /// The endorsing peer's certificate.
    pub endorser_cert: Certificate,
    /// Signature over the proposal-response payload's canonical bytes.
    pub signature: Signature,
}

/// Output of an [`EndorsementPlugin`].
#[derive(Debug, Clone, PartialEq)]
pub struct PluginOutput {
    /// The payload to return to the caller — the input payload by default,
    /// or a transformed (e.g. encrypted) version of it.
    pub payload: Vec<u8>,
    /// Signature over the *plaintext* input payload.
    pub signature: Signature,
    /// True when `payload` has been encrypted by the plugin.
    pub payload_encrypted: bool,
}

/// Pluggable endorsement logic (Fabric's custom endorsement plugins).
pub trait EndorsementPlugin: Send + Sync {
    /// Produces an endorsement over `payload` on behalf of `signer`.
    ///
    /// `proposal` gives plugins access to transient fields (the interop
    /// plugin reads the requesting client's public key from there).
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] when the plugin cannot endorse (e.g. a
    /// required transient field is missing).
    fn endorse(
        &self,
        signer: &Identity,
        payload: &[u8],
        proposal: &Proposal,
    ) -> Result<PluginOutput, FabricError>;
}

/// The default endorsement plugin: sign the payload, return it unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultEndorsement;

impl EndorsementPlugin for DefaultEndorsement {
    fn endorse(
        &self,
        signer: &Identity,
        payload: &[u8],
        _proposal: &Proposal,
    ) -> Result<PluginOutput, FabricError> {
        Ok(PluginOutput {
            payload: payload.to_vec(),
            signature: signer.sign(payload),
            payload_encrypted: false,
        })
    }
}

/// A fully endorsed transaction, ready for ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct TransactionEnvelope {
    /// Transaction id.
    pub txid: String,
    /// Channel name.
    pub channel: String,
    /// Chaincode name.
    pub chaincode: String,
    /// The chaincode result agreed on by the endorsers.
    pub result: Vec<u8>,
    /// The read/write set to validate and commit.
    pub rwset: TxRwSet,
    /// Collected endorsements.
    pub endorsements: Vec<Endorsement>,
    /// The submitting client's certificate.
    pub creator_cert: Certificate,
}

impl TransactionEnvelope {
    /// Reconstructs the payload endorsers must have signed.
    pub fn response_payload(&self) -> ProposalResponsePayload {
        ProposalResponsePayload {
            txid: self.txid.clone(),
            chaincode: self.chaincode.clone(),
            rwset_hash: sha256(&self.rwset.canonical_bytes()),
            result_hash: sha256(&self.result),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------------

struct KvReadMsg(KvRead);

impl Message for KvReadMsg {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.0.key);
        if let Some(v) = self.0.version {
            w.bool(2, true);
            w.u64(3, v.block + 1);
            w.u64(4, v.tx + 1);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut key = String::new();
        let mut has = false;
        let mut block = 0u64;
        let mut tx = 0u64;
        while let Some((field, value)) = r.next_field()? {
            match field {
                1 => key = value.as_string(1, "key")?,
                2 => has = value.as_bool(2)?,
                3 => block = value.as_u64(3)?,
                4 => tx = value.as_u64(4)?,
                _ => {}
            }
        }
        let version = if has {
            if block == 0 || tx == 0 {
                return Err(WireError::Invalid("read version fields missing".into()));
            }
            Some(Version::new(block - 1, tx - 1))
        } else {
            None
        };
        Ok(KvReadMsg(KvRead { key, version }))
    }
}

struct KvWriteMsg(KvWrite);

impl Message for KvWriteMsg {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.0.key);
        if let Some(v) = &self.0.value {
            w.bool(2, true);
            w.bytes(3, v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut key = String::new();
        let mut present = false;
        let mut value = Vec::new();
        while let Some((field, v)) = r.next_field()? {
            match field {
                1 => key = v.as_string(1, "key")?,
                2 => present = v.as_bool(2)?,
                3 => value = v.as_bytes(3)?.to_vec(),
                _ => {}
            }
        }
        Ok(KvWriteMsg(KvWrite {
            key,
            value: present.then_some(value),
        }))
    }
}

struct NsRwSetMsg(NsRwSet);

impl Message for NsRwSetMsg {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.0.namespace);
        for read in &self.0.reads {
            w.message_always(2, &KvReadMsg(read.clone()));
        }
        for write in &self.0.writes {
            w.message_always(3, &KvWriteMsg(write.clone()));
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut out = NsRwSet::new("");
        while let Some((field, v)) = r.next_field()? {
            match field {
                1 => out.namespace = v.as_string(1, "namespace")?,
                2 => out.reads.push(v.as_message::<KvReadMsg>(2)?.0),
                3 => out.writes.push(v.as_message::<KvWriteMsg>(3)?.0),
                _ => {}
            }
        }
        Ok(NsRwSetMsg(out))
    }
}

/// Encodes a [`TxRwSet`] to wire bytes.
pub fn encode_rwset(rwset: &TxRwSet) -> Vec<u8> {
    let mut w = Writer::new();
    for ns in &rwset.ns_sets {
        w.message_always(1, &NsRwSetMsg(ns.clone()));
    }
    w.into_bytes()
}

/// Decodes a [`TxRwSet`] from wire bytes.
///
/// # Errors
///
/// Returns a [`WireError`] on malformed input.
pub fn decode_rwset(bytes: &[u8]) -> Result<TxRwSet, WireError> {
    let mut r = Reader::new(bytes);
    let mut out = TxRwSet::new();
    while let Some((field, v)) = r.next_field()? {
        if field == 1 {
            out.ns_sets.push(v.as_message::<NsRwSetMsg>(1)?.0);
        }
    }
    Ok(out)
}

impl Message for TransactionEnvelope {
    fn encode(&self, w: &mut Writer) {
        w.string(1, &self.txid);
        w.string(2, &self.channel);
        w.string(3, &self.chaincode);
        w.bytes(4, &self.result);
        w.bytes(5, &encode_rwset(&self.rwset));
        for e in &self.endorsements {
            let mut ew = Writer::new();
            ew.bytes(1, &encode_certificate(&e.endorser_cert));
            ew.bytes(2, &e.signature.to_bytes());
            let bytes = ew.into_bytes();
            w.bytes(6, &bytes);
        }
        w.bytes(7, &encode_certificate(&self.creator_cert));
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut txid = String::new();
        let mut channel = String::new();
        let mut chaincode = String::new();
        let mut result = Vec::new();
        let mut rwset = TxRwSet::new();
        let mut endorsements = Vec::new();
        let mut creator: Option<Certificate> = None;
        while let Some((field, v)) = r.next_field()? {
            match field {
                1 => txid = v.as_string(1, "txid")?,
                2 => channel = v.as_string(2, "channel")?,
                3 => chaincode = v.as_string(3, "chaincode")?,
                4 => result = v.as_bytes(4)?.to_vec(),
                5 => rwset = decode_rwset(v.as_bytes(5)?)?,
                6 => {
                    let bytes = v.as_bytes(6)?;
                    let mut er = Reader::new(bytes);
                    let mut cert_bytes = Vec::new();
                    let mut sig_bytes = Vec::new();
                    while let Some((f2, v2)) = er.next_field()? {
                        match f2 {
                            1 => cert_bytes = v2.as_bytes(1)?.to_vec(),
                            2 => sig_bytes = v2.as_bytes(2)?.to_vec(),
                            _ => {}
                        }
                    }
                    let endorser_cert = decode_certificate(&cert_bytes)?;
                    let signature = Signature::from_bytes(&sig_bytes)
                        .map_err(|e| WireError::Invalid(e.to_string()))?;
                    endorsements.push(Endorsement {
                        endorser_cert,
                        signature,
                    });
                }
                7 => creator = Some(decode_certificate(v.as_bytes(7)?)?),
                _ => {}
            }
        }
        Ok(TransactionEnvelope {
            txid,
            channel,
            chaincode,
            result,
            rwset,
            endorsements,
            creator_cert: creator.ok_or(WireError::MissingField("creator_cert"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msp::Msp;
    use tdt_crypto::cert::CertRole;
    use tdt_crypto::group::Group;

    fn identity() -> Identity {
        let mut msp = Msp::new("net", "org", Group::test_group(), b"s");
        msp.enroll("peer0", CertRole::Peer, false)
    }

    fn sample_rwset() -> TxRwSet {
        let mut rw = TxRwSet::new();
        rw.record_read("cc", "k1", Some(Version::new(2, 3)));
        rw.record_read("cc", "k2", None);
        rw.record_write("cc", "k1", Some(b"v".to_vec()));
        rw.record_write("cc", "k3", None);
        rw.record_write("cc2", "x", Some(vec![]));
        rw
    }

    #[test]
    fn rwset_wire_roundtrip() {
        let rw = sample_rwset();
        let decoded = decode_rwset(&encode_rwset(&rw)).unwrap();
        assert_eq!(decoded, rw);
    }

    #[test]
    fn rwset_roundtrip_preserves_version_zero() {
        // Version 0:0 must survive proto3 zero-elision (hence the +1 bias).
        let mut rw = TxRwSet::new();
        rw.record_read("cc", "k", Some(Version::new(0, 0)));
        let decoded = decode_rwset(&encode_rwset(&rw)).unwrap();
        assert_eq!(
            decoded.ns_sets[0].reads[0].version,
            Some(Version::new(0, 0))
        );
    }

    #[test]
    fn rwset_roundtrip_distinguishes_empty_write_from_delete() {
        let mut rw = TxRwSet::new();
        rw.record_write("cc", "del", None);
        rw.record_write("cc", "empty", Some(vec![]));
        let decoded = decode_rwset(&encode_rwset(&rw)).unwrap();
        assert_eq!(decoded.pending_write("cc", "del").unwrap().value, None);
        assert_eq!(
            decoded.pending_write("cc", "empty").unwrap().value,
            Some(vec![])
        );
    }

    #[test]
    fn default_plugin_signs_payload() {
        let id = identity();
        let proposal = Proposal::new("t", "ch", "cc", "f", vec![], id.certificate().clone());
        let out = DefaultEndorsement
            .endorse(&id, b"payload", &proposal)
            .unwrap();
        assert_eq!(out.payload, b"payload");
        assert!(!out.payload_encrypted);
        let vk = id.certificate().verifying_key().unwrap();
        assert!(vk.verify(b"payload", &out.signature).is_ok());
    }

    #[test]
    fn response_payload_binds_everything() {
        let sim = SimulationResult {
            result: b"42".to_vec(),
            rwset: sample_rwset(),
        };
        let p1 = ProposalResponsePayload::new("tx", "cc", &sim);
        let sim2 = SimulationResult {
            result: b"43".to_vec(),
            rwset: sample_rwset(),
        };
        let p2 = ProposalResponsePayload::new("tx", "cc", &sim2);
        assert_ne!(p1.canonical_bytes(), p2.canonical_bytes());
        let p3 = ProposalResponsePayload::new("tx2", "cc", &sim);
        assert_ne!(p1.canonical_bytes(), p3.canonical_bytes());
    }

    #[test]
    fn envelope_wire_roundtrip() {
        let id = identity();
        let sim = SimulationResult {
            result: b"result".to_vec(),
            rwset: sample_rwset(),
        };
        let payload = ProposalResponsePayload::new("tx-9", "cc", &sim);
        let sig = id.sign(&payload.canonical_bytes());
        let env = TransactionEnvelope {
            txid: "tx-9".into(),
            channel: "ch".into(),
            chaincode: "cc".into(),
            result: sim.result.clone(),
            rwset: sim.rwset.clone(),
            endorsements: vec![Endorsement {
                endorser_cert: id.certificate().clone(),
                signature: sig,
            }],
            creator_cert: id.certificate().clone(),
        };
        let decoded = TransactionEnvelope::decode_from_slice(&env.encode_to_vec()).unwrap();
        assert_eq!(decoded, env);
        // Endorsement still verifies after the roundtrip.
        let vk = decoded.endorsements[0]
            .endorser_cert
            .verifying_key()
            .unwrap();
        assert!(vk
            .verify(
                &decoded.response_payload().canonical_bytes(),
                &decoded.endorsements[0].signature
            )
            .is_ok());
    }

    #[test]
    fn envelope_missing_creator_rejected() {
        let mut w = Writer::new();
        w.string(1, "tx");
        let err = TransactionEnvelope::decode_from_slice(&w.into_bytes()).unwrap_err();
        assert_eq!(err, WireError::MissingField("creator_cert"));
    }

    #[test]
    fn response_payload_matches_envelope_reconstruction() {
        let id = identity();
        let sim = SimulationResult {
            result: b"r".to_vec(),
            rwset: sample_rwset(),
        };
        let payload = ProposalResponsePayload::new("t", "cc", &sim);
        let env = TransactionEnvelope {
            txid: "t".into(),
            channel: "ch".into(),
            chaincode: "cc".into(),
            result: sim.result,
            rwset: sim.rwset,
            endorsements: vec![],
            creator_cert: id.certificate().clone(),
        };
        assert_eq!(env.response_payload(), payload);
    }
}
