#![warn(missing_docs)]

//! A Hyperledger-Fabric-like permissioned blockchain, built from scratch.
//!
//! The paper's proof-of-concept runs on Hyperledger Fabric; this crate
//! reproduces the Fabric semantics the interoperability protocol depends on
//! (paper §4.1):
//!
//! * **execute-order-validate** — endorsing peers simulate chaincode against
//!   their own state snapshot producing read/write sets ([`endorse`]), an
//!   ordering service cuts blocks ([`orderer`]), and every peer validates
//!   endorsement policies and MVCC before committing ([`peer`]).
//! * **organizations and MSPs** — each org runs a Membership Service
//!   Provider rooted in its own CA ([`msp`]).
//! * **endorsement policies** — boolean org-set expressions checked at
//!   validation time ([`policy`]).
//! * **chaincode** — smart contracts as Rust trait objects with a Fabric
//!   shim-style state API, including cross-chaincode invocation
//!   ([`chaincode`]).
//! * **pluggable endorsement** — the mechanism (Fabric's "pluggable
//!   transaction endorsement", paper ref \[8\]) that the interop layer uses to
//!   sign-and-encrypt query responses ([`endorse::EndorsementPlugin`]).
//!
//! [`network`] wires everything into a runnable in-process network with a
//! client [`gateway`], block [`events`], and fault injection ([`net`]) for
//! availability experiments.

pub mod chaincode;
pub mod endorse;
pub mod error;
pub mod events;
pub mod gateway;
pub mod msp;
pub mod net;
pub mod network;
pub mod orderer;
pub mod peer;
pub mod policy;

pub use error::FabricError;
