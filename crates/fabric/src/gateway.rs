//! Client gateway: the SDK applications use to talk to a network.
//!
//! Wraps the full submit flow — proposal construction, signing, endorsement
//! collection per the chaincode's policy, ordering, and waiting for the
//! commit outcome — plus lightweight queries (simulation only, no ordering).

use crate::chaincode::Proposal;
use crate::endorse::TransactionEnvelope;
use crate::error::FabricError;
use crate::msp::Identity;
use crate::network::FabricNetwork;
use std::collections::BTreeMap;
use std::sync::Arc;
use tdt_ledger::block::TxValidationCode;
use tdt_wire::codec::Message;

/// The outcome of a submitted transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxOutcome {
    /// Transaction id.
    pub txid: String,
    /// Chaincode result returned by the endorsers.
    pub result: Vec<u8>,
    /// Block the transaction was committed in.
    pub block_number: u64,
    /// Validation code (check [`TxValidationCode::is_valid`]).
    pub code: TxValidationCode,
}

impl TxOutcome {
    /// Returns the result if the transaction committed as valid.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::TransactionInvalidated`] otherwise.
    pub fn into_committed(self) -> Result<Vec<u8>, FabricError> {
        if self.code.is_valid() {
            Ok(self.result)
        } else {
            Err(FabricError::TransactionInvalidated(format!(
                "{} was invalidated: {:?}",
                self.txid, self.code
            )))
        }
    }
}

/// A client's connection to a [`FabricNetwork`].
#[derive(Debug, Clone)]
pub struct Gateway {
    network: Arc<FabricNetwork>,
    identity: Identity,
}

impl Gateway {
    /// Connects `identity` to the network.
    pub fn new(network: Arc<FabricNetwork>, identity: Identity) -> Self {
        Gateway { network, identity }
    }

    /// The identity this gateway signs with.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// The underlying network handle.
    pub fn network(&self) -> &Arc<FabricNetwork> {
        &self.network
    }

    fn build_proposal(
        &self,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
        transient: BTreeMap<String, Vec<u8>>,
    ) -> Proposal {
        let mut proposal = Proposal::new(
            self.network.next_txid(),
            self.network.channel(),
            chaincode,
            function,
            args,
            self.identity.certificate().clone(),
        );
        proposal.transient = transient;
        proposal.sign(self.identity.signing_key())
    }

    /// Submits a transaction and waits for commit. Forces a block cut, so
    /// the outcome is immediate regardless of the orderer batch size.
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on simulation failure, unsatisfiable
    /// endorsement policy, or peer unavailability. An invalidated
    /// transaction is reported through [`TxOutcome::code`], not an error.
    pub fn submit(
        &self,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> Result<TxOutcome, FabricError> {
        self.submit_with_transient(chaincode, function, args, BTreeMap::new())
    }

    /// [`Gateway::submit`] with transient data attached to the proposal.
    ///
    /// # Errors
    ///
    /// See [`Gateway::submit`].
    pub fn submit_with_transient(
        &self,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
        transient: BTreeMap<String, Vec<u8>>,
    ) -> Result<TxOutcome, FabricError> {
        let policy = self
            .network
            .policy_of(chaincode)
            .ok_or_else(|| FabricError::ChaincodeNotDeployed(chaincode.to_string()))?;
        let orgs = policy.minimal_org_set().ok_or_else(|| {
            FabricError::EndorsementPolicyUnsatisfied(format!(
                "policy {policy} cannot be satisfied by any org set"
            ))
        })?;
        let proposal = self.build_proposal(chaincode, function, args, transient);
        let (sim, endorsements) = self.network.endorse(&proposal, &orgs)?;
        let envelope = TransactionEnvelope {
            txid: proposal.txid.clone(),
            channel: self.network.channel().to_string(),
            chaincode: chaincode.to_string(),
            result: sim.result.clone(),
            rwset: sim.rwset,
            endorsements,
            creator_cert: self.identity.certificate().clone(),
        };
        let committed = match self.network.order(&envelope)? {
            Some(outcome) => outcome,
            None => self
                .network
                .cut_block()?
                .ok_or_else(|| FabricError::Internal("orderer lost the transaction".into()))?,
        };
        let (block_number, codes) = committed;
        // Locate this tx's validation code within the block.
        let code = self
            .find_code(block_number, &proposal.txid, &codes)
            .unwrap_or(TxValidationCode::BadPayload);
        Ok(TxOutcome {
            txid: proposal.txid,
            result: sim.result,
            block_number,
            code,
        })
    }

    fn find_code(
        &self,
        block_number: u64,
        txid: &str,
        codes: &[TxValidationCode],
    ) -> Option<TxValidationCode> {
        // Use any peer's store to map txid -> index within the block.
        let (_, peer) = self
            .network
            .peers()
            .next()
            .map(|(n, p)| (n.to_string(), Arc::clone(p)))?;
        let peer = peer.read();
        let block = peer.store().block(block_number).ok()?;
        let idx = block.transactions.iter().position(|tx| {
            crate::endorse::TransactionEnvelope::decode_from_slice(tx)
                .map(|e| e.txid == txid)
                .unwrap_or(false)
        })?;
        codes.get(idx).copied()
    }

    /// Evaluates a read-only query against one available peer of the
    /// client's own organization (falling back to any available org).
    ///
    /// # Errors
    ///
    /// Returns a [`FabricError`] on simulation failure or when no peer is
    /// reachable.
    pub fn query(
        &self,
        chaincode: &str,
        function: &str,
        args: Vec<Vec<u8>>,
    ) -> Result<Vec<u8>, FabricError> {
        let proposal = self.build_proposal(chaincode, function, args, BTreeMap::new());
        let own_org = self.identity.organization().to_string();
        let peer = match self.network.available_peer(&own_org) {
            Ok((_, peer)) => peer,
            Err(_) => {
                // Fall back to any org with an available peer.
                let mut found = None;
                for org in self.network.org_ids() {
                    if let Ok((_, p)) = self.network.available_peer(org) {
                        found = Some(p);
                        break;
                    }
                }
                found.ok_or_else(|| {
                    FabricError::PeerUnavailable("no peer available in any org".into())
                })?
            }
        };
        self.network.faults().apply_latency();
        let sim = peer.read().simulate(&proposal)?;
        Ok(sim.result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaincode::{Chaincode, TxContext};
    use crate::error::ChaincodeError;
    use crate::network::NetworkBuilder;
    use crate::policy::EndorsementPolicy;

    struct KvStore;

    impl Chaincode for KvStore {
        fn invoke(
            &self,
            ctx: &mut TxContext<'_>,
            function: &str,
            args: &[Vec<u8>],
        ) -> Result<Vec<u8>, ChaincodeError> {
            match function {
                "put" => {
                    let key = String::from_utf8_lossy(&args[0]).into_owned();
                    ctx.put_state(&key, args[1].clone());
                    Ok(b"ok".to_vec())
                }
                "get" => {
                    let key = String::from_utf8_lossy(&args[0]).into_owned();
                    ctx.get_state(&key).ok_or(ChaincodeError::NotFound(key))
                }
                "whoami" => Ok(ctx.creator().subject().qualified_name().into_bytes()),
                f => Err(ChaincodeError::UnknownFunction(f.into())),
            }
        }
    }

    fn gateway() -> Gateway {
        let net = NetworkBuilder::new("gwnet")
            .org("org-a", 1)
            .org("org-b", 1)
            .chaincode(
                "kv",
                Arc::new(KvStore),
                EndorsementPolicy::all_of(["org-a", "org-b"]),
            )
            .build();
        let client = net.register_client("org-a", "alice", false).unwrap();
        Gateway::new(net, client)
    }

    #[test]
    fn submit_then_query() {
        let gw = gateway();
        let outcome = gw
            .submit("kv", "put", vec![b"name".to_vec(), b"weave".to_vec()])
            .unwrap();
        assert!(outcome.code.is_valid());
        assert_eq!(outcome.result, b"ok");
        assert_eq!(outcome.block_number, 1);
        let value = gw.query("kv", "get", vec![b"name".to_vec()]).unwrap();
        assert_eq!(value, b"weave");
    }

    #[test]
    fn into_committed_on_valid() {
        let gw = gateway();
        let outcome = gw
            .submit("kv", "put", vec![b"k".to_vec(), b"v".to_vec()])
            .unwrap();
        assert_eq!(outcome.into_committed().unwrap(), b"ok");
    }

    #[test]
    fn query_does_not_commit() {
        let gw = gateway();
        gw.submit("kv", "put", vec![b"k".to_vec(), b"v".to_vec()])
            .unwrap();
        let height_before: u64 = {
            let (_, peer) = gw.network().peers().next().unwrap();
            let h = peer.read().height();
            h
        };
        gw.query("kv", "get", vec![b"k".to_vec()]).unwrap();
        let (_, peer) = gw.network().peers().next().unwrap();
        assert_eq!(peer.read().height(), height_before);
    }

    #[test]
    fn chaincode_error_propagates() {
        let gw = gateway();
        let err = gw
            .query("kv", "get", vec![b"missing".to_vec()])
            .unwrap_err();
        assert!(matches!(
            err,
            FabricError::Chaincode(ChaincodeError::NotFound(_))
        ));
    }

    #[test]
    fn unknown_chaincode_on_submit() {
        let gw = gateway();
        assert!(matches!(
            gw.submit("nope", "f", vec![]),
            Err(FabricError::ChaincodeNotDeployed(_))
        ));
    }

    #[test]
    fn creator_identity_visible_to_chaincode() {
        let gw = gateway();
        let who = gw.query("kv", "whoami", vec![]).unwrap();
        assert_eq!(who, b"gwnet/org-a/alice");
    }

    #[test]
    fn query_falls_back_when_own_org_down() {
        let gw = gateway();
        gw.submit("kv", "put", vec![b"k".to_vec(), b"v".to_vec()])
            .unwrap();
        gw.network().faults().take_down("gwnet/org-a/peer0");
        // Falls back to org-b's peer.
        let v = gw.query("kv", "get", vec![b"k".to_vec()]).unwrap();
        assert_eq!(v, b"v");
        // All peers down -> unavailable.
        gw.network().faults().take_down("gwnet/org-b/peer0");
        assert!(matches!(
            gw.query("kv", "get", vec![b"k".to_vec()]),
            Err(FabricError::PeerUnavailable(_))
        ));
    }

    #[test]
    fn submit_fails_when_endorsing_org_down() {
        let gw = gateway();
        gw.network().faults().take_down("gwnet/org-b/peer0");
        assert!(matches!(
            gw.submit("kv", "put", vec![b"k".to_vec(), b"v".to_vec()]),
            Err(FabricError::PeerUnavailable(_))
        ));
    }

    #[test]
    fn multiple_submissions_advance_chain() {
        let gw = gateway();
        for i in 0..3 {
            let outcome = gw
                .submit(
                    "kv",
                    "put",
                    vec![format!("k{i}").into_bytes(), b"v".to_vec()],
                )
                .unwrap();
            assert_eq!(outcome.block_number, i + 1);
        }
    }
}
