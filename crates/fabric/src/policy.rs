//! Endorsement policies: which organizations must endorse a transaction.
//!
//! Fabric expresses these as boolean expressions over MSP principals; this
//! module implements the same algebra (`AND`/`OR`/`OutOf` over org ids).
//! The interop verification policy (in `tdt-wire`) is a distinct language
//! evaluated by the *destination* network; endorsement policies are local.

use std::fmt;

/// An endorsement policy expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndorsementPolicy {
    /// A member of the named organization must endorse.
    Org(String),
    /// All sub-policies must be satisfied.
    And(Vec<EndorsementPolicy>),
    /// Any sub-policy suffices.
    Or(Vec<EndorsementPolicy>),
    /// At least `k` sub-policies must be satisfied.
    OutOf(u32, Vec<EndorsementPolicy>),
}

impl EndorsementPolicy {
    /// Policy requiring one endorsement from each listed org.
    pub fn all_of<I, S>(orgs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        EndorsementPolicy::And(
            orgs.into_iter()
                .map(|o| EndorsementPolicy::Org(o.into()))
                .collect(),
        )
    }

    /// Policy satisfied by any one of the listed orgs.
    pub fn any_of<I, S>(orgs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        EndorsementPolicy::Or(
            orgs.into_iter()
                .map(|o| EndorsementPolicy::Org(o.into()))
                .collect(),
        )
    }

    /// Policy satisfied by at least `k` of the listed orgs.
    pub fn k_of<I, S>(k: u32, orgs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        EndorsementPolicy::OutOf(
            k,
            orgs.into_iter()
                .map(|o| EndorsementPolicy::Org(o.into()))
                .collect(),
        )
    }

    /// Evaluates against the set of orgs with valid endorsements.
    pub fn is_satisfied<S: AsRef<str>>(&self, endorsing_orgs: &[S]) -> bool {
        match self {
            EndorsementPolicy::Org(org) => endorsing_orgs.iter().any(|o| o.as_ref() == org),
            EndorsementPolicy::And(ps) => ps.iter().all(|p| p.is_satisfied(endorsing_orgs)),
            EndorsementPolicy::Or(ps) => ps.iter().any(|p| p.is_satisfied(endorsing_orgs)),
            EndorsementPolicy::OutOf(k, ps) => {
                ps.iter().filter(|p| p.is_satisfied(endorsing_orgs)).count() >= *k as usize
            }
        }
    }

    /// A minimal set of organizations that would satisfy the policy, used
    /// by gateways and relay drivers to choose which peers to contact.
    /// Returns `None` for unsatisfiable policies (e.g. `OutOf(3, [a, b])`).
    pub fn minimal_org_set(&self) -> Option<Vec<String>> {
        match self {
            EndorsementPolicy::Org(org) => Some(vec![org.clone()]),
            EndorsementPolicy::And(ps) => {
                let mut out = Vec::new();
                for p in ps {
                    for org in p.minimal_org_set()? {
                        if !out.contains(&org) {
                            out.push(org);
                        }
                    }
                }
                Some(out)
            }
            EndorsementPolicy::Or(ps) => ps
                .iter()
                .filter_map(EndorsementPolicy::minimal_org_set)
                .min_by_key(Vec::len),
            EndorsementPolicy::OutOf(k, ps) => {
                let mut candidates: Vec<Vec<String>> = ps
                    .iter()
                    .filter_map(EndorsementPolicy::minimal_org_set)
                    .collect();
                if candidates.len() < *k as usize {
                    return None;
                }
                candidates.sort_by_key(Vec::len);
                let mut out = Vec::new();
                for set in candidates.into_iter().take(*k as usize) {
                    for org in set {
                        if !out.contains(&org) {
                            out.push(org);
                        }
                    }
                }
                Some(out)
            }
        }
    }

    /// Every organization mentioned anywhere in the policy.
    pub fn all_orgs(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<String>) {
        match self {
            EndorsementPolicy::Org(o) => {
                if !out.contains(o) {
                    out.push(o.clone());
                }
            }
            EndorsementPolicy::And(ps)
            | EndorsementPolicy::Or(ps)
            | EndorsementPolicy::OutOf(_, ps) => {
                for p in ps {
                    p.collect(out);
                }
            }
        }
    }
}

impl fmt::Display for EndorsementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndorsementPolicy::Org(o) => write!(f, "'{o}.member'"),
            EndorsementPolicy::And(ps) => {
                write!(f, "AND(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            EndorsementPolicy::Or(ps) => {
                write!(f, "OR(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            EndorsementPolicy::OutOf(k, ps) => {
                write!(f, "OutOf({k}")?;
                for p in ps {
                    write!(f, ", {p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_of_requires_every_org() {
        let p = EndorsementPolicy::all_of(["a", "b"]);
        assert!(p.is_satisfied(&["a", "b"]));
        assert!(!p.is_satisfied(&["a"]));
        assert!(!p.is_satisfied::<&str>(&[]));
    }

    #[test]
    fn any_of_requires_one() {
        let p = EndorsementPolicy::any_of(["a", "b"]);
        assert!(p.is_satisfied(&["b"]));
        assert!(!p.is_satisfied(&["c"]));
    }

    #[test]
    fn k_of_threshold() {
        let p = EndorsementPolicy::k_of(2, ["a", "b", "c"]);
        assert!(p.is_satisfied(&["a", "c"]));
        assert!(!p.is_satisfied(&["b"]));
        assert!(p.is_satisfied(&["a", "b", "c"]));
    }

    #[test]
    fn nested_policy() {
        // AND( org-x, OR(a, b) )
        let p = EndorsementPolicy::And(vec![
            EndorsementPolicy::Org("x".into()),
            EndorsementPolicy::any_of(["a", "b"]),
        ]);
        assert!(p.is_satisfied(&["x", "b"]));
        assert!(!p.is_satisfied(&["x"]));
        assert!(!p.is_satisfied(&["a", "b"]));
    }

    #[test]
    fn minimal_set_and() {
        let p = EndorsementPolicy::all_of(["a", "b"]);
        assert_eq!(p.minimal_org_set().unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn minimal_set_or_prefers_smallest() {
        let p = EndorsementPolicy::Or(vec![
            EndorsementPolicy::all_of(["a", "b"]),
            EndorsementPolicy::Org("c".into()),
        ]);
        assert_eq!(p.minimal_org_set().unwrap(), vec!["c"]);
    }

    #[test]
    fn minimal_set_outof() {
        let p = EndorsementPolicy::k_of(2, ["a", "b", "c"]);
        let set = p.minimal_org_set().unwrap();
        assert_eq!(set.len(), 2);
        assert!(p.is_satisfied(&set));
    }

    #[test]
    fn minimal_set_unsatisfiable() {
        let p = EndorsementPolicy::OutOf(3, vec![EndorsementPolicy::Org("a".into())]);
        assert!(p.minimal_org_set().is_none());
    }

    #[test]
    fn all_orgs_deduplicated() {
        let p = EndorsementPolicy::And(vec![
            EndorsementPolicy::Org("a".into()),
            EndorsementPolicy::any_of(["a", "b"]),
        ]);
        assert_eq!(p.all_orgs(), vec!["a", "b"]);
    }

    #[test]
    fn display_format() {
        let p = EndorsementPolicy::And(vec![
            EndorsementPolicy::Org("seller".into()),
            EndorsementPolicy::Org("carrier".into()),
        ]);
        assert_eq!(p.to_string(), "AND('seller.member', 'carrier.member')");
        let k = EndorsementPolicy::k_of(2, ["a", "b"]);
        assert_eq!(k.to_string(), "OutOf(2, 'a.member', 'b.member')");
    }

    proptest! {
        #[test]
        fn prop_minimal_set_satisfies(orgs in proptest::collection::vec("[a-e]", 1..5), k in 1u32..4) {
            let k = k.min(orgs.len() as u32);
            let p = EndorsementPolicy::k_of(k, orgs);
            if let Some(set) = p.minimal_org_set() {
                prop_assert!(p.is_satisfied(&set));
            }
        }
    }
}
