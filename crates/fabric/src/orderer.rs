//! The ordering service: batches endorsed transactions into blocks.
//!
//! Models Fabric's solo orderer: transactions are accepted in arrival order
//! and cut into blocks either when the batch reaches `batch_size` or when
//! the caller forces a cut (Fabric's batch timeout, driven manually here so
//! simulations stay deterministic).

use tdt_ledger::block::{Block, BlockHeader};

/// A solo ordering service.
#[derive(Debug)]
pub struct OrderingService {
    tip: BlockHeader,
    pending: Vec<Vec<u8>>,
    batch_size: usize,
    ordered_count: u64,
}

impl OrderingService {
    /// Creates the service from the channel's genesis block.
    pub fn new(genesis: &Block, batch_size: usize) -> Self {
        OrderingService {
            tip: genesis.header.clone(),
            pending: Vec::new(),
            batch_size: batch_size.max(1),
            ordered_count: 0,
        }
    }

    /// Number of transactions ordered so far.
    pub fn ordered_count(&self) -> u64 {
        self.ordered_count
    }

    /// Number of transactions waiting for the next block.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Changes the batch size (affects subsequent cuts).
    pub fn set_batch_size(&mut self, batch_size: usize) {
        self.batch_size = batch_size.max(1);
    }

    /// Accepts one endorsed transaction envelope; returns a block when the
    /// batch filled up.
    pub fn submit(&mut self, envelope_bytes: Vec<u8>) -> Option<Block> {
        self.pending.push(envelope_bytes);
        self.ordered_count += 1;
        if self.pending.len() >= self.batch_size {
            self.cut()
        } else {
            None
        }
    }

    /// Forces a block cut (the batch-timeout path). Returns `None` when
    /// nothing is pending.
    pub fn cut(&mut self) -> Option<Block> {
        if self.pending.is_empty() {
            return None;
        }
        let txs = std::mem::take(&mut self.pending);
        let block = Block::next(&self.tip, txs);
        self.tip = block.header.clone();
        Some(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orderer(batch: usize) -> OrderingService {
        OrderingService::new(&Block::genesis(vec![b"cfg".to_vec()]), batch)
    }

    #[test]
    fn batch_of_one_cuts_immediately() {
        let mut o = orderer(1);
        let block = o.submit(b"tx1".to_vec()).unwrap();
        assert_eq!(block.header.number, 1);
        assert_eq!(block.transactions, vec![b"tx1".to_vec()]);
        assert_eq!(o.pending_count(), 0);
    }

    #[test]
    fn batch_accumulates_until_full() {
        let mut o = orderer(3);
        assert!(o.submit(b"a".to_vec()).is_none());
        assert!(o.submit(b"b".to_vec()).is_none());
        let block = o.submit(b"c".to_vec()).unwrap();
        assert_eq!(block.transactions.len(), 3);
    }

    #[test]
    fn manual_cut_flushes_partial_batch() {
        let mut o = orderer(10);
        o.submit(b"a".to_vec());
        let block = o.cut().unwrap();
        assert_eq!(block.transactions.len(), 1);
        assert!(o.cut().is_none());
    }

    #[test]
    fn blocks_chain_correctly() {
        let genesis = Block::genesis(vec![]);
        let mut o = OrderingService::new(&genesis, 1);
        let b1 = o.submit(b"a".to_vec()).unwrap();
        let b2 = o.submit(b"b".to_vec()).unwrap();
        assert_eq!(b1.header.prev_hash, genesis.hash());
        assert_eq!(b2.header.prev_hash, b1.hash());
        assert_eq!(b2.header.number, 2);
    }

    #[test]
    fn ordered_count_tracks() {
        let mut o = orderer(2);
        o.submit(b"a".to_vec());
        o.submit(b"b".to_vec());
        o.submit(b"c".to_vec());
        assert_eq!(o.ordered_count(), 3);
        assert_eq!(o.pending_count(), 1);
    }

    #[test]
    fn zero_batch_size_clamped() {
        let mut o = orderer(0);
        assert_eq!(o.batch_size(), 1);
        o.set_batch_size(0);
        assert_eq!(o.batch_size(), 1);
        assert!(o.submit(b"tx".to_vec()).is_some());
    }
}
