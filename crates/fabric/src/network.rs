//! Network assembly: organizations, peers, orderer, and chaincode
//! deployment wired into one runnable in-process blockchain network.

use crate::chaincode::{Chaincode, ChaincodeRegistry, Proposal};
use crate::endorse::{Endorsement, SimulationResult, TransactionEnvelope};
use crate::error::FabricError;
use crate::events::{BlockEvent, EventHub};
use crate::msp::{Identity, Msp, MspRegistry};
use crate::net::FaultInjector;
use crate::orderer::OrderingService;
use crate::peer::Peer;
use crate::policy::EndorsementPolicy;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tdt_crypto::cert::CertRole;
use tdt_crypto::group::Group;
use tdt_ledger::block::{Block, TxValidationCode};
use tdt_wire::codec::Message;
use tdt_wire::messages::{encode_certificate, NetworkConfig, OrgConfig};

/// An organization: its MSP plus the names of its peers.
#[derive(Debug)]
pub struct Organization {
    msp: RwLock<Msp>,
    peer_names: Vec<String>,
}

impl Organization {
    /// Names of this organization's peers (qualified).
    pub fn peer_names(&self) -> &[String] {
        &self.peer_names
    }

    /// The organization's root certificate.
    pub fn root_certificate(&self) -> tdt_crypto::cert::Certificate {
        self.msp.read().root_certificate().clone()
    }
}

/// Builder for a [`FabricNetwork`].
#[derive(Default)]
pub struct NetworkBuilder {
    name: String,
    group: Option<Group>,
    channel: String,
    orgs: Vec<(String, usize)>,
    chaincodes: Vec<(String, Arc<dyn Chaincode>, EndorsementPolicy)>,
    batch_size: usize,
}

impl NetworkBuilder {
    /// Starts building a network called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkBuilder {
            name: name.into(),
            group: None,
            channel: "default-channel".into(),
            orgs: Vec::new(),
            chaincodes: Vec::new(),
            batch_size: 1,
        }
    }

    /// Sets the cryptographic group (default: the 768-bit test group).
    pub fn group(mut self, group: Group) -> Self {
        self.group = Some(group);
        self
    }

    /// Names the single channel (ledger).
    pub fn channel(mut self, channel: impl Into<String>) -> Self {
        self.channel = channel.into();
        self
    }

    /// Adds an organization with `peer_count` peers.
    pub fn org(mut self, org_id: impl Into<String>, peer_count: usize) -> Self {
        self.orgs.push((org_id.into(), peer_count.max(1)));
        self
    }

    /// Deploys a chaincode with its endorsement policy.
    pub fn chaincode(
        mut self,
        name: impl Into<String>,
        code: Arc<dyn Chaincode>,
        policy: EndorsementPolicy,
    ) -> Self {
        self.chaincodes.push((name.into(), code, policy));
        self
    }

    /// Sets the orderer batch size (default 1: a block per transaction).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Assembles the network: creates MSPs, enrolls peers, deploys
    /// chaincodes, commits the genesis block everywhere.
    ///
    /// # Panics
    ///
    /// Panics if no organization was added.
    pub fn build(self) -> Arc<FabricNetwork> {
        assert!(!self.orgs.is_empty(), "a network needs at least one org");
        let group = self.group.unwrap_or_else(Group::test_group);
        let mut registry = ChaincodeRegistry::new();
        let mut policies = HashMap::new();
        let mut genesis_config = Vec::new();
        genesis_config.push(format!("network={}", self.name).into_bytes());
        genesis_config.push(format!("channel={}", self.channel).into_bytes());
        for (name, code, policy) in self.chaincodes {
            genesis_config.push(format!("chaincode={name} policy={policy}").into_bytes());
            registry.deploy(name.clone(), code);
            policies.insert(name, policy);
        }
        let registry = Arc::new(registry);
        let policies = Arc::new(policies);

        let mut orgs = BTreeMap::new();
        let mut msp_registry = MspRegistry::new();
        let mut enrolled_peers: Vec<(String, String, Identity)> = Vec::new();
        for (org_id, peer_count) in &self.orgs {
            let mut msp = Msp::new(&self.name, org_id, group.clone(), b"network-seed");
            msp_registry.register(org_id.clone(), msp.root_certificate().clone());
            let mut peer_names = Vec::new();
            for i in 0..*peer_count {
                let peer_name = format!("peer{i}");
                let identity = msp.enroll(&peer_name, CertRole::Peer, false);
                let qualified = format!("{}/{}/{}", self.name, org_id, peer_name);
                peer_names.push(qualified.clone());
                enrolled_peers.push((org_id.clone(), peer_name, identity));
            }
            orgs.insert(
                org_id.clone(),
                Organization {
                    msp: RwLock::new(msp),
                    peer_names,
                },
            );
        }
        let msp_registry = Arc::new(msp_registry);

        let genesis = Block::genesis(genesis_config);
        let mut peers = BTreeMap::new();
        for (org_id, peer_name, identity) in enrolled_peers {
            let mut peer = Peer::new(
                &self.name,
                &org_id,
                &peer_name,
                identity,
                Arc::clone(&registry),
                Arc::clone(&msp_registry),
                Arc::clone(&policies),
            );
            peer.validate_and_commit(genesis.clone())
                // lint:allow(panic: "network construction at startup; a locally built genesis block always links")
                .expect("genesis commit cannot fail");
            peers.insert(peer.qualified_name(), Arc::new(RwLock::new(peer)));
        }

        Arc::new(FabricNetwork {
            name: self.name,
            channel: self.channel,
            group,
            orgs,
            peers,
            orderer: Mutex::new(OrderingService::new(&genesis, self.batch_size)),
            delivery_lock: Mutex::new(()),
            registry,
            msp_registry,
            policies,
            events: EventHub::new(),
            faults: FaultInjector::new(),
            tx_counter: AtomicU64::new(0),
        })
    }
}

/// A fully assembled in-process permissioned blockchain network.
#[derive(Debug)]
pub struct FabricNetwork {
    name: String,
    channel: String,
    group: Group,
    orgs: BTreeMap<String, Organization>,
    peers: BTreeMap<String, Arc<RwLock<Peer>>>,
    orderer: Mutex<OrderingService>,
    /// Serializes block delivery: a block must be committed on every peer
    /// before the next block is cut, or replicas would observe gaps.
    delivery_lock: Mutex<()>,
    registry: Arc<ChaincodeRegistry>,
    msp_registry: Arc<MspRegistry>,
    policies: Arc<HashMap<String, EndorsementPolicy>>,
    events: EventHub,
    faults: FaultInjector,
    tx_counter: AtomicU64,
}

impl FabricNetwork {
    /// The network's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The channel (ledger) name.
    pub fn channel(&self) -> &str {
        &self.channel
    }

    /// The cryptographic group of this network's identities.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Organization ids, sorted.
    pub fn org_ids(&self) -> Vec<&str> {
        self.orgs.keys().map(String::as_str).collect()
    }

    /// Looks up an organization.
    pub fn org(&self, org_id: &str) -> Option<&Organization> {
        self.orgs.get(org_id)
    }

    /// The MSP registry (root certificates of all local organizations).
    pub fn msp_registry(&self) -> &MspRegistry {
        &self.msp_registry
    }

    /// The deployed chaincode registry.
    pub fn chaincode_registry(&self) -> &ChaincodeRegistry {
        &self.registry
    }

    /// Endorsement policy of a chaincode.
    pub fn policy_of(&self, chaincode: &str) -> Option<&EndorsementPolicy> {
        self.policies.get(chaincode)
    }

    /// Block event hub.
    pub fn events(&self) -> &EventHub {
        &self.events
    }

    /// Fault injector (availability experiments).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Generates a unique transaction id.
    pub fn next_txid(&self) -> String {
        let n = self.tx_counter.fetch_add(1, Ordering::Relaxed);
        format!("{}-tx-{n}", self.name)
    }

    /// Enrolls a new client identity in an organization.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::UnknownOrganization`] for unknown orgs.
    pub fn register_client(
        &self,
        org_id: &str,
        name: &str,
        with_encryption: bool,
    ) -> Result<Identity, FabricError> {
        let org = self
            .orgs
            .get(org_id)
            .ok_or_else(|| FabricError::UnknownOrganization(org_id.to_string()))?;
        Ok(org
            .msp
            .write()
            .enroll(name, CertRole::Client, with_encryption))
    }

    /// All peers (qualified name -> handle), sorted by name.
    pub fn peers(&self) -> impl Iterator<Item = (&str, &Arc<RwLock<Peer>>)> {
        self.peers.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A specific peer by qualified name.
    pub fn peer(&self, qualified_name: &str) -> Option<&Arc<RwLock<Peer>>> {
        self.peers.get(qualified_name)
    }

    /// Peers belonging to an organization, in enrollment order, including
    /// their qualified names.
    pub fn peers_of_org(&self, org_id: &str) -> Vec<(String, Arc<RwLock<Peer>>)> {
        self.orgs
            .get(org_id)
            .map(|org| {
                org.peer_names
                    .iter()
                    .filter_map(|n| self.peers.get(n).map(|p| (n.clone(), Arc::clone(p))))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// First *available* (not faulted) peer of an organization.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::PeerUnavailable`] when all of the org's peers
    /// are down, or [`FabricError::UnknownOrganization`].
    pub fn available_peer(&self, org_id: &str) -> Result<(String, Arc<RwLock<Peer>>), FabricError> {
        if !self.orgs.contains_key(org_id) {
            return Err(FabricError::UnknownOrganization(org_id.to_string()));
        }
        self.peers_of_org(org_id)
            .into_iter()
            .find(|(name, _)| !self.faults.is_down(name))
            .ok_or_else(|| FabricError::PeerUnavailable(format!("all peers of {org_id}")))
    }

    /// Collects endorsements for `proposal` from one available peer of each
    /// org in `endorsing_orgs`, checking that all peers produced identical
    /// results (a divergent peer would sign a different payload and break
    /// validation anyway; detecting it early gives a better error).
    ///
    /// # Errors
    ///
    /// Returns the first simulation failure, peer unavailability, or a
    /// [`FabricError::EndorsementPolicyUnsatisfied`] on divergent results.
    pub fn endorse(
        &self,
        proposal: &Proposal,
        endorsing_orgs: &[String],
    ) -> Result<(SimulationResult, Vec<Endorsement>), FabricError> {
        let mut reference: Option<SimulationResult> = None;
        let mut endorsements = Vec::with_capacity(endorsing_orgs.len());
        for org in endorsing_orgs {
            let (_, peer) = self.available_peer(org)?;
            self.faults.apply_latency();
            let peer = peer.read();
            let sim = peer.simulate(proposal)?;
            match &reference {
                None => reference = Some(sim.clone()),
                Some(r) => {
                    if r.result != sim.result || r.rwset != sim.rwset {
                        return Err(FabricError::EndorsementPolicyUnsatisfied(format!(
                            "peer of org {org} produced a divergent simulation result"
                        )));
                    }
                }
            }
            endorsements.push(peer.endorse_transaction(proposal, &sim)?);
        }
        let sim = reference.ok_or_else(|| {
            FabricError::EndorsementPolicyUnsatisfied("no endorsing organizations".into())
        })?;
        Ok((sim, endorsements))
    }

    /// Submits an endorsed envelope to ordering; delivers any cut block.
    ///
    /// Returns the committed block number and validation codes when a block
    /// was cut, `None` when the envelope is still pending in the batch.
    ///
    /// # Errors
    ///
    /// Propagates commit failures (which indicate a broken chain and are
    /// fatal in this in-process setting).
    pub fn order(
        &self,
        envelope: &TransactionEnvelope,
    ) -> Result<Option<(u64, Vec<TxValidationCode>)>, FabricError> {
        // Hold the delivery lock across cut + commit so concurrent
        // submitters cannot deliver blocks out of order.
        let _guard = self.delivery_lock.lock();
        let maybe_block = self.orderer.lock().submit(envelope.encode_to_vec());
        match maybe_block {
            Some(block) => Ok(Some(self.deliver(block)?)),
            None => Ok(None),
        }
    }

    /// Forces the orderer to cut a block from pending transactions and
    /// delivers it.
    ///
    /// # Errors
    ///
    /// Propagates commit failures.
    pub fn cut_block(&self) -> Result<Option<(u64, Vec<TxValidationCode>)>, FabricError> {
        let _guard = self.delivery_lock.lock();
        let maybe_block = self.orderer.lock().cut();
        match maybe_block {
            Some(block) => Ok(Some(self.deliver(block)?)),
            None => Ok(None),
        }
    }

    /// Orderer batch size control (batching experiments).
    pub fn set_batch_size(&self, batch_size: usize) {
        self.orderer.lock().set_batch_size(batch_size);
    }

    fn deliver(&self, block: Block) -> Result<(u64, Vec<TxValidationCode>), FabricError> {
        self.faults.apply_latency();
        let block_number = block.header.number;
        let txids: Vec<String> = block
            .transactions
            .iter()
            .map(|tx| {
                TransactionEnvelope::decode_from_slice(tx)
                    .map(|e| e.txid)
                    .unwrap_or_default()
            })
            .collect();
        let mut codes: Option<Vec<TxValidationCode>> = None;
        let mut delivered_to_any = false;
        for (name, peer) in &self.peers {
            // A downed peer misses the delivery and falls behind; it
            // catches up later via [`FabricNetwork::sync_peer`].
            if self.faults.is_down(name) {
                continue;
            }
            delivered_to_any = true;
            let peer_codes = peer.write().validate_and_commit(block.clone())?;
            match &codes {
                None => codes = Some(peer_codes),
                Some(reference) => {
                    debug_assert_eq!(
                        reference, &peer_codes,
                        "honest peers must agree on validation"
                    );
                }
            }
        }
        if !delivered_to_any {
            return Err(FabricError::PeerUnavailable(
                "no peer was available to commit the block".into(),
            ));
        }
        let codes = codes.unwrap_or_default();
        self.events.publish(BlockEvent {
            block_number,
            txids,
            validation: codes.clone(),
        });
        Ok((block_number, codes))
    }

    /// Catches a lagging (previously downed) peer up to the longest chain
    /// by replaying missing blocks from an up-to-date replica. The synced
    /// peer *re-validates* every block (hash links, endorsements, MVCC), so
    /// the source replica need not be trusted.
    ///
    /// # Errors
    ///
    /// * [`FabricError::UnknownPeer`] for unknown names.
    /// * Propagates validation failures (a corrupt source block).
    pub fn sync_peer(&self, peer_name: &str) -> Result<u64, FabricError> {
        let target = self
            .peers
            .get(peer_name)
            .ok_or_else(|| FabricError::UnknownPeer(peer_name.to_string()))?;
        // Find the longest replica to copy from.
        let source = self
            .peers
            .iter()
            .filter(|(name, _)| name.as_str() != peer_name)
            .max_by_key(|(_, p)| p.read().height())
            .map(|(_, p)| Arc::clone(p))
            .ok_or_else(|| FabricError::Internal("no other replica to sync from".into()))?;
        let mut synced = 0u64;
        loop {
            let next_height = target.read().height();
            let missing = {
                let source = source.read();
                if next_height >= source.height() {
                    break;
                }
                source.store().block(next_height)?.clone()
            };
            target.write().validate_and_commit(missing)?;
            synced += 1;
        }
        Ok(synced)
    }

    /// Checks that every peer replica holds an identical world state,
    /// returning the common digest.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::Internal`] naming the divergent peer when
    /// replicas disagree.
    pub fn check_replica_consistency(&self) -> Result<[u8; 32], FabricError> {
        let mut reference: Option<(String, [u8; 32])> = None;
        for (name, peer) in &self.peers {
            let digest = peer.read().state_hash();
            match &reference {
                None => reference = Some((name.clone(), digest)),
                Some((ref_name, ref_digest)) => {
                    if digest != *ref_digest {
                        return Err(FabricError::Internal(format!(
                            "replica divergence: {name} disagrees with {ref_name}"
                        )));
                    }
                }
            }
        }
        reference
            .map(|(_, digest)| digest)
            .ok_or_else(|| FabricError::Internal("network has no peers".into()))
    }

    /// The network's shareable configuration: every org's root certificate
    /// and peer certificates — what a foreign network records via its
    /// Configuration Management contract (paper §4.3).
    pub fn network_config(&self) -> NetworkConfig {
        let orgs = self
            .orgs
            .iter()
            .map(|(org_id, org)| {
                let peer_certs = org
                    .peer_names
                    .iter()
                    .filter_map(|n| self.peers.get(n))
                    .map(|p| encode_certificate(p.read().identity().certificate()))
                    .collect();
                OrgConfig {
                    org_id: org_id.clone(),
                    root_cert: encode_certificate(&org.root_certificate()),
                    peer_certs,
                }
            })
            .collect();
        NetworkConfig {
            network_id: self.name.clone(),
            group_name: self.group.name().to_string(),
            orgs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaincode::TxContext;
    use crate::error::ChaincodeError;

    struct KvStore;

    impl Chaincode for KvStore {
        fn invoke(
            &self,
            ctx: &mut TxContext<'_>,
            function: &str,
            args: &[Vec<u8>],
        ) -> Result<Vec<u8>, ChaincodeError> {
            match function {
                "put" => {
                    let key = String::from_utf8_lossy(&args[0]).into_owned();
                    ctx.put_state(&key, args[1].clone());
                    Ok(Vec::new())
                }
                "get" => {
                    let key = String::from_utf8_lossy(&args[0]).into_owned();
                    ctx.get_state(&key).ok_or(ChaincodeError::NotFound(key))
                }
                f => Err(ChaincodeError::UnknownFunction(f.into())),
            }
        }
    }

    fn network() -> Arc<FabricNetwork> {
        NetworkBuilder::new("testnet")
            .channel("ch1")
            .org("org-a", 2)
            .org("org-b", 1)
            .chaincode(
                "kv",
                Arc::new(KvStore),
                EndorsementPolicy::all_of(["org-a", "org-b"]),
            )
            .build()
    }

    #[test]
    fn build_creates_peers_and_genesis() {
        let net = network();
        assert_eq!(net.org_ids(), vec!["org-a", "org-b"]);
        assert_eq!(net.peers().count(), 3);
        for (_, peer) in net.peers() {
            assert_eq!(peer.read().height(), 1);
        }
        assert_eq!(net.channel(), "ch1");
    }

    #[test]
    fn endorse_order_commit_roundtrip() {
        let net = network();
        let client = net.register_client("org-a", "alice", false).unwrap();
        let proposal = Proposal::new(
            net.next_txid(),
            net.channel(),
            "kv",
            "put",
            vec![b"k".to_vec(), b"v".to_vec()],
            client.certificate().clone(),
        )
        .sign(client.signing_key());
        let orgs = vec!["org-a".to_string(), "org-b".to_string()];
        let (sim, endorsements) = net.endorse(&proposal, &orgs).unwrap();
        assert_eq!(endorsements.len(), 2);
        let envelope = TransactionEnvelope {
            txid: proposal.txid.clone(),
            channel: net.channel().into(),
            chaincode: "kv".into(),
            result: sim.result.clone(),
            rwset: sim.rwset.clone(),
            endorsements,
            creator_cert: client.certificate().clone(),
        };
        let (block_number, codes) = net.order(&envelope).unwrap().unwrap();
        assert_eq!(block_number, 1);
        assert_eq!(codes, vec![TxValidationCode::Valid]);
        // All replicas agree.
        for (_, peer) in net.peers() {
            let peer = peer.read();
            assert_eq!(peer.height(), 2);
            assert_eq!(peer.state().get("kv", "k").unwrap().value, b"v");
        }
    }

    #[test]
    fn endorsement_requires_available_peers() {
        let net = network();
        let client = net.register_client("org-a", "alice", false).unwrap();
        let proposal = Proposal::new(
            net.next_txid(),
            net.channel(),
            "kv",
            "put",
            vec![b"k".to_vec(), b"v".to_vec()],
            client.certificate().clone(),
        )
        .sign(client.signing_key());
        // Take down the only org-b peer.
        net.faults().take_down("testnet/org-b/peer0");
        let err = net.endorse(&proposal, &["org-b".to_string()]).unwrap_err();
        assert!(matches!(err, FabricError::PeerUnavailable(_)));
        // org-a has a second peer, so taking down one still works.
        net.faults().take_down("testnet/org-a/peer0");
        assert!(net.endorse(&proposal, &["org-a".to_string()]).is_ok());
    }

    #[test]
    fn unknown_org_errors() {
        let net = network();
        assert!(matches!(
            net.register_client("nope", "x", false),
            Err(FabricError::UnknownOrganization(_))
        ));
        assert!(matches!(
            net.available_peer("nope"),
            Err(FabricError::UnknownOrganization(_))
        ));
    }

    #[test]
    fn events_published_on_commit() {
        let net = network();
        let rx = net.events().subscribe();
        let client = net.register_client("org-a", "alice", false).unwrap();
        let proposal = Proposal::new(
            "my-tx",
            net.channel(),
            "kv",
            "put",
            vec![b"k".to_vec(), b"v".to_vec()],
            client.certificate().clone(),
        )
        .sign(client.signing_key());
        let orgs: Vec<String> = vec!["org-a".into(), "org-b".into()];
        let (sim, endorsements) = net.endorse(&proposal, &orgs).unwrap();
        let envelope = TransactionEnvelope {
            txid: "my-tx".into(),
            channel: net.channel().into(),
            chaincode: "kv".into(),
            result: sim.result,
            rwset: sim.rwset,
            endorsements,
            creator_cert: client.certificate().clone(),
        };
        net.order(&envelope).unwrap();
        let event = rx.recv().unwrap();
        assert_eq!(event.block_number, 1);
        assert_eq!(event.validation_of("my-tx"), Some(TxValidationCode::Valid));
    }

    #[test]
    fn batching_defers_commit() {
        let net = NetworkBuilder::new("batched")
            .org("org-a", 1)
            .chaincode(
                "kv",
                Arc::new(KvStore),
                EndorsementPolicy::any_of(["org-a"]),
            )
            .batch_size(3)
            .build();
        let client = net.register_client("org-a", "c", false).unwrap();
        let mut pending = Vec::new();
        for i in 0..2 {
            let proposal = Proposal::new(
                net.next_txid(),
                net.channel(),
                "kv",
                "put",
                vec![format!("k{i}").into_bytes(), b"v".to_vec()],
                client.certificate().clone(),
            )
            .sign(client.signing_key());
            let (sim, endorsements) = net.endorse(&proposal, &["org-a".to_string()]).unwrap();
            let envelope = TransactionEnvelope {
                txid: proposal.txid.clone(),
                channel: net.channel().into(),
                chaincode: "kv".into(),
                result: sim.result,
                rwset: sim.rwset,
                endorsements,
                creator_cert: client.certificate().clone(),
            };
            pending.push(net.order(&envelope).unwrap());
        }
        assert!(pending.iter().all(Option::is_none));
        let (block, codes) = net.cut_block().unwrap().unwrap();
        assert_eq!(block, 1);
        assert_eq!(codes.len(), 2);
        assert!(net.cut_block().unwrap().is_none());
    }

    #[test]
    fn downed_peer_misses_blocks_and_syncs_back() {
        let net = network();
        let client = net.register_client("org-a", "alice", false).unwrap();
        let submit = |key: &str| {
            let proposal = Proposal::new(
                net.next_txid(),
                net.channel(),
                "kv",
                "put",
                vec![key.as_bytes().to_vec(), b"v".to_vec()],
                client.certificate().clone(),
            )
            .sign(client.signing_key());
            let orgs = vec!["org-a".to_string(), "org-b".to_string()];
            let (sim, endorsements) = net.endorse(&proposal, &orgs).unwrap();
            let envelope = TransactionEnvelope {
                txid: proposal.txid.clone(),
                channel: net.channel().into(),
                chaincode: "kv".into(),
                result: sim.result,
                rwset: sim.rwset,
                endorsements,
                creator_cert: client.certificate().clone(),
            };
            net.order(&envelope).unwrap().unwrap()
        };
        submit("k1");
        // Take down org-a/peer1 (not an endorser pick: peer0 comes first).
        net.faults().take_down("testnet/org-a/peer1");
        submit("k2");
        submit("k3");
        net.faults().restore("testnet/org-a/peer1");
        // The replica lags and diverges from the rest.
        assert!(net.check_replica_consistency().is_err());
        let lagging = net.peer("testnet/org-a/peer1").unwrap();
        assert_eq!(lagging.read().height(), 2); // genesis + k1 block only
                                                // Sync re-validates and catches up.
        let synced = net.sync_peer("testnet/org-a/peer1").unwrap();
        assert_eq!(synced, 2);
        net.check_replica_consistency().unwrap();
        assert_eq!(lagging.read().state().get("kv", "k3").unwrap().value, b"v");
    }

    #[test]
    fn sync_unknown_peer_errors() {
        let net = network();
        assert!(matches!(
            net.sync_peer("testnet/org-a/ghost"),
            Err(FabricError::UnknownPeer(_))
        ));
    }

    #[test]
    fn network_config_contains_all_orgs_and_peers() {
        let net = network();
        let cfg = net.network_config();
        assert_eq!(cfg.network_id, "testnet");
        assert_eq!(cfg.orgs.len(), 2);
        let org_a = cfg.orgs.iter().find(|o| o.org_id == "org-a").unwrap();
        assert_eq!(org_a.peer_certs.len(), 2);
        // Root certs decode and are self-signed CAs.
        let root = tdt_wire::messages::decode_certificate(&org_a.root_cert).unwrap();
        assert!(root.verify_self_signed().is_ok());
        // Peer certs chain to the root.
        let peer = tdt_wire::messages::decode_certificate(&org_a.peer_certs[0]).unwrap();
        assert!(peer.verify(&root).is_ok());
    }

    #[test]
    fn larger_group_parameterization_works() {
        // The whole pipeline runs unchanged over a bigger MODP group.
        let net = NetworkBuilder::new("bignet")
            .group(Group::modp_1024())
            .org("org-a", 1)
            .chaincode(
                "kv",
                Arc::new(KvStore),
                EndorsementPolicy::any_of(["org-a"]),
            )
            .build();
        assert_eq!(net.group().name(), "modp1024");
        let client = net.register_client("org-a", "c", false).unwrap();
        let proposal = Proposal::new(
            net.next_txid(),
            net.channel(),
            "kv",
            "put",
            vec![b"k".to_vec(), b"v".to_vec()],
            client.certificate().clone(),
        )
        .sign(client.signing_key());
        let (sim, endorsements) = net.endorse(&proposal, &["org-a".to_string()]).unwrap();
        let envelope = TransactionEnvelope {
            txid: proposal.txid.clone(),
            channel: net.channel().into(),
            chaincode: "kv".into(),
            result: sim.result,
            rwset: sim.rwset,
            endorsements,
            creator_cert: client.certificate().clone(),
        };
        let (_, codes) = net.order(&envelope).unwrap().unwrap();
        assert!(codes[0].is_valid());
        assert_eq!(net.network_config().group_name, "modp1024");
    }

    #[test]
    fn txids_unique() {
        let net = network();
        let a = net.next_txid();
        let b = net.next_txid();
        assert_ne!(a, b);
        assert!(a.starts_with("testnet-tx-"));
    }
}
