//! Membership Service Providers: organization-rooted identity management.
//!
//! Every organization runs an MSP: a root CA that issues member
//! certificates, a revocation list, and validation logic. Networks share
//! their MSP root certificates with foreign networks so that proofs can be
//! authenticated remotely (paper §4.3: "validate each signature and
//! authenticate each signer using the recorded STL configuration").

use crate::error::FabricError;
use std::collections::{HashMap, HashSet};
use tdt_crypto::cert::{CertRole, Certificate, CertificateAuthority};
use tdt_crypto::elgamal::DecryptionKey;
use tdt_crypto::group::Group;
use tdt_crypto::schnorr::SigningKey;

/// A member identity: certificate plus private keys.
#[derive(Debug, Clone)]
pub struct Identity {
    cert: Certificate,
    signing_key: SigningKey,
    decryption_key: Option<DecryptionKey>,
}

impl Identity {
    /// The member's certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.cert
    }

    /// The member's signing key.
    pub fn signing_key(&self) -> &SigningKey {
        &self.signing_key
    }

    /// The member's decryption key, when issued with one.
    pub fn decryption_key(&self) -> Option<&DecryptionKey> {
        self.decryption_key.as_ref()
    }

    /// Qualified name `network/org/common_name`.
    pub fn qualified_name(&self) -> String {
        self.cert.subject().qualified_name()
    }

    /// The organization this identity belongs to.
    pub fn organization(&self) -> &str {
        &self.cert.subject().organization
    }

    /// Signs arbitrary bytes with the identity's key.
    pub fn sign(&self, message: &[u8]) -> tdt_crypto::schnorr::Signature {
        self.signing_key.sign(message)
    }
}

/// An organization's Membership Service Provider.
#[derive(Debug)]
pub struct Msp {
    org_id: String,
    ca: CertificateAuthority,
    group: Group,
    revoked: HashSet<String>,
    issued: HashMap<String, Certificate>,
}

impl Msp {
    /// Creates the MSP (and root CA) for `org_id` in `network_id`.
    pub fn new(network_id: &str, org_id: &str, group: Group, seed: &[u8]) -> Self {
        Msp {
            org_id: org_id.to_string(),
            ca: CertificateAuthority::new(network_id, org_id, group.clone(), seed),
            group,
            revoked: HashSet::new(),
            issued: HashMap::new(),
        }
    }

    /// The organization id.
    pub fn org_id(&self) -> &str {
        &self.org_id
    }

    /// The root certificate other parties use to authenticate members.
    pub fn root_certificate(&self) -> &Certificate {
        self.ca.root_certificate()
    }

    /// The cryptographic group this MSP issues keys in.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// Enrolls a member: generates keys, issues a certificate.
    ///
    /// `with_encryption` additionally issues an ElGamal key pair, required
    /// by clients that receive confidential cross-network query responses.
    pub fn enroll(&mut self, common_name: &str, role: CertRole, with_encryption: bool) -> Identity {
        let seed = format!("{}/{}/{}", self.org_id, common_name, role_tag(role));
        let signing_key = SigningKey::from_seed(self.group.clone(), seed.as_bytes());
        let decryption_key = with_encryption.then(|| {
            DecryptionKey::from_seed(self.group.clone(), format!("{seed}/enc").as_bytes())
        });
        let cert = self.ca.issue(
            common_name,
            role,
            &signing_key.verifying_key(),
            decryption_key
                .as_ref()
                .map(DecryptionKey::encryption_key)
                .as_ref(),
        );
        self.issued.insert(cert.fingerprint(), cert.clone());
        Identity {
            cert,
            signing_key,
            decryption_key,
        }
    }

    /// Revokes a certificate by fingerprint.
    pub fn revoke(&mut self, fingerprint: &str) {
        self.revoked.insert(fingerprint.to_string());
    }

    /// Validates a certificate: CA signature plus revocation status.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::IdentityInvalid`] when the certificate does
    /// not chain to this MSP's root or has been revoked.
    pub fn validate(&self, cert: &Certificate) -> Result<(), FabricError> {
        if self.revoked.contains(&cert.fingerprint()) {
            return Err(FabricError::IdentityInvalid(format!(
                "certificate {} is revoked",
                cert.subject().qualified_name()
            )));
        }
        cert.verify(self.ca.root_certificate())
            .map_err(|e| FabricError::IdentityInvalid(e.to_string()))
    }

    /// Number of certificates issued so far.
    pub fn issued_count(&self) -> usize {
        self.issued.len()
    }
}

fn role_tag(role: CertRole) -> &'static str {
    match role {
        CertRole::RootCa => "ca",
        CertRole::Peer => "peer",
        CertRole::Orderer => "orderer",
        CertRole::Client => "client",
    }
}

/// Validates member certificates across many organizations: the per-network
/// registry of MSP roots (and the shape of the config networks exchange).
#[derive(Debug, Clone, Default)]
pub struct MspRegistry {
    // org_id -> root certificate
    roots: HashMap<String, Certificate>,
}

impl MspRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an organization's root certificate.
    pub fn register(&mut self, org_id: impl Into<String>, root: Certificate) {
        self.roots.insert(org_id.into(), root);
    }

    /// The root certificate of `org_id`, if registered.
    pub fn root(&self, org_id: &str) -> Option<&Certificate> {
        self.roots.get(org_id)
    }

    /// All registered organization ids.
    pub fn organizations(&self) -> impl Iterator<Item = &str> {
        self.roots.keys().map(String::as_str)
    }

    /// Validates `cert` against the root of the organization it claims.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::IdentityInvalid`] when the claimed
    /// organization is unknown or the chain does not verify.
    pub fn validate(&self, cert: &Certificate) -> Result<(), FabricError> {
        let org = &cert.subject().organization;
        let root = self.roots.get(org).ok_or_else(|| {
            FabricError::IdentityInvalid(format!("no MSP root registered for org {org:?}"))
        })?;
        cert.verify(root)
            .map_err(|e| FabricError::IdentityInvalid(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msp() -> Msp {
        Msp::new("stl", "seller-org", Group::test_group(), b"seed")
    }

    #[test]
    fn enroll_and_validate() {
        let mut msp = msp();
        let id = msp.enroll("peer0", CertRole::Peer, false);
        assert!(msp.validate(id.certificate()).is_ok());
        assert_eq!(id.organization(), "seller-org");
        assert_eq!(id.qualified_name(), "stl/seller-org/peer0");
    }

    #[test]
    fn enroll_with_encryption_key() {
        let mut msp = msp();
        let id = msp.enroll("client0", CertRole::Client, true);
        assert!(id.decryption_key().is_some());
        assert!(id.certificate().encryption_key().unwrap().is_some());
        let no_enc = msp.enroll("peer0", CertRole::Peer, false);
        assert!(no_enc.decryption_key().is_none());
    }

    #[test]
    fn foreign_cert_rejected() {
        let mut msp_a = msp();
        let mut msp_b = Msp::new("stl", "carrier-org", Group::test_group(), b"seed-b");
        let foreign = msp_b.enroll("peer0", CertRole::Peer, false);
        assert!(msp_a.validate(foreign.certificate()).is_err());
        let _ = msp_a.enroll("peer0", CertRole::Peer, false);
    }

    #[test]
    fn revoked_cert_rejected() {
        let mut msp = msp();
        let id = msp.enroll("peer0", CertRole::Peer, false);
        msp.revoke(&id.certificate().fingerprint());
        let err = msp.validate(id.certificate()).unwrap_err();
        assert!(matches!(err, FabricError::IdentityInvalid(_)));
    }

    #[test]
    fn identities_sign_verifiably() {
        let mut msp = msp();
        let id = msp.enroll("peer0", CertRole::Peer, false);
        let sig = id.sign(b"endorse this");
        let vk = id.certificate().verifying_key().unwrap();
        assert!(vk.verify(b"endorse this", &sig).is_ok());
    }

    #[test]
    fn registry_validates_multiple_orgs() {
        let mut msp_a = Msp::new("stl", "seller-org", Group::test_group(), b"a");
        let mut msp_b = Msp::new("stl", "carrier-org", Group::test_group(), b"b");
        let mut reg = MspRegistry::new();
        reg.register("seller-org", msp_a.root_certificate().clone());
        reg.register("carrier-org", msp_b.root_certificate().clone());
        let ida = msp_a.enroll("p", CertRole::Peer, false);
        let idb = msp_b.enroll("p", CertRole::Peer, false);
        assert!(reg.validate(ida.certificate()).is_ok());
        assert!(reg.validate(idb.certificate()).is_ok());
        assert_eq!(reg.organizations().count(), 2);
    }

    #[test]
    fn registry_rejects_unknown_org() {
        let mut msp = msp();
        let id = msp.enroll("p", CertRole::Peer, false);
        let reg = MspRegistry::new();
        assert!(matches!(
            reg.validate(id.certificate()),
            Err(FabricError::IdentityInvalid(_))
        ));
    }

    #[test]
    fn registry_rejects_cross_org_masquerade() {
        // A carrier-org member must not validate under the seller-org root
        // even if both roots are registered.
        let mut msp_a = Msp::new("stl", "seller-org", Group::test_group(), b"a");
        let mut msp_b = Msp::new("stl", "carrier-org", Group::test_group(), b"b");
        let mut reg = MspRegistry::new();
        // Deliberately register carrier's root under seller's name.
        reg.register("carrier-org", msp_a.root_certificate().clone());
        let idb = msp_b.enroll("p", CertRole::Peer, false);
        assert!(reg.validate(idb.certificate()).is_err());
        let _ = msp_a.enroll("p", CertRole::Peer, false);
    }

    #[test]
    fn issued_count_tracks() {
        let mut msp = msp();
        assert_eq!(msp.issued_count(), 0);
        msp.enroll("a", CertRole::Peer, false);
        msp.enroll("b", CertRole::Client, true);
        assert_eq!(msp.issued_count(), 2);
    }

    #[test]
    fn deterministic_enrollment_keys() {
        // Same org/name/role seeds produce the same keys across MSP
        // instances (reproducible test networks).
        let mut m1 = Msp::new("stl", "seller-org", Group::test_group(), b"x");
        let mut m2 = Msp::new("stl", "seller-org", Group::test_group(), b"x");
        let i1 = m1.enroll("peer0", CertRole::Peer, false);
        let i2 = m2.enroll("peer0", CertRole::Peer, false);
        assert_eq!(
            i1.certificate().sign_key_bytes(),
            i2.certificate().sign_key_bytes()
        );
    }
}
