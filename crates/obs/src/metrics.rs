//! Named counters, gauges and histograms behind one registry.
//!
//! The registry unifies the relay's scattered stat bags (`RelayStats`,
//! `PoolStats`, breaker and group counters) behind a single model that the
//! exporters in [`crate::export`] understand. Handles are cheap `Arc`
//! clones over atomics; observation never takes the registry lock.
//!
//! Histograms use **exponential** bucket bounds (each bound a constant
//! factor above the last) instead of a small fixed array, so tail latency
//! keeps resolution across orders of magnitude, and they track `sum`,
//! `count` and `max` so mean and worst-case are recoverable from exports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing (or scrape-time absolute) counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value. Meant for scrape-time bridging of existing
    /// counter bags (a [`crate::handle::MetricSource`] copies its absolute
    /// totals in), not for hot-path use.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds (inclusive) of each finite bucket, strictly increasing.
    bounds: Vec<u64>,
    /// One cumulative-free count per finite bucket plus one overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// An exponential-bound histogram of `u64` observations (typically
/// nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// A histogram over explicit strictly-increasing inclusive bounds.
    /// Values above the last bound land in an implicit overflow bucket.
    pub fn with_bounds(bounds: Vec<u64>) -> Histogram {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Exponential bounds: `start, start*factor, start*factor^2, ...`
    /// (`count` bounds total, saturating instead of overflowing).
    pub fn exponential(start: u64, factor: u64, count: usize) -> Histogram {
        let mut bounds = Vec::with_capacity(count);
        let mut bound = start.max(1);
        for _ in 0..count {
            bounds.push(bound);
            bound = bound.saturating_mul(factor.max(2));
        }
        bounds.dedup();
        Histogram::with_bounds(bounds)
    }

    /// Default latency histogram: 1µs to ~17s in ×4 steps (13 buckets).
    pub fn latency_nanos() -> Histogram {
        Histogram::exponential(1_000, 4, 13)
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let inner = &self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(inner.bounds.len());
        if let Some(bucket) = inner.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            buckets: inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) counts; last entry is the overflow
    /// bucket above the final bound.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation, or zero with no samples.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile (`q` in `0.0..=1.0`) from the bucket bounds:
    /// returns the smallest bound whose cumulative count covers `q`, the
    /// tracked `max` for the overflow bucket, and zero with no samples.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank.max(1) {
                return self.bounds.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter { help: String, value: Counter },
    Gauge { help: String, value: Gauge },
    Histogram { help: String, value: Histogram },
}

/// The kind of a metric in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Bucketed histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus exposition name for this kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A snapshot value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One metric in a registry snapshot.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Metric name (already a valid Prometheus identifier).
    pub name: String,
    /// Help text for the exposition.
    pub help: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// Point-in-time value.
    pub value: MetricValue,
}

/// A point-in-time copy of a whole registry, name-sorted.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// The snapshotted metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

impl RegistrySnapshot {
    /// The snapshot of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricSnapshot> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The counter value of `name`, if present and a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name).map(|m| &m.value) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value of `name`, if present and a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name).map(|m| &m.value) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram state of `name`, if present and a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name).map(|m| &m.value) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

/// Name of the self-registered counter that counts kind clashes (see
/// [`Registry::counter`]): its presence in an export means some call site
/// re-registered an existing name under a different kind and is recording
/// into a detached handle.
pub const KIND_CLASH_COUNTER: &str = "tdt_obs_metric_kind_clashes_total";

/// Formats a labeled series name, `family{k="v",...}`; with no labels the
/// plain family name is returned. Label values are escaped for the
/// Prometheus exposition (backslash, double quote, newline).
pub fn labeled_name(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let mut out = String::with_capacity(family.len() + 16 * labels.len());
    out.push_str(family);
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a series name into `(family, label block)` where the label
/// block excludes the braces: `a_total{relay="x"}` → `("a_total",
/// Some("relay=\"x\""))`, `a_total` → `("a_total", None)`.
pub fn split_series_name(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((family, rest)) => (family, Some(rest.trim_end_matches('}'))),
        None => (name, None),
    }
}

/// A registry of named metrics. Cloning shares the underlying map.
///
/// The lock guards only registration and snapshotting; handles returned
/// from the accessors touch atomics directly.
///
/// Names may carry a Prometheus label block (built with [`labeled_name`])
/// to keep per-instance series distinct — e.g. two relays bridged into
/// one registry export `tdt_relay_served_total{relay="stl-relay"}` and
/// `{relay="swt-relay"}` instead of overwriting each other.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

/// Bumps the self-registered clash counter and warns (once per registry)
/// that `name` was re-registered under a different kind.
fn note_kind_clash(map: &mut BTreeMap<String, Metric>, name: &str, wanted: &str) {
    let metric = map
        .entry(KIND_CLASH_COUNTER.to_string())
        .or_insert_with(|| Metric::Counter {
            help: "Metric registrations that clashed with an existing name of a \
                   different kind and got a detached handle"
                .to_string(),
            value: Counter::new(),
        });
    if let Metric::Counter { value, .. } = metric {
        value.inc();
        if value.get() == 1 {
            eprintln!(
                "tdt-obs: metric {name:?} re-registered as a {wanted} under an \
                 existing name of a different kind; values recorded on the \
                 returned handle will not be exported"
            );
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn with_map<R>(&self, f: impl FnOnce(&mut BTreeMap<String, Metric>) -> R) -> R {
        let mut map = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut map)
    }

    /// Gets or creates the counter `name`. On a kind clash with an
    /// existing metric, returns a fresh **detached** handle (recorded
    /// values are then invisible to exports) rather than panicking; the
    /// clash increments the self-registered [`KIND_CLASH_COUNTER`] and
    /// warns on stderr once, so typo'd re-registrations are discoverable
    /// at runtime, not only by the golden exposition test.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.with_map(|map| {
            if let Metric::Counter { value, .. } =
                map.entry(name.to_string())
                    .or_insert_with(|| Metric::Counter {
                        help: help.to_string(),
                        value: Counter::new(),
                    })
            {
                return value.clone();
            }
            note_kind_clash(map, name, "counter");
            Counter::new()
        })
    }

    /// Gets or creates the gauge `name` (see [`Registry::counter`] for the
    /// kind-clash contract).
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.with_map(|map| {
            if let Metric::Gauge { value, .. } =
                map.entry(name.to_string())
                    .or_insert_with(|| Metric::Gauge {
                        help: help.to_string(),
                        value: Gauge::new(),
                    })
            {
                return value.clone();
            }
            note_kind_clash(map, name, "gauge");
            Gauge::new()
        })
    }

    /// Gets or creates the histogram `name`, using `make` to build it on
    /// first registration (see [`Registry::counter`] for the kind-clash
    /// contract).
    pub fn histogram(&self, name: &str, help: &str, make: impl FnOnce() -> Histogram) -> Histogram {
        self.with_map(|map| {
            if let Metric::Histogram { value, .. } =
                map.entry(name.to_string())
                    .or_insert_with(|| Metric::Histogram {
                        help: help.to_string(),
                        value: make(),
                    })
            {
                return value.clone();
            }
            note_kind_clash(map, name, "histogram");
            Histogram::with_bounds(Vec::new())
        })
    }

    /// Adopts an externally created histogram handle under `name`, so hot
    /// paths can observe into a histogram they own while exports still see
    /// it. First registration wins; later calls with the same name are
    /// no-ops.
    pub fn register_histogram(&self, name: &str, help: &str, value: &Histogram) {
        self.with_map(|map| {
            map.entry(name.to_string())
                .or_insert_with(|| Metric::Histogram {
                    help: help.to_string(),
                    value: value.clone(),
                });
        });
    }

    /// Adopts an externally created counter handle under `name` (first
    /// registration wins).
    pub fn register_counter(&self, name: &str, help: &str, value: &Counter) {
        self.with_map(|map| {
            map.entry(name.to_string())
                .or_insert_with(|| Metric::Counter {
                    help: help.to_string(),
                    value: value.clone(),
                });
        });
    }

    /// Adopts an externally created gauge handle under `name` (first
    /// registration wins).
    pub fn register_gauge(&self, name: &str, help: &str, value: &Gauge) {
        self.with_map(|map| {
            map.entry(name.to_string())
                .or_insert_with(|| Metric::Gauge {
                    help: help.to_string(),
                    value: value.clone(),
                });
        });
    }

    /// Snapshots every registered metric, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        self.with_map(|map| RegistrySnapshot {
            metrics: map
                .iter()
                .map(|(name, metric)| match metric {
                    Metric::Counter { help, value } => MetricSnapshot {
                        name: name.clone(),
                        help: help.clone(),
                        kind: MetricKind::Counter,
                        value: MetricValue::Counter(value.get()),
                    },
                    Metric::Gauge { help, value } => MetricSnapshot {
                        name: name.clone(),
                        help: help.clone(),
                        kind: MetricKind::Gauge,
                        value: MetricValue::Gauge(value.get()),
                    },
                    Metric::Histogram { help, value } => MetricSnapshot {
                        name: name.clone(),
                        help: help.clone(),
                        kind: MetricKind::Histogram,
                        value: MetricValue::Histogram(value.snapshot()),
                    },
                })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("c_total", "a counter");
        c.inc();
        c.add(4);
        let g = reg.gauge("g", "a gauge");
        g.set(7);
        g.add(-2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c_total"), Some(5));
        assert_eq!(snap.gauge("g"), Some(5));
    }

    #[test]
    fn same_name_shares_storage() {
        let reg = Registry::new();
        reg.counter("shared_total", "h").inc();
        reg.counter("shared_total", "h").inc();
        assert_eq!(reg.snapshot().counter("shared_total"), Some(2));
    }

    #[test]
    fn kind_clash_returns_detached_handle_and_is_counted() {
        let reg = Registry::new();
        reg.counter("mixed", "h").inc();
        let g = reg.gauge("mixed", "h");
        g.set(99);
        // The registered metric is untouched; the gauge was detached and
        // the clash is visible in the export as a self-registered counter.
        let snap = reg.snapshot();
        assert_eq!(snap.counter("mixed"), Some(1));
        assert_eq!(snap.counter(KIND_CLASH_COUNTER), Some(1));
        // A clean registry never exports the clash counter.
        assert!(Registry::new().snapshot().get(KIND_CLASH_COUNTER).is_none());
    }

    #[test]
    fn labeled_name_formats_and_splits() {
        assert_eq!(labeled_name("a_total", &[]), "a_total");
        let name = labeled_name("a_total", &[("relay", "stl"), ("role", "src")]);
        assert_eq!(name, "a_total{relay=\"stl\",role=\"src\"}");
        assert_eq!(
            split_series_name(&name),
            ("a_total", Some("relay=\"stl\",role=\"src\""))
        );
        assert_eq!(split_series_name("plain"), ("plain", None));
        assert_eq!(
            labeled_name("a", &[("k", "q\"\\\n")]),
            "a{k=\"q\\\"\\\\\\n\"}"
        );
    }

    #[test]
    fn labeled_series_stay_distinct() {
        let reg = Registry::new();
        reg.counter(&labeled_name("x_total", &[("relay", "a")]), "h")
            .set(3);
        reg.counter(&labeled_name("x_total", &[("relay", "b")]), "h")
            .set(5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x_total{relay=\"a\"}"), Some(3));
        assert_eq!(snap.counter("x_total{relay=\"b\"}"), Some(5));
    }

    #[test]
    fn histogram_buckets_sum_count_max() {
        let h = Histogram::with_bounds(vec![10, 100, 1000]);
        for v in [5, 50, 500, 5000, 7] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5562);
        assert_eq!(s.max, 5000);
        assert_eq!(s.mean(), 1112);
    }

    #[test]
    fn exponential_bounds_grow_by_factor() {
        let h = Histogram::exponential(1000, 4, 5);
        assert_eq!(h.snapshot().bounds, vec![1000, 4000, 16000, 64000, 256000]);
    }

    #[test]
    fn quantile_reads_bucket_bounds() {
        let h = Histogram::with_bounds(vec![10, 100, 1000]);
        for _ in 0..90 {
            h.observe(5);
        }
        for _ in 0..10 {
            h.observe(700);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 10);
        assert_eq!(s.quantile(0.99), 1000);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn overflow_quantile_reports_max() {
        let h = Histogram::with_bounds(vec![10]);
        h.observe(12345);
        assert_eq!(h.snapshot().quantile(0.99), 12345);
    }

    #[test]
    fn registered_histogram_visible_in_snapshot() {
        let reg = Registry::new();
        let h = Histogram::latency_nanos();
        reg.register_histogram("lat_ns", "latency", &h);
        h.observe(2_000);
        let snap = reg.snapshot();
        let hs = snap.histogram("lat_ns").expect("histogram");
        assert_eq!(hs.count, 1);
        assert_eq!(hs.max, 2_000);
    }
}
