//! Snapshot exporters: Prometheus text exposition and JSON.
//!
//! Both exporters render a [`RegistrySnapshot`]; they never touch live
//! metrics, so a scrape observes one consistent point in time per metric.
//! [`parse_exposition`] is the inverse used by the golden-file CI check:
//! it extracts `(name, type)` pairs and validates the exposition's shape
//! so accidental renames are caught deliberately.

use crate::metrics::{split_series_name, HistogramSnapshot, MetricValue, RegistrySnapshot};
use std::fmt::Write as _;

/// Renders the snapshot in the Prometheus text exposition format
/// (`# HELP` / `# TYPE` comments, `_bucket`/`_sum`/`_count`/`_max`
/// series for histograms, cumulative `le` buckets ending at `+Inf`).
///
/// Series names may embed a label block (`family{relay="stl"}`, built
/// with [`crate::metrics::labeled_name`]): labeled series of one family
/// share a single `# HELP`/`# TYPE` header (the snapshot's name-sorted
/// order keeps them adjacent), and histogram suffixes are spliced as
/// `family_bucket{labels,le="…"}` the way Prometheus expects.
pub fn prometheus_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<(&str, &str)> = None;
    for metric in &snapshot.metrics {
        let (family, labels) = split_series_name(&metric.name);
        let block = labels.map(|l| format!("{{{l}}}")).unwrap_or_default();
        if last_family != Some((family, metric.kind.as_str())) {
            let _ = writeln!(out, "# HELP {} {}", family, escape_help(&metric.help));
            let _ = writeln!(out, "# TYPE {} {}", family, metric.kind.as_str());
            last_family = Some((family, metric.kind.as_str()));
        }
        match &metric.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{family}{block} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{family}{block} {v}");
            }
            MetricValue::Histogram(h) => {
                let le = |bound: &str| match labels {
                    Some(l) => format!("{{{l},le=\"{bound}\"}}"),
                    None => format!("{{le=\"{bound}\"}}"),
                };
                let mut cumulative = 0u64;
                for (i, bound) in h.bounds.iter().enumerate() {
                    cumulative = cumulative.saturating_add(h.buckets.get(i).copied().unwrap_or(0));
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        family,
                        le(&bound.to_string()),
                        cumulative
                    );
                }
                let _ = writeln!(out, "{}_bucket{} {}", family, le("+Inf"), h.count);
                let _ = writeln!(out, "{}_sum{} {}", family, block, h.sum);
                let _ = writeln!(out, "{}_count{} {}", family, block, h.count);
                let _ = writeln!(out, "{}_max{} {}", family, block, h.max);
            }
        }
    }
    out
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_histogram(out: &mut String, h: &HistogramSnapshot) {
    out.push_str("{\"bounds\":[");
    for (i, b) in h.bounds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push_str("],\"buckets\":[");
    for (i, b) in h.buckets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    let _ = write!(
        out,
        "],\"count\":{},\"sum\":{},\"max\":{}}}",
        h.count, h.sum, h.max
    );
}

/// Renders the snapshot as a JSON object:
/// `{"metrics":[{"name":...,"kind":...,"help":...,"value":...},...]}`.
/// Histogram values are objects with `bounds`/`buckets`/`count`/`sum`/`max`.
pub fn json_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, metric) in snapshot.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"kind\":\"{}\",\"help\":\"{}\",\"value\":",
            escape_json(&metric.name),
            metric.kind.as_str(),
            escape_json(&metric.help)
        );
        match &metric.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Histogram(h) => json_histogram(&mut out, h),
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Parses a Prometheus text exposition into `(metric name, type)` pairs,
/// in order of appearance.
///
/// Validates the shape strictly enough for CI: every `# TYPE` names a
/// known kind, every sample line belongs to the most recent `# TYPE`
/// family (allowing `_bucket`/`_sum`/`_count`/`_max` suffixes for
/// histograms) and carries a numeric value.
///
/// # Errors
///
/// Returns a line-numbered message on the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut families = Vec::new();
    let mut current: Option<(String, String)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {n}: TYPE without a metric name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {n}: TYPE without a kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown metric kind {kind:?}"));
            }
            families.push((name.to_string(), kind.to_string()));
            current = Some((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // A sample line: `name[{labels}] value`.
        let series = line
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("line {n}: empty sample"))?;
        let value = line
            .split_whitespace()
            .nth(1)
            .ok_or_else(|| format!("line {n}: sample without a value"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("line {n}: non-numeric sample value {value:?}"));
        }
        let series_name = series.split('{').next().unwrap_or(series);
        let (family, kind) = current
            .as_ref()
            .ok_or_else(|| format!("line {n}: sample before any # TYPE"))?;
        let valid = if kind == "histogram" {
            series_name
                .strip_prefix(family.as_str())
                .map(|suffix| matches!(suffix, "_bucket" | "_sum" | "_count" | "_max"))
                .unwrap_or(false)
        } else {
            series_name == family
        };
        if !valid {
            return Err(format!(
                "line {n}: sample {series_name:?} does not match family {family:?}"
            ));
        }
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Histogram, Registry};

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("tdt_demo_total", "demo counter").add(3);
        reg.gauge("tdt_demo_depth", "demo gauge").set(-2);
        let h = Histogram::with_bounds(vec![10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        reg.register_histogram("tdt_demo_ns", "demo histogram", &h);
        reg
    }

    #[test]
    fn prometheus_text_shape() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# TYPE tdt_demo_total counter"));
        assert!(text.contains("tdt_demo_total 3"));
        assert!(text.contains("# TYPE tdt_demo_depth gauge"));
        assert!(text.contains("tdt_demo_depth -2"));
        assert!(text.contains("tdt_demo_ns_bucket{le=\"10\"} 1"));
        assert!(text.contains("tdt_demo_ns_bucket{le=\"100\"} 2"));
        assert!(text.contains("tdt_demo_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("tdt_demo_ns_sum 555"));
        assert!(text.contains("tdt_demo_ns_count 3"));
        assert!(text.contains("tdt_demo_ns_max 500"));
    }

    #[test]
    fn exposition_parses_back() {
        let text = prometheus_text(&sample_registry().snapshot());
        let families = parse_exposition(&text).expect("parse");
        assert_eq!(
            families,
            vec![
                ("tdt_demo_depth".to_string(), "gauge".to_string()),
                ("tdt_demo_ns".to_string(), "histogram".to_string()),
                ("tdt_demo_total".to_string(), "counter".to_string()),
            ]
        );
    }

    #[test]
    fn labeled_series_share_one_family_header() {
        let reg = Registry::new();
        use crate::metrics::labeled_name;
        reg.counter(&labeled_name("tdt_l_total", &[("relay", "a")]), "h")
            .set(1);
        reg.counter(&labeled_name("tdt_l_total", &[("relay", "b")]), "h")
            .set(2);
        let h = Histogram::with_bounds(vec![10]);
        h.observe(5);
        h.observe(50);
        reg.register_histogram(&labeled_name("tdt_l_ns", &[("relay", "a")]), "h", &h);
        let text = prometheus_text(&reg.snapshot());
        assert_eq!(text.matches("# TYPE tdt_l_total counter").count(), 1);
        assert!(text.contains("tdt_l_total{relay=\"a\"} 1"));
        assert!(text.contains("tdt_l_total{relay=\"b\"} 2"));
        assert!(text.contains("tdt_l_ns_bucket{relay=\"a\",le=\"10\"} 1"));
        assert!(text.contains("tdt_l_ns_bucket{relay=\"a\",le=\"+Inf\"} 2"));
        assert!(text.contains("tdt_l_ns_sum{relay=\"a\"} 55"));
        assert!(text.contains("tdt_l_ns_count{relay=\"a\"} 2"));
        assert!(text.contains("tdt_l_ns_max{relay=\"a\"} 50"));
        let families = parse_exposition(&text).expect("labeled exposition parses");
        assert_eq!(
            families,
            vec![
                ("tdt_l_ns".to_string(), "histogram".to_string()),
                ("tdt_l_total".to_string(), "counter".to_string()),
            ]
        );
    }

    #[test]
    fn parse_rejects_mismatched_sample() {
        let bad = "# TYPE a counter\nb 1\n";
        assert!(parse_exposition(bad).is_err());
    }

    #[test]
    fn parse_rejects_non_numeric_value() {
        let bad = "# TYPE a counter\na x\n";
        assert!(parse_exposition(bad).is_err());
    }

    #[test]
    fn parse_rejects_unknown_kind() {
        let bad = "# TYPE a summary\na 1\n";
        assert!(parse_exposition(bad).is_err());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = json_text(&sample_registry().snapshot());
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"tdt_demo_total\""));
        assert!(json.contains("\"kind\":\"histogram\""));
        assert!(json.contains("\"max\":500"));
        // Balanced braces/brackets (no string values contain either).
        assert_eq!(json.matches('{').count(), json.matches('}').count(),);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_quotes() {
        let reg = Registry::new();
        reg.counter("c", "say \"hi\"\n").inc();
        let json = json_text(&reg.snapshot());
        assert!(json.contains("say \\\"hi\\\"\\n"));
    }
}
