//! The in-process observability handle.
//!
//! An [`ObsHandle`] owns a [`Registry`] plus a list of [`MetricSource`]s
//! — bridges that, at scrape time, copy an existing component's counters
//! (relay stats, pool stats, breaker, relay group) into registry metrics.
//! Scrape-time bridging keeps the hot paths on their existing atomics and
//! still presents one unified export.

use crate::export;
use crate::metrics::{Registry, RegistrySnapshot};
use std::sync::{Arc, Mutex, PoisonError};

/// A component that can publish its current state into a [`Registry`].
///
/// Implementations run on every scrape; they should only read their own
/// atomics and `set` absolute values on registry handles.
pub trait MetricSource: Send + Sync {
    /// Copies current values into `registry`.
    fn collect(&self, registry: &Registry);
}

/// Owner of the unified registry and its scrape-time sources.
#[derive(Default)]
pub struct ObsHandle {
    registry: Registry,
    sources: Mutex<Vec<Arc<dyn MetricSource>>>,
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sources = self
            .sources
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len();
        f.debug_struct("ObsHandle")
            .field("sources", &sources)
            .finish()
    }
}

impl ObsHandle {
    /// A handle with an empty registry and no sources.
    pub fn new() -> ObsHandle {
        ObsHandle::default()
    }

    /// The underlying registry (clone to register metrics directly).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Adds a scrape-time source.
    pub fn add_source(&self, source: Arc<dyn MetricSource>) {
        self.sources
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(source);
    }

    /// Runs every source, then snapshots the registry.
    pub fn scrape(&self) -> RegistrySnapshot {
        let sources: Vec<Arc<dyn MetricSource>> = self
            .sources
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(Arc::clone)
            .collect();
        for source in sources {
            source.collect(&self.registry);
        }
        self.registry.snapshot()
    }

    /// Scrapes and renders the Prometheus text exposition.
    pub fn prometheus_text(&self) -> String {
        export::prometheus_text(&self.scrape())
    }

    /// Scrapes and renders the JSON snapshot.
    pub fn json_text(&self) -> String {
        export::json_text(&self.scrape())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FixedSource;

    impl MetricSource for FixedSource {
        fn collect(&self, registry: &Registry) {
            registry.counter("bridged_total", "bridged").set(42);
        }
    }

    #[test]
    fn scrape_runs_sources() {
        let handle = ObsHandle::new();
        handle.add_source(Arc::new(FixedSource));
        let snap = handle.scrape();
        assert_eq!(snap.counter("bridged_total"), Some(42));
        assert!(handle.prometheus_text().contains("bridged_total 42"));
        assert!(handle.json_text().contains("\"bridged_total\""));
    }

    #[test]
    fn direct_registry_metrics_survive_scrape() {
        let handle = ObsHandle::new();
        handle.registry().counter("direct_total", "d").add(7);
        assert_eq!(handle.scrape().counter("direct_total"), Some(7));
    }
}
