//! Scoped sampling profiler: explicit scope tags, a wall-clock sampler
//! thread, and flamegraph-compatible folded-stack export — no stack
//! unwinding, no frame pointers, no external dependencies.
//!
//! Hot paths mark themselves with [`crate::profile_scope!`], which
//! pushes an interned tag id onto a per-thread scope stack (two relaxed
//! atomic stores) and pops it on scope exit. A sampler thread started
//! with [`start`] (or the one-shot [`sample_for`]) walks every
//! registered thread's stack at a configurable frequency and
//! accumulates each observed tag path into a weighted tree. The result
//! renders as folded stacks (`relay.dispatch;crypto.modexp 42`), the
//! input format of every flamegraph tool.
//!
//! ## Sampler safety argument
//!
//! The sampler reads other threads' stacks without stopping them. All
//! shared state is atomic: `depth` is published with a release store
//! after the tag word is written, and read with acquire, so a sampled
//! prefix `tags[..depth]` always contains fully written tag ids. A
//! concurrent push/pop between the depth read and the tag reads can
//! misattribute *that one sample* to a sibling scope — an inherent,
//! bounded sampling error (at most one frame per sample), never a torn
//! id or undefined behavior. Tag ids resolve through an intern table
//! that only grows, so a sampled id is always decodable.
//!
//! The writer cost is two relaxed/release stores per scope entry and
//! one per exit; the sampler's cost is proportional to sampling
//! frequency, not workload, so profiling overhead at the default 19 Hz
//! is far below the 3% budget (measured in EXPERIMENTS.md E21).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use crate::flight::thread_ordinal;

/// Deepest scope nesting the stack tracks; deeper scopes still count
/// toward depth but are not attributed (the sampler clamps).
pub const MAX_DEPTH: usize = 32;

/// Default sampling frequency (prime, to avoid phase-locking with
/// periodic workloads).
pub const DEFAULT_HZ: u64 = 19;

// ---------------------------------------------------------------------------
// Tag interning
// ---------------------------------------------------------------------------

/// A statically declared scope tag. Declare one per call site (the
/// [`crate::profile_scope!`] macro does this) so the intern lookup is
/// paid once per site, after which entering the scope is a single
/// relaxed load plus two stores.
pub struct ProfileTag {
    name: &'static str,
    id: AtomicU32,
}

impl ProfileTag {
    /// Declares a tag. `const`, so it can live in a `static`.
    pub const fn new(name: &'static str) -> ProfileTag {
        ProfileTag {
            name,
            id: AtomicU32::new(0),
        }
    }

    /// The tag's interned id (1-based), interning on first use.
    pub fn id(&'static self) -> u32 {
        // lint:allow(sync: "id is write-once, zero to interned, and the value itself is the entire payload; name resolution goes through the tag_names mutex, not through this word")
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        self.intern()
    }

    #[cold]
    fn intern(&'static self) -> u32 {
        let mut names = tag_names().lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the lock: another thread may have won the race.
        // lint:allow(sync: "the tag_names mutex held here serializes the load/store pair; no lock-free writer exists")
        let again = self.id.load(Ordering::Relaxed);
        if again != 0 {
            return again;
        }
        names.push(self.name);
        let id = names.len() as u32;
        // lint:allow(sync: "store under the same mutex as the read above; racing readers that miss it fall into the interning slow path and re-check under the lock")
        self.id.store(id, Ordering::Relaxed);
        id
    }
}

fn tag_names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Resolves an interned tag id back to its name (`None` for ids never
/// interned — possible only for a zero or corrupted id).
pub fn tag_name(id: u32) -> Option<&'static str> {
    if id == 0 {
        return None;
    }
    tag_names()
        .lock()
        .ok()
        .and_then(|names| names.get(id as usize - 1).copied())
}

// ---------------------------------------------------------------------------
// Per-thread scope stacks
// ---------------------------------------------------------------------------

/// One thread's scope-tag stack, readable by the sampler.
struct ScopeStack {
    #[allow(dead_code)] // kept for dump tooling; the sampler aggregates across threads
    thread: u32,
    depth: AtomicUsize,
    tags: [AtomicU32; MAX_DEPTH],
}

impl ScopeStack {
    fn new(thread: u32) -> ScopeStack {
        ScopeStack {
            thread,
            depth: AtomicUsize::new(0),
            tags: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }
}

fn stacks() -> &'static Mutex<Vec<Weak<ScopeStack>>> {
    static STACKS: OnceLock<Mutex<Vec<Weak<ScopeStack>>>> = OnceLock::new();
    STACKS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_STACK: Arc<ScopeStack> = {
        let stack = Arc::new(ScopeStack::new(thread_ordinal()));
        if let Ok(mut stacks) = stacks().lock() {
            stacks.retain(|w| w.strong_count() > 0);
            stacks.push(Arc::downgrade(&stack));
        }
        stack
    };
}

/// Pops the scope on drop. Holding the `Arc` keeps the stack readable
/// even while the owning thread is tearing down.
pub struct ScopeGuard {
    stack: Option<Arc<ScopeStack>>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(stack) = &self.stack {
            // lint:allow(sync: "single-writer stack: only the owning thread pushes/pops depth; the sampler is a pure reader that tolerates a one-frame stale view")
            let depth = stack.depth.load(Ordering::Relaxed);
            let popped = depth.saturating_sub(1);
            // lint:allow(sync: "single-writer pop, see above; the Release pairs with the sampler's Acquire so tags above the new depth are never misread as live")
            stack.depth.store(popped, Ordering::Release);
        }
    }
}

/// Enters a profiling scope: pushes the tag onto the calling thread's
/// stack until the returned guard drops. Prefer the
/// [`crate::profile_scope!`] macro, which declares the static tag for
/// you.
pub fn enter(tag: &'static ProfileTag) -> ScopeGuard {
    let id = tag.id();
    let stack = match LOCAL_STACK.try_with(Arc::clone) {
        Ok(stack) => stack,
        Err(_) => return ScopeGuard { stack: None }, // thread teardown
    };
    // lint:allow(sync: "single-writer stack: only the owning thread pushes/pops depth, so the load/store pair cannot lose an update")
    let depth = stack.depth.load(Ordering::Relaxed);
    if depth < MAX_DEPTH {
        if let Some(tag_word) = stack.tags.get(depth) {
            tag_word.store(id, Ordering::Relaxed);
        }
    }
    // Release-publish the new depth *after* the tag word, so a sampler
    // that observes the depth also observes the tag.
    // lint:allow(sync: "single-writer push, see above; Release pairs with the sampler's Acquire on depth")
    stack.depth.store(depth + 1, Ordering::Release);
    ScopeGuard { stack: Some(stack) }
}

/// Marks a profiling scope until the end of the enclosing block.
///
/// ```
/// fn hot_path() {
///     tdt_obs::profile_scope!("relay.dispatch");
///     // … work sampled under "relay.dispatch" …
/// }
/// ```
#[macro_export]
macro_rules! profile_scope {
    ($name:literal) => {
        static __TDT_PROFILE_TAG: $crate::profile::ProfileTag =
            $crate::profile::ProfileTag::new($name);
        let _tdt_profile_guard = $crate::profile::enter(&__TDT_PROFILE_TAG);
    };
}

/// Registered scope stacks currently alive.
pub fn live_stacks() -> u64 {
    stacks()
        .lock()
        .map(|stacks| stacks.iter().filter(|w| w.strong_count() > 0).count() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Accumulation + folded export
// ---------------------------------------------------------------------------

/// Total stack observations taken by any sampler since process start.
static SAMPLES_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Total stack observations taken by any sampler since process start
/// (exported as `tdt_obs_profile_samples_total`).
pub fn samples_total() -> u64 {
    SAMPLES_TOTAL.load(Ordering::Relaxed)
}

/// Aggregates observed tag paths into a weighted tree (keyed by the
/// full path). Decoupled from the sampler so tests can drive it with
/// synthetic observations.
#[derive(Debug, Default)]
pub struct Accumulator {
    weights: BTreeMap<Vec<u32>, u64>,
    samples: u64,
    idle: u64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Accumulator {
        Accumulator::default()
    }

    /// Records one observation of a non-empty tag path.
    pub fn observe(&mut self, path: &[u32]) {
        if path.is_empty() {
            self.idle += 1;
            return;
        }
        *self.weights.entry(path.to_vec()).or_insert(0) += 1;
        self.samples += 1;
    }

    /// Finishes into a report, resolving tag ids to names.
    pub fn finish(self) -> ProfileReport {
        let mut folded = BTreeMap::new();
        for (path, weight) in self.weights {
            let line = path
                .iter()
                .map(|&id| tag_name(id).unwrap_or("?"))
                .collect::<Vec<_>>()
                .join(";");
            *folded.entry(line).or_insert(0) += weight;
        }
        ProfileReport {
            samples: self.samples,
            idle: self.idle,
            folded,
        }
    }
}

/// A finished profile: weighted scope paths plus sample accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Observations that caught at least one open scope. Equals the sum
    /// of all folded weights.
    pub samples: u64,
    /// Observations of threads with no open scope.
    pub idle: u64,
    /// `path → weight`, path rendered as `tag;tag;tag`.
    pub folded: BTreeMap<String, u64>,
}

impl ProfileReport {
    /// Renders the report as folded stacks, one `path weight` line per
    /// path — the input format of flamegraph tools.
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for (path, weight) in &self.folded {
            out.push_str(path);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

/// Parses folded-stack text back into `(path frames, weight)` rows.
///
/// # Errors
///
/// A line-numbered message for a line without a weight, a non-numeric
/// weight, or an empty frame.
pub fn parse_folded(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        let (path, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {n}: no weight separator"))?;
        let weight: u64 = weight
            .parse()
            .map_err(|_| format!("line {n}: non-numeric weight {weight:?}"))?;
        let frames: Vec<String> = path.split(';').map(str::to_string).collect();
        if frames.iter().any(String::is_empty) {
            return Err(format!("line {n}: empty frame in {path:?}"));
        }
        rows.push((frames, weight));
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

/// Takes one observation of every registered thread's stack.
fn walk_once(acc: &mut Accumulator) {
    let live: Vec<Arc<ScopeStack>> = stacks()
        .lock()
        .map(|stacks| stacks.iter().filter_map(|w| w.upgrade()).collect())
        .unwrap_or_default();
    let mut path = Vec::with_capacity(MAX_DEPTH);
    for stack in live {
        let depth = stack.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        path.clear();
        for slot in stack.tags.iter().take(depth) {
            let id = slot.load(Ordering::Relaxed);
            if id == 0 {
                break; // racing push: attribute the stable prefix only
            }
            path.push(id);
        }
        acc.observe(&path);
        SAMPLES_TOTAL.fetch_add(1, Ordering::Relaxed);
    }
}

/// A running sampler; stop it to collect the report.
pub struct ProfilerHandle {
    stop: Arc<AtomicBool>,
    /// `None` when the sampler thread failed to spawn: stopping then
    /// yields an empty report instead of panicking.
    join: Option<std::thread::JoinHandle<Accumulator>>,
}

impl ProfilerHandle {
    /// Stops the sampler thread and returns the finished report (empty
    /// if the sampler thread could not be spawned or panicked).
    pub fn stop(self) -> ProfileReport {
        self.stop.store(true, Ordering::Relaxed);
        match self.join.map(std::thread::JoinHandle::join) {
            Some(Ok(acc)) => acc.finish(),
            Some(Err(_)) | None => Accumulator::new().finish(),
        }
    }
}

/// Starts a sampler thread at `hz` observations per second per thread
/// (clamped to 1..=1000).
pub fn start(hz: u64) -> ProfilerHandle {
    let hz = hz.clamp(1, 1000);
    let period = Duration::from_nanos(1_000_000_000 / hz);
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("tdt-profiler".into())
        .spawn(move || {
            let mut acc = Accumulator::new();
            let mut next = Instant::now() + period;
            while !stop_flag.load(Ordering::Relaxed) {
                walk_once(&mut acc);
                let now = Instant::now();
                if next > now {
                    std::thread::sleep(next - now);
                }
                next += period;
                // If we fell behind (scheduler hiccup), skip ahead
                // rather than bursting to catch up.
                if next < Instant::now() {
                    next = Instant::now() + period;
                }
            }
            acc
        })
        .ok();
    ProfilerHandle { stop, join }
}

/// Samples for `duration` at `hz` and returns the report. Blocks the
/// calling thread (the sampling happens on a dedicated thread).
pub fn sample_for(duration: Duration, hz: u64) -> ProfileReport {
    let handle = start(hz);
    std::thread::sleep(duration);
    handle.stop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_intern_once() {
        static TAG: ProfileTag = ProfileTag::new("test.intern");
        let a = TAG.id();
        let b = TAG.id();
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_eq!(tag_name(a), Some("test.intern"));
        assert_eq!(tag_name(0), None);
    }

    #[test]
    fn scope_guard_pushes_and_pops() {
        static OUTER: ProfileTag = ProfileTag::new("test.outer");
        static INNER: ProfileTag = ProfileTag::new("test.inner");
        let base = LOCAL_STACK.with(|s| s.depth.load(Ordering::Relaxed));
        {
            let _o = enter(&OUTER);
            assert_eq!(
                LOCAL_STACK.with(|s| s.depth.load(Ordering::Relaxed)),
                base + 1
            );
            {
                let _i = enter(&INNER);
                assert_eq!(
                    LOCAL_STACK.with(|s| s.depth.load(Ordering::Relaxed)),
                    base + 2
                );
            }
            assert_eq!(
                LOCAL_STACK.with(|s| s.depth.load(Ordering::Relaxed)),
                base + 1
            );
        }
        assert_eq!(LOCAL_STACK.with(|s| s.depth.load(Ordering::Relaxed)), base);
    }

    #[test]
    fn sampler_sees_a_busy_scope() {
        let stop = Arc::new(AtomicBool::new(false));
        let worker_stop = Arc::clone(&stop);
        let worker = std::thread::spawn(move || {
            profile_scope!("test.busy_loop");
            while !worker_stop.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        });
        let report = sample_for(Duration::from_millis(300), 97);
        stop.store(true, Ordering::Relaxed);
        worker.join().unwrap();
        let busy: u64 = report
            .folded
            .iter()
            .filter(|(path, _)| path.contains("test.busy_loop"))
            .map(|(_, w)| *w)
            .sum();
        assert!(busy > 0, "sampler must observe the busy scope: {report:?}");
        let total: u64 = report.folded.values().sum();
        assert_eq!(total, report.samples, "weights sum to sample count");
    }

    #[test]
    fn folded_text_parses_back() {
        let mut acc = Accumulator::new();
        static A: ProfileTag = ProfileTag::new("fold.a");
        static B: ProfileTag = ProfileTag::new("fold.b");
        let (a, b) = (A.id(), B.id());
        acc.observe(&[a]);
        acc.observe(&[a, b]);
        acc.observe(&[a, b]);
        acc.observe(&[]);
        let report = acc.finish();
        assert_eq!(report.samples, 3);
        assert_eq!(report.idle, 1);
        let text = report.folded_text();
        let rows = parse_folded(&text).expect("parse folded");
        let total: u64 = rows.iter().map(|(_, w)| w).sum();
        assert_eq!(total, report.samples);
        assert!(rows
            .iter()
            .any(|(frames, w)| frames == &vec!["fold.a".to_string(), "fold.b".into()] && *w == 2));
    }

    #[test]
    fn parse_folded_rejects_malformed() {
        assert!(parse_folded("noweight\n").is_err());
        assert!(parse_folded("a;b notanumber\n").is_err());
        assert!(parse_folded("a;;b 3\n").is_err());
        assert!(parse_folded("").unwrap().is_empty());
    }
}
