//! Trace contexts and thread-local propagation.
//!
//! A [`TraceContext`] names one position in a distributed span tree: the
//! 128-bit trace id (`trace_hi`/`trace_lo`) identifies the whole tree, the
//! 64-bit `span_id` the current node, and `parent_span_id` its parent. The
//! context travels two ways:
//!
//! * **in-process** via a thread-local slot ([`TraceContext::install`] /
//!   [`TraceContext::current`]), restored on guard drop so nesting works;
//! * **on the wire** as a zero-elided optional field of the relay
//!   envelope, so legacy frames without tracing stay byte-identical.
//!
//! The all-zero context is "unset" and makes every span inert; `sampled`
//! is a head-based decision made once at the root and inherited by every
//! child. Production roots ([`TraceContext::root_sampled`]) consult a
//! global ratio ([`set_sample_ratio`], or the `TDT_TRACE_SAMPLE_RATE`
//! environment variable, default 1.0) so operators can turn per-query
//! recording down under heavy traffic; [`TraceContext::root`] is the
//! always-sampled variant for tests and demos.

use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// The position of one span within a distributed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceContext {
    /// High 64 bits of the 128-bit trace id (zero when unset).
    pub trace_hi: u64,
    /// Low 64 bits of the 128-bit trace id (zero when unset).
    pub trace_lo: u64,
    /// Id of the span this context currently names.
    pub span_id: u64,
    /// Id of the parent span (zero for a root span).
    pub parent_span_id: u64,
    /// Head-based sampling decision, made at the root and inherited.
    pub sampled: bool,
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// Weyl-sequence step used to decorrelate consecutive ids.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

static SEQ: AtomicU64 = AtomicU64::new(GOLDEN);

/// Sampling probabilities are stored in parts-per-million.
const PPM_SCALE: u64 = 1_000_000;
/// Sentinel meaning "not yet initialised from the environment".
const PPM_UNSET: u64 = u64::MAX;

/// Global head-sampling ratio used by [`TraceContext::root_sampled`],
/// initialised lazily from `TDT_TRACE_SAMPLE_RATE` (a float in `0..=1`)
/// and defaulting to 1.0 (sample everything) when unset or malformed.
static SAMPLE_PPM: AtomicU64 = AtomicU64::new(PPM_UNSET);

fn ratio_to_ppm(ratio: f64) -> u64 {
    if !ratio.is_finite() {
        return PPM_SCALE;
    }
    (ratio.clamp(0.0, 1.0) * PPM_SCALE as f64).round() as u64
}

fn sample_ppm() -> u64 {
    // lint:allow(sync: "freestanding config word: the ppm value is the entire payload, no other data is published through it")
    match SAMPLE_PPM.load(Ordering::Relaxed) {
        PPM_UNSET => {
            let ppm = std::env::var("TDT_TRACE_SAMPLE_RATE")
                .ok()
                .and_then(|v| v.trim().parse::<f64>().ok())
                .map(ratio_to_ppm)
                .unwrap_or(PPM_SCALE);
            // First initialiser wins so concurrent callers agree.
            // lint:allow(sync: "CAS decides only which identical-meaning ppm wins; losers adopt the stored value")
            match SAMPLE_PPM.compare_exchange(PPM_UNSET, ppm, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => ppm,
                Err(current) => current,
            }
        }
        ppm => ppm,
    }
}

/// Sets the global head-sampling ratio (clamped to `0..=1`) consulted by
/// [`TraceContext::root_sampled`]. Overrides `TDT_TRACE_SAMPLE_RATE`.
pub fn set_sample_ratio(ratio: f64) {
    // lint:allow(sync: "samplers may apply the new ratio a beat late; no dependent data rides on the flip")
    SAMPLE_PPM.store(ratio_to_ppm(ratio), Ordering::Relaxed);
}

/// The current global head-sampling ratio in `0..=1`.
pub fn sample_ratio() -> f64 {
    sample_ppm() as f64 / PPM_SCALE as f64
}

/// SplitMix64 finalizer — a cheap, well-mixed 64-bit permutation.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fresh nonzero id mixed from a global counter, the monotonic clock and
/// the current thread id. Not cryptographic — collision resistance across
/// one process run is all tracing needs.
fn fresh_id() -> u64 {
    loop {
        let step = SEQ.fetch_add(GOLDEN, Ordering::Relaxed);
        let mut hasher = DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        let id = mix64(step ^ crate::clock::now_nanos().rotate_left(17) ^ hasher.finish());
        if id != 0 {
            return id;
        }
    }
}

impl TraceContext {
    /// A fresh sampled root context: new 128-bit trace id, new span id,
    /// no parent.
    pub fn root() -> TraceContext {
        TraceContext {
            trace_hi: fresh_id(),
            trace_lo: fresh_id(),
            span_id: fresh_id(),
            parent_span_id: 0,
            sampled: true,
        }
    }

    /// A fresh root context whose sampling decision comes from the global
    /// ratio ([`set_sample_ratio`] / `TDT_TRACE_SAMPLE_RATE`): the
    /// head-based decision production query roots should make, so heavy
    /// traffic can turn recording down without touching call sites.
    /// [`TraceContext::root`] stays always-sampled for tests and demos.
    pub fn root_sampled() -> TraceContext {
        TraceContext::root_with_rate(sample_ratio())
    }

    /// A fresh root context sampled with probability `ratio` (clamped to
    /// `0..=1`). The decision is a deterministic function of the minted
    /// trace id, so a given trace is all-or-nothing across hops.
    pub fn root_with_rate(ratio: f64) -> TraceContext {
        let mut ctx = TraceContext::root();
        let ppm = ratio_to_ppm(ratio);
        ctx.sampled = ppm >= PPM_SCALE || ctx.trace_lo % PPM_SCALE < ppm;
        ctx
    }

    /// A fresh root context whose spans will *not* be recorded. Useful to
    /// exercise the propagation plumbing at zero recording cost.
    pub fn unsampled_root() -> TraceContext {
        TraceContext {
            sampled: false,
            ..TraceContext::root()
        }
    }

    /// The all-zero "no tracing" context. Spans started from it are inert.
    pub fn unset() -> TraceContext {
        TraceContext::default()
    }

    /// True when this is the all-zero context (no trace in progress).
    pub fn is_unset(&self) -> bool {
        self.trace_hi == 0 && self.trace_lo == 0
    }

    /// True when spans under this context should actually be recorded.
    pub fn is_recording(&self) -> bool {
        self.sampled && !self.is_unset()
    }

    /// A child context: same trace, fresh span id, parent = this span.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_hi: self.trace_hi,
            trace_lo: self.trace_lo,
            span_id: fresh_id(),
            parent_span_id: self.span_id,
            sampled: self.sampled,
        }
    }

    /// The context installed on this thread, if any.
    pub fn current() -> Option<TraceContext> {
        CURRENT.with(|slot| slot.get())
    }

    /// Installs this context on the current thread, returning a guard that
    /// restores the previous context when dropped. Unset contexts clear
    /// the slot instead, so stale contexts cannot leak across requests.
    pub fn install(self) -> ContextGuard {
        let next = if self.is_unset() { None } else { Some(self) };
        let prev = CURRENT.with(|slot| slot.replace(next));
        ContextGuard { prev, armed: true }
    }
}

/// Restores the previously installed context on drop.
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<TraceContext>,
    armed: bool,
}

impl ContextGuard {
    /// A guard that changed nothing and will restore nothing.
    pub fn noop() -> ContextGuard {
        ContextGuard {
            prev: None,
            armed: false,
        }
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.armed {
            let prev = self.prev.take();
            CURRENT.with(|slot| slot.set(prev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_ids_nonzero_and_distinct() {
        let a = TraceContext::root();
        let b = TraceContext::root();
        assert!(a.is_recording());
        assert_ne!((a.trace_hi, a.trace_lo), (b.trace_hi, b.trace_lo));
        assert_ne!(a.span_id, b.span_id);
        assert_eq!(a.parent_span_id, 0);
    }

    #[test]
    fn child_keeps_trace_and_links_parent() {
        let root = TraceContext::root();
        let child = root.child();
        assert_eq!(child.trace_hi, root.trace_hi);
        assert_eq!(child.trace_lo, root.trace_lo);
        assert_eq!(child.parent_span_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
        assert!(child.sampled);
    }

    #[test]
    fn install_nests_and_restores() {
        assert!(TraceContext::current().is_none());
        let outer = TraceContext::root();
        {
            let _g1 = outer.install();
            assert_eq!(TraceContext::current(), Some(outer));
            let inner = outer.child();
            {
                let _g2 = inner.install();
                assert_eq!(TraceContext::current(), Some(inner));
            }
            assert_eq!(TraceContext::current(), Some(outer));
        }
        assert!(TraceContext::current().is_none());
    }

    #[test]
    fn unset_install_clears_slot() {
        let outer = TraceContext::root();
        let _g1 = outer.install();
        {
            let _g2 = TraceContext::unset().install();
            assert!(TraceContext::current().is_none());
        }
        assert_eq!(TraceContext::current(), Some(outer));
    }

    #[test]
    fn root_with_rate_extremes() {
        for _ in 0..64 {
            assert!(TraceContext::root_with_rate(1.0).is_recording());
            assert!(!TraceContext::root_with_rate(0.0).is_recording());
        }
        // An unsampled root still propagates: ids exist, children inherit
        // the negative decision.
        let ctx = TraceContext::root_with_rate(0.0);
        assert!(!ctx.is_unset());
        assert!(!ctx.child().is_recording());
    }

    #[test]
    fn sample_ratio_set_get_and_clamp() {
        let before = sample_ratio();
        set_sample_ratio(0.25);
        assert!((sample_ratio() - 0.25).abs() < 1e-9);
        set_sample_ratio(7.0);
        assert!((sample_ratio() - 1.0).abs() < 1e-9);
        set_sample_ratio(before);
    }

    #[test]
    fn ids_distinct_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| (0..64).map(|_| fresh_id()).collect::<Vec<_>>()))
            .collect();
        let mut all: Vec<u64> = Vec::new();
        for h in handles {
            all.extend(h.join().expect("thread"));
        }
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }
}
