//! Always-on flight recorder: lock-free per-thread rings of compact
//! structured events, drained on demand into a CRC-framed incident dump.
//!
//! Every interesting decision on the hot path — span opens/closes,
//! retries, hedges, breaker transitions, admission sheds, chaos faults,
//! WAL appends, recovery phases, SLO breaches — drops one fixed-size
//! event into the calling thread's ring via [`record`]. Recording is
//! wait-free for the writer: a global sequence number is claimed with
//! one `fetch_add` and the event is published into a per-slot seqlock
//! (five payload words guarded by a version counter), so the hot path
//! never takes a lock and never allocates.
//!
//! A drain ([`snapshot`]) walks every registered ring plus the orphan
//! buffer (events flushed when a thread exits), discards torn slots
//! (odd or changed version), and sorts by the global sequence number —
//! a causally consistent total order because the sequence is claimed
//! before the event is written. [`dump`] renders that snapshot into a
//! self-describing binary file in the `ledger::storage::codec` idiom:
//! magic + big-endian fields + a CRC32 trailer, rejecting truncation
//! and corruption on decode. Dumps fire on demand (the relay admin
//! endpoint's `GET /debug/flightrec`), on SLO breach
//! ([`crate::slo::Slo`]), or — when armed via [`arm_error_dump`] — when
//! a span closes with error status.
//!
//! ## Tearing argument
//!
//! A slot is six `AtomicU64` words: a version plus five payload words.
//! The owning thread bumps the version to odd (relaxed), publishes the
//! payload with release stores, then bumps the version to even with a
//! release store. A drainer reads the version with acquire, the payload
//! with acquire, then the version again: an odd or changed version
//! means the writer was mid-publish and the slot is skipped. All
//! accesses are atomic, so a torn read is a *skipped event*, never
//! undefined behavior. The release payload stores order the odd
//! version store before any payload word a reader can observe, which
//! closes the classic seqlock store-reorder window without fences.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::clock;

/// Events retained per thread before the ring wraps (newest wins).
pub const RING_CAPACITY: usize = 1024;

/// Events preserved from exited threads before the oldest are shed.
const MAX_ORPHANS: usize = 4096;

/// Hard cap on events in a decoded dump (decode rejects beyond this).
const MAX_DUMP_EVENTS: usize = 1 << 20;

/// Hard cap on a dump's reason string.
const MAX_REASON_LEN: usize = 4096;

/// Magic prefix of an encoded flight dump.
pub const DUMP_MAGIC: &[u8; 8] = b"TDTFREC1";

/// Minimum interval between automatic error-status dumps.
const ERROR_DUMP_COOLDOWN_NANOS: u64 = 5_000_000_000;

// ---------------------------------------------------------------------------
// Event vocabulary
// ---------------------------------------------------------------------------

/// What kind of decision or transition an event records. The numeric
/// value is the wire encoding; it must never be reused for a different
/// meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A sampled span opened (`a` = span id, `b` = trace low word).
    SpanOpen = 1,
    /// A sampled span closed OK (`a` = span id, `b` = duration ns).
    SpanClose = 2,
    /// A sampled span closed with error status.
    SpanFail = 3,
    /// A transport retry fired (`code` = attempt number).
    Retry = 4,
    /// A hedged backup request launched (`a` = member index).
    Hedge = 5,
    /// A circuit-breaker transition (`code`: 1 trip, 2 fast-reject,
    /// 3 half-open probe; `a` = endpoint hash).
    Breaker = 6,
    /// An admission-control decision (`code`: 1 shed, 2 deadline
    /// expired in queue; `a`/`b` = estimated wait / budget, ns).
    Admission = 7,
    /// A chaos fault injected (`code` = fault bit set, `a` = schedule
    /// seed, `b` = operation number).
    Chaos = 8,
    /// A WAL append committed (`a` = block height, `b` = bytes).
    WalAppend = 9,
    /// A recovery phase transition (`code` = phase, `a` = blocks,
    /// `b` = bytes).
    Recovery = 10,
    /// An SLO burn-rate breach (`a` = burn rate in milli-units).
    Slo = 11,
    /// A free-form marker for tests and tooling.
    Mark = 12,
}

impl FlightKind {
    /// The stable wire name of a kind byte; unknown bytes decode as
    /// `"unknown"` rather than failing the dump.
    pub fn name_of(kind: u8) -> &'static str {
        match kind {
            1 => "span.open",
            2 => "span.close",
            3 => "span.fail",
            4 => "retry",
            5 => "hedge",
            6 => "breaker",
            7 => "admission",
            8 => "chaos",
            9 => "wal.append",
            10 => "recovery",
            11 => "slo",
            12 => "mark",
            _ => "unknown",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global sequence number: claimed before the event is written, so
    /// sorting by it yields a causally consistent total order.
    pub seq: u64,
    /// Process-monotonic timestamp ([`crate::clock::now_nanos`]).
    pub at_nanos: u64,
    /// Ordinal of the recording thread (process-unique, dense).
    pub thread: u32,
    /// Event kind byte (see [`FlightKind`]).
    pub kind: u8,
    /// Kind-specific subcode.
    pub code: u16,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

impl FlightRecord {
    /// Human-readable name of this record's kind.
    pub fn kind_name(&self) -> &'static str {
        FlightKind::name_of(self.kind)
    }
}

// ---------------------------------------------------------------------------
// Thread ordinals
// ---------------------------------------------------------------------------

static NEXT_THREAD_ORDINAL: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD_ORDINAL: u32 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// A small dense process-unique id for the calling thread, stable for
/// the thread's lifetime. Used instead of `std::thread::ThreadId`
/// because the flight format wants a compact fixed-width integer.
pub fn thread_ordinal() -> u32 {
    THREAD_ORDINAL.try_with(|o| *o).unwrap_or(u32::MAX)
}

// ---------------------------------------------------------------------------
// Seqlock ring
// ---------------------------------------------------------------------------

/// One published event slot: a seqlock version word plus five payload
/// words (`seq`, `at_nanos`, packed `thread|kind|code`, `a`, `b`).
struct Slot {
    version: AtomicU64,
    words: [AtomicU64; 5],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn pack_meta(thread: u32, kind: u8, code: u16) -> u64 {
    ((thread as u64) << 32) | ((kind as u64) << 16) | code as u64
}

fn unpack_meta(word: u64) -> (u32, u8, u16) {
    ((word >> 32) as u32, (word >> 16) as u8, word as u16)
}

struct Ring {
    thread: u32,
    slots: Vec<Slot>,
    /// Next write position; only the owning thread stores it, drainers
    /// never read it (they scan every slot).
    pos: AtomicUsize,
}

impl Ring {
    fn new(thread: u32) -> Ring {
        Ring {
            thread,
            slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
            pos: AtomicUsize::new(0),
        }
    }

    /// Publishes one event. Owner thread only; wait-free.
    fn push(&self, seq: u64, at_nanos: u64, kind: u8, code: u16, a: u64, b: u64) {
        // lint:allow(sync: "single-writer cursor: only the owning thread loads and advances pos; drainers scan every slot instead")
        let pos = self.pos.load(Ordering::Relaxed);
        // lint:allow(sync: "single-writer cursor, see above; a fetch_add would buy nothing but a locked RMW on the hot path")
        self.pos.store(pos.wrapping_add(1), Ordering::Relaxed);
        let Some(slot) = self.slots.get(pos % RING_CAPACITY) else {
            return; // unreachable: pos is reduced mod the fixed capacity
        };
        // lint:allow(sync: "seqlock writer side: version is only ever stored by this thread; readers pair their Acquire loads against the Release stores below")
        let v = slot.version.load(Ordering::Relaxed);
        // Odd = write in progress. The payload release stores below
        // order this store before any payload word a reader observes.
        // lint:allow(sync: "seqlock odd-mark: ordered before the payload by the payload's own Release stores; single writer, so the RMW cannot lose an update")
        slot.version.store(v.wrapping_add(1), Ordering::Relaxed);
        let [w_seq, w_at, w_meta, w_a, w_b] = &slot.words;
        w_seq.store(seq, Ordering::Release);
        w_at.store(at_nanos, Ordering::Release);
        w_meta.store(pack_meta(self.thread, kind, code), Ordering::Release);
        w_a.store(a, Ordering::Release);
        w_b.store(b, Ordering::Release);
        // lint:allow(sync: "seqlock even-mark: Release publishes the payload; single writer, so the read-modify-write cannot race itself")
        slot.version.store(v.wrapping_add(2), Ordering::Release);
    }

    /// Reads every consistently published slot. Safe from any thread;
    /// torn slots (odd or changed version) are skipped, not misread.
    fn drain_into(&self, out: &mut Vec<FlightRecord>) {
        for slot in &self.slots {
            for _attempt in 0..4 {
                let v1 = slot.version.load(Ordering::Acquire);
                if v1 == 0 || v1 & 1 == 1 {
                    if v1 == 0 {
                        break; // never written
                    }
                    continue; // mid-publish, retry
                }
                let [w_seq, w_at, w_meta, w_a, w_b] = &slot.words;
                let seq = w_seq.load(Ordering::Acquire);
                let at = w_at.load(Ordering::Acquire);
                let meta = w_meta.load(Ordering::Acquire);
                let a = w_a.load(Ordering::Acquire);
                let b = w_b.load(Ordering::Acquire);
                let v2 = slot.version.load(Ordering::Acquire);
                if v1 == v2 {
                    let (thread, kind, code) = unpack_meta(meta);
                    out.push(FlightRecord {
                        seq,
                        at_nanos: at,
                        thread,
                        kind,
                        code,
                        a,
                        b,
                    });
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Global registry + orphans
// ---------------------------------------------------------------------------

/// Global causal sequence; claimed before the event is published.
static SEQ: AtomicU64 = AtomicU64::new(1);

static DUMPS: AtomicU64 = AtomicU64::new(0);

static ERROR_DUMP_ARMED: AtomicBool = AtomicBool::new(false);

static LAST_ERROR_DUMP: AtomicU64 = AtomicU64::new(0);

fn rings() -> &'static Mutex<Vec<Weak<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Weak<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn orphans() -> &'static Mutex<Vec<FlightRecord>> {
    static ORPHANS: OnceLock<Mutex<Vec<FlightRecord>>> = OnceLock::new();
    ORPHANS.get_or_init(|| Mutex::new(Vec::new()))
}

fn last_dump_slot() -> &'static Mutex<Option<Vec<u8>>> {
    static LAST: OnceLock<Mutex<Option<Vec<u8>>>> = OnceLock::new();
    LAST.get_or_init(|| Mutex::new(None))
}

/// Owns a thread's ring; flushes surviving events to the orphan buffer
/// on thread exit so they outlive the thread until the next drain.
struct RingHandle {
    ring: Arc<Ring>,
}

impl Drop for RingHandle {
    fn drop(&mut self) {
        let mut flushed = Vec::new();
        self.ring.drain_into(&mut flushed);
        if flushed.is_empty() {
            return;
        }
        if let Ok(mut orphans) = orphans().lock() {
            orphans.extend(flushed);
            if orphans.len() > MAX_ORPHANS {
                orphans.sort_by_key(|r| r.seq);
                let excess = orphans.len() - MAX_ORPHANS;
                orphans.drain(..excess);
            }
        }
    }
}

thread_local! {
    static LOCAL_RING: RingHandle = {
        let ring = Arc::new(Ring::new(thread_ordinal()));
        if let Ok(mut rings) = rings().lock() {
            rings.retain(|w| w.strong_count() > 0);
            rings.push(Arc::downgrade(&ring));
        }
        RingHandle { ring }
    };
}

/// Records one event into the calling thread's ring. Wait-free on the
/// hot path (one global `fetch_add` plus six atomic stores); during
/// thread teardown the event is silently dropped rather than blocking.
pub fn record(kind: FlightKind, code: u16, a: u64, b: u64) {
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let at = clock::now_nanos();
    let _ = LOCAL_RING.try_with(|handle| {
        handle.ring.push(seq, at, kind as u8, code, a, b);
    });
}

/// Total events recorded since process start.
pub fn events_recorded() -> u64 {
    SEQ.load(Ordering::Relaxed).saturating_sub(1)
}

/// Dumps taken since process start (on-demand, SLO breach, or error).
pub fn dumps_taken() -> u64 {
    DUMPS.load(Ordering::Relaxed)
}

/// Per-thread rings currently alive.
pub fn live_rings() -> u64 {
    rings()
        .lock()
        .map(|rings| rings.iter().filter(|w| w.strong_count() > 0).count() as u64)
        .unwrap_or(0)
}

/// Snapshots every live ring plus the orphan buffer into one
/// causally-ordered (ascending global sequence) event list. Does not
/// clear the rings: a snapshot is a read, not a drain, so overlapping
/// dumps each see the full retained history.
pub fn snapshot() -> Vec<FlightRecord> {
    let mut out = Vec::new();
    let ring_handles: Vec<Arc<Ring>> = rings()
        .lock()
        .map(|rings| rings.iter().filter_map(|w| w.upgrade()).collect())
        .unwrap_or_default();
    for ring in ring_handles {
        ring.drain_into(&mut out);
    }
    if let Ok(orphans) = orphans().lock() {
        out.extend(orphans.iter().cloned());
    }
    out.sort_by_key(|r| r.seq);
    out.dedup_by_key(|r| r.seq);
    out
}

// ---------------------------------------------------------------------------
// Dump codec (ledger::storage::codec idiom: big-endian, CRC32 trailer)
// ---------------------------------------------------------------------------

/// Decode failure: truncation, bad magic, CRC mismatch, or an
/// out-of-bounds count. The message says which.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpError(pub String);

impl std::fmt::Display for DumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flight dump decode error: {}", self.0)
    }
}

impl std::error::Error for DumpError {}

/// A decoded incident dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Why the dump was taken (`"on-demand"`, `"slo breach: …"`, …).
    pub reason: String,
    /// When the dump was taken ([`crate::clock::now_nanos`]).
    pub dumped_at_nanos: u64,
    /// The events, ascending by `seq`.
    pub records: Vec<FlightRecord>,
}

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // lint:allow(panic: "const-eval: i < 256 by the loop bound, so an out-of-range index would be a compile error, never a runtime panic")
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC32 of `bytes` (same polynomial as the ledger WAL frames).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        // lint:allow(panic: "index is masked to 0..=255 against a [u32; 256] table")
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    crc ^ 0xffff_ffff
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DumpError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| DumpError(format!("truncated {what}")))?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| DumpError(format!("truncated {what}")))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, DumpError> {
        Ok(self.take(1, what)?.first().copied().unwrap_or(0))
    }

    fn u16(&mut self, what: &str) -> Result<u16, DumpError> {
        let mut buf = [0u8; 2];
        buf.copy_from_slice(self.take(2, what)?);
        Ok(u16::from_be_bytes(buf))
    }

    fn u32(&mut self, what: &str) -> Result<u32, DumpError> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(self.take(4, what)?);
        Ok(u32::from_be_bytes(buf))
    }

    fn u64(&mut self, what: &str) -> Result<u64, DumpError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8, what)?);
        Ok(u64::from_be_bytes(buf))
    }
}

fn encode_payload(reason: &str, dumped_at_nanos: u64, records: &[FlightRecord]) -> Vec<u8> {
    let reason_bytes = reason.as_bytes();
    let reason = reason_bytes
        .get(..reason_bytes.len().min(MAX_REASON_LEN))
        .unwrap_or(reason_bytes);
    let mut out = Vec::with_capacity(24 + reason.len() + records.len() * 39);
    put_u32(&mut out, 1); // format version
    put_u32(&mut out, reason.len() as u32);
    out.extend_from_slice(reason);
    put_u64(&mut out, dumped_at_nanos);
    put_u32(&mut out, records.len().min(MAX_DUMP_EVENTS) as u32);
    for r in records.iter().take(MAX_DUMP_EVENTS) {
        put_u64(&mut out, r.seq);
        put_u64(&mut out, r.at_nanos);
        put_u32(&mut out, r.thread);
        out.push(r.kind);
        put_u16(&mut out, r.code);
        put_u64(&mut out, r.a);
        put_u64(&mut out, r.b);
    }
    out
}

/// Encodes records into the dump format: `TDTFREC1` magic, big-endian
/// payload, CRC32 trailer over the payload.
pub fn encode_dump(reason: &str, dumped_at_nanos: u64, records: &[FlightRecord]) -> Vec<u8> {
    let payload = encode_payload(reason, dumped_at_nanos, records);
    let mut out = Vec::with_capacity(DUMP_MAGIC.len() + payload.len() + 4);
    out.extend_from_slice(DUMP_MAGIC);
    out.extend_from_slice(&payload);
    put_u32(&mut out, crc32(&payload));
    out
}

/// Re-encodes records with nondeterministic fields normalized (seq
/// renumbered from 1 preserving order, timestamps and thread ordinals
/// zeroed), for byte-identical comparison of same-seed replays.
pub fn canonical_dump_bytes(reason: &str, records: &[FlightRecord]) -> Vec<u8> {
    let canonical: Vec<FlightRecord> = records
        .iter()
        .enumerate()
        .map(|(i, r)| FlightRecord {
            seq: i as u64 + 1,
            at_nanos: 0,
            thread: 0,
            kind: r.kind,
            code: r.code,
            a: r.a,
            b: r.b,
        })
        .collect();
    encode_dump(reason, 0, &canonical)
}

/// Decodes a dump, validating magic, CRC trailer, and bounds.
///
/// # Errors
///
/// [`DumpError`] on bad magic, truncation, CRC mismatch, or a count
/// that exceeds the dump limits.
pub fn decode_dump(bytes: &[u8]) -> Result<FlightDump, DumpError> {
    if bytes.len() < DUMP_MAGIC.len() + 4 {
        return Err(DumpError("shorter than magic + trailer".into()));
    }
    if !bytes.starts_with(DUMP_MAGIC) {
        return Err(DumpError("bad magic".into()));
    }
    let (framed, trailer) = bytes.split_at(bytes.len() - 4);
    let payload = framed.get(DUMP_MAGIC.len()..).unwrap_or_default();
    let mut trailer_buf = [0u8; 4];
    trailer_buf.copy_from_slice(trailer);
    let want = u32::from_be_bytes(trailer_buf);
    let got = crc32(payload);
    if want != got {
        return Err(DumpError(format!(
            "crc mismatch: {want:#010x} != {got:#010x}"
        )));
    }
    let mut r = Reader::new(payload);
    let version = r.u32("version")?;
    if version != 1 {
        return Err(DumpError(format!("unsupported version {version}")));
    }
    let reason_len = r.u32("reason length")? as usize;
    if reason_len > MAX_REASON_LEN {
        return Err(DumpError(format!("reason length {reason_len} exceeds cap")));
    }
    let reason = String::from_utf8(r.take(reason_len, "reason")?.to_vec())
        .map_err(|_| DumpError("reason is not utf-8".into()))?;
    let dumped_at_nanos = r.u64("dump timestamp")?;
    let count = r.u32("event count")? as usize;
    if count > MAX_DUMP_EVENTS {
        return Err(DumpError(format!("event count {count} exceeds cap")));
    }
    let mut records = Vec::with_capacity(count.min(4096));
    for i in 0..count {
        let what = format!("event {i}");
        records.push(FlightRecord {
            seq: r.u64(&what)?,
            at_nanos: r.u64(&what)?,
            thread: r.u32(&what)?,
            kind: r.u8(&what)?,
            code: r.u16(&what)?,
            a: r.u64(&what)?,
            b: r.u64(&what)?,
        });
    }
    if r.pos != payload.len() {
        return Err(DumpError(format!(
            "{} trailing bytes after events",
            payload.len() - r.pos
        )));
    }
    Ok(FlightDump {
        reason,
        dumped_at_nanos,
        records,
    })
}

// ---------------------------------------------------------------------------
// Dump triggers
// ---------------------------------------------------------------------------

/// Snapshots all rings and encodes an incident dump. The encoded bytes
/// are also retained as the process's last dump ([`last_dump`]).
pub fn dump(reason: &str) -> Vec<u8> {
    let records = snapshot();
    let bytes = encode_dump(reason, clock::now_nanos(), &records);
    DUMPS.fetch_add(1, Ordering::Relaxed);
    if let Ok(mut last) = last_dump_slot().lock() {
        *last = Some(bytes.clone());
    }
    bytes
}

/// The most recent dump taken by any trigger, if one exists.
pub fn last_dump() -> Option<Vec<u8>> {
    last_dump_slot().lock().ok().and_then(|slot| slot.clone())
}

/// Arms (or disarms) automatic dumps when a span closes with error
/// status. Disarmed by default: error spans are routine in chaos and
/// negative tests, so auto-dumping is an operator opt-in.
pub fn arm_error_dump(enabled: bool) {
    // lint:allow(sync: "freestanding config flag: no dependent data is published through it, a dump fired one beat early or late is equally valid")
    ERROR_DUMP_ARMED.store(enabled, Ordering::Relaxed);
}

/// Takes a dump for an error-status span if armed and outside the
/// cooldown window. Called by the span plane on error close.
pub fn maybe_error_dump(reason: &str) {
    // lint:allow(sync: "freestanding config flag, see arm_error_dump: the dump content comes from the rings, not from data ordered by this flag")
    if !ERROR_DUMP_ARMED.load(Ordering::Relaxed) {
        return;
    }
    let now = clock::now_nanos();
    let last = LAST_ERROR_DUMP.load(Ordering::Relaxed);
    if now.saturating_sub(last) < ERROR_DUMP_COOLDOWN_NANOS {
        return;
    }
    if LAST_ERROR_DUMP
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_ok()
    {
        let _ = dump(&format!("error status: {reason}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_roundtrip() {
        record(FlightKind::Mark, 7, 0xdead, 0xbeef);
        record(FlightKind::Mark, 8, 1, 2);
        let snap = snapshot();
        let marks: Vec<_> = snap
            .iter()
            .filter(|r| r.kind == FlightKind::Mark as u8 && (r.code == 7 || r.code == 8))
            .collect();
        assert!(marks.len() >= 2, "both marks visible in snapshot");
        // Causal order: ascending seq.
        for pair in snap.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        for i in 0..(RING_CAPACITY as u64 + 64) {
            record(FlightKind::Mark, 100, i, 0);
        }
        let snap = snapshot();
        let newest = snap
            .iter()
            .filter(|r| r.kind == FlightKind::Mark as u8 && r.code == 100)
            .map(|r| r.a)
            .max()
            .expect("marks survive wrap");
        assert_eq!(newest, RING_CAPACITY as u64 + 63);
    }

    #[test]
    fn dump_encode_decode_roundtrip() {
        let records = vec![
            FlightRecord {
                seq: 1,
                at_nanos: 10,
                thread: 3,
                kind: FlightKind::Chaos as u8,
                code: 2,
                a: 42,
                b: 7,
            },
            FlightRecord {
                seq: 2,
                at_nanos: 20,
                thread: 4,
                kind: FlightKind::Slo as u8,
                code: 1,
                a: 12_000,
                b: 0,
            },
        ];
        let bytes = encode_dump("unit test", 99, &records);
        let dump = decode_dump(&bytes).expect("decode");
        assert_eq!(dump.reason, "unit test");
        assert_eq!(dump.dumped_at_nanos, 99);
        assert_eq!(dump.records, records);
        assert_eq!(dump.records[0].kind_name(), "chaos");
    }

    #[test]
    fn decode_rejects_corruption_and_truncation() {
        let bytes = encode_dump("x", 1, &[]);
        assert!(decode_dump(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(decode_dump(&flipped).is_err(), "bit flip must fail CRC");
        let mut bad_magic = bytes;
        bad_magic[0] ^= 0xff;
        assert!(decode_dump(&bad_magic).is_err(), "bad magic");
    }

    #[test]
    fn canonical_bytes_are_deterministic() {
        let a = vec![FlightRecord {
            seq: 900,
            at_nanos: 123,
            thread: 9,
            kind: FlightKind::Chaos as u8,
            code: 1,
            a: 5,
            b: 6,
        }];
        let b = vec![FlightRecord {
            seq: 77,
            at_nanos: 456_000,
            thread: 2,
            kind: FlightKind::Chaos as u8,
            code: 1,
            a: 5,
            b: 6,
        }];
        assert_eq!(
            canonical_dump_bytes("r", &a),
            canonical_dump_bytes("r", &b),
            "canonical form erases timing and thread identity"
        );
    }

    #[test]
    fn dump_trigger_retains_last() {
        record(FlightKind::Mark, 55, 1, 2);
        let bytes = dump("trigger test");
        assert_eq!(last_dump().as_deref(), Some(bytes.as_slice()));
        let decoded = decode_dump(&bytes).expect("self dump decodes");
        assert_eq!(decoded.reason, "trigger test");
        assert!(dumps_taken() >= 1);
    }

    #[test]
    fn cross_thread_events_merge_in_order() {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..64u64 {
                        record(FlightKind::Mark, 200 + t, i, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Worker threads exited: their events live on as orphans.
        let snap = snapshot();
        for t in 0..4u16 {
            let n = snap
                .iter()
                .filter(|r| r.kind == FlightKind::Mark as u8 && r.code == 200 + t)
                .count();
            assert_eq!(n, 64, "thread {t} events survive thread exit");
        }
    }
}
